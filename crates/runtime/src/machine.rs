//! The resumable solver: an explicit stack machine over lowered goals.
//!
//! The paper compiles JMatch to Java_yield — coroutines that *lazily* yield
//! one solution at a time, so a `foreach` over a backward-mode method does
//! O(1) work per element and can stop early (§2.3, §5). The recursive plan
//! evaluator in [`crate::eval`] implements the same search as host-language
//! recursion with an inverted `emit` callback, which cannot be suspended:
//! the caller gets *pushed* solutions and the only way to stop is to refuse
//! them after the work is done.
//!
//! This module is the pull-based counterpart. The choice-point recursion of
//! the evaluator is reified into explicit machine state:
//!
//! * a **continuation stack** ([`Step`]s linked through persistent
//!   [`Rc`] nodes, so choice points capture it in O(1)),
//! * a **choice-point stack** recording the untried alternatives of each
//!   disjunction / or-pattern,
//! * a **trail** of slot writes plus a frame-arena mark per choice point, so
//!   backtracking undoes bindings without cloning frames, and
//! * a **frame arena** holding one flat slot frame per active constructor
//!   match (the machine's activation records).
//!
//! [`Machine::next_solution`] runs the loop until the continuation stack
//! empties (a solution — the machine *returns* with its state intact) or
//! the choice points are exhausted. Calling it again backtracks into the
//! most recent choice point and continues, so `query.take(1)` does exactly
//! the work of the first solution: this is what [`crate::Solutions`] is
//! built on, and what the `first_solution` bench and the laziness test in
//! `tests/laziness.rs` measure.
//!
//! Deterministic sub-computations — ground evaluation, forward calls,
//! negation-as-failure existence checks, deep equality — run through the
//! recursive evaluator ([`Ev`]) on the shared [`Budget`]: they produce a
//! single answer and never need to be resumed, so reifying them would buy
//! nothing. The enumeration *spine* (conjunction scheduling, disjunction
//! branches, constructor matching, pattern disjunction) is what the machine
//! makes resumable, and its observable behavior — values, bindings,
//! enumeration order, failures — is kept identical to the recursive
//! evaluator's and the tree-walker's; `tests/differential.rs` asserts it.
//!
//! The explicit choice-point stack is also what the OR-parallel executor
//! ([`crate::par`]) exploits: every multi-alternative choice point is
//! identified by its absolute **choice path** (the alternative indices of
//! the older choice points on the derivation, in creation order), so
//! [`Machine::split_oldest`] can export untried alternatives as
//! self-contained replay tasks and a fresh machine can claim one by
//! replaying the path prefix through [`Machine::with_budget`]'s guide.
//! Lexicographic order on choice paths is exactly the sequential
//! enumeration order — the invariant ordered-mode parallel enumeration is
//! built on.

use crate::eval::{Budget, Ev, Frame};
use crate::{RtError, RtResult, Value};
use jmatch_core::bytecode::{BcBody, Instr, Pc, UnifyMode};
use jmatch_core::lower::{
    BodyPlan, CallKind, DispatchId, Goal, PExpr, PlanId, ProgramPlan, ReadyCheck, SlotId,
    SolvedForm,
};
use jmatch_syntax::ast::{BinOp, CmpOp};
use std::rc::Rc;

/// The executable form of one solved form: threaded bytecode when the
/// plan's pass 4 emitted it, the goal tree otherwise. Choice-point arity
/// and order are identical either way (a bytecode `Choice` mirrors its
/// `Goal::Any` exactly), so guides and choice paths recorded by one form
/// replay on the other.
#[derive(Clone, Copy)]
pub(crate) enum MachineCode<'g> {
    /// Walk the goal tree.
    Goal(&'g Goal),
    /// Thread the compiled instruction stream.
    Bc(&'g BcBody),
}

impl<'g> MachineCode<'g> {
    /// The preferred executable form of `form`.
    pub(crate) fn of_form(form: &'g SolvedForm) -> Self {
        match &form.bc {
            Some(bc) => MachineCode::Bc(bc),
            None => MachineCode::Goal(&form.goal),
        }
    }
}

/// One pending unit of work on the continuation stack.
#[derive(Clone)]
enum Step<'g> {
    /// Solve a goal in frame `fi`.
    Goal { fi: usize, goal: &'g Goal },
    /// Run threaded bytecode from `pc` in frame `fi`.
    Bc { fi: usize, body: &'g BcBody, pc: Pc },
    /// A dynamically scheduled conjunction with the conjuncts still to run.
    DynSeq {
        fi: usize,
        items: &'g [(ReadyCheck, Goal)],
        remaining: Vec<usize>,
    },
    /// Match a pattern against a known value in frame `fi`.
    Match {
        fi: usize,
        pat: &'g PExpr,
        value: Value,
    },
    /// A constructor-match solution boundary: the callee frame holds one
    /// solution of the matching plan; collect the parameter row and match
    /// the caller's argument patterns against it (first solution per
    /// pattern, errors skip the row — the evaluator's `match_args_then`).
    CollectRow {
        caller: usize,
        callee: usize,
        param_slots: &'g [SlotId],
        args: &'g [PExpr],
        /// Determinism commit: when the callee's matching form was proved
        /// `Det` by `jmatch_core::analysis`, this is the absolute choice
        /// mark (`donated + choices.len()`) captured at call entry.
        /// Reaching the row boundary truncates the choice stack back to it,
        /// discarding the callee's leftover choice points — the analysis
        /// guarantees they hold no further solutions.
        commit: Option<usize>,
    },
}

/// Persistent continuation: a linked stack shared between the machine and
/// its choice points, so capturing it costs one `Rc` clone.
struct Cont<'g> {
    step: Step<'g>,
    next: ContRef<'g>,
}

type ContRef<'g> = Option<Rc<Cont<'g>>>;

/// The untried alternatives of one choice point.
enum Alt<'g> {
    /// Remaining branches of a `Goal::Any`, starting at `next`.
    Branches {
        fi: usize,
        branches: &'g [Goal],
        next: usize,
    },
    /// The right branch of an or-pattern.
    OrPat {
        fi: usize,
        pat: &'g PExpr,
        value: Value,
    },
    /// Remaining alternatives of a bytecode `Choice`, starting at `next`.
    /// The alternatives are instruction addresses resolved at compile time:
    /// restoring one is a pc install, not a tree re-walk.
    BcChoice {
        fi: usize,
        body: &'g BcBody,
        alts: &'g [Pc],
        next: usize,
    },
}

/// A choice point: enough state to restore the machine to the moment the
/// choice was made and try the next alternative.
struct Choice<'g> {
    cont: ContRef<'g>,
    trail_mark: usize,
    frames_mark: usize,
    /// Length of [`Machine::path`] when this choice point was created: the
    /// decisions of every older choice point on the current derivation.
    /// `path[..path_mark] ++ [k]` is the absolute choice path of this
    /// point's alternative `k` — the task descriptor
    /// [`Machine::split_oldest`] exports for OR-parallel replay.
    path_mark: usize,
    alt: Alt<'g>,
}

/// One undoable slot write.
struct TrailEntry {
    fi: usize,
    slot: SlotId,
    old: Option<Value>,
}

/// An activation frame: the slots of one solved form plus its `this`.
struct FrameCtx {
    slots: Frame,
    this: Option<Value>,
}

/// Where the machine is in its run.
enum Phase {
    /// Steps or choice points remain.
    Running,
    /// Stopped at a solution; the next call backtracks first.
    AtSolution,
    /// Enumeration is complete (or an error ended it).
    Done,
}

/// What a bounded [`Machine::run`] stopped on.
pub(crate) enum RunOutcome {
    /// A solution is ready in [`Machine::root_frame`]; the next `run`
    /// backtracks and continues.
    Solution,
    /// Every choice point is exhausted; the enumeration is over.
    Exhausted,
    /// The fuel ran out before a solution or exhaustion; call `run` again
    /// to continue. This is the OR-parallel workers' scheduling point:
    /// between runs they poll for cancellation and donate choice points.
    Paused,
}

/// The resumable goal-solving machine. See the module docs.
pub(crate) struct Machine<'g> {
    plan: &'g ProgramPlan,
    budget: Budget,
    frames: Vec<FrameCtx>,
    cont: ContRef<'g>,
    choices: Vec<Choice<'g>>,
    trail: Vec<TrailEntry>,
    phase: Phase,
    /// The absolute choice path of the current derivation: one decision
    /// (alternative index) per *multi-alternative* choice point between the
    /// root and the machine's current position, in creation order. Guided
    /// prefix decisions are included, so the path is comparable across the
    /// workers of one OR-parallel enumeration: lexicographic order on
    /// paths IS the sequential (DFS) enumeration order.
    path: Vec<u32>,
    /// Replay directives for OR-parallel task resumption: the first
    /// `guide.len()` choice points this machine *would* create instead
    /// take the given alternative directly (and create no choice point —
    /// the untried siblings belong to other tasks).
    guide: Vec<u32>,
    guide_pos: usize,
    /// Choice points donated away by [`Machine::split_oldest`]. Donations
    /// pop from the *front* of `choices`, so an absolute commit mark taken
    /// as `donated + choices.len()` stays meaningful across donations:
    /// the local index is `mark - donated`.
    donated: usize,
    /// Total choice points ever created (instrumentation for the
    /// determinism-commit tests and `Solutions::choice_points`).
    created: u64,
    /// Whether the *root* form was proved `Det` by `jmatch_core::analysis`:
    /// its first solution is its only one, so reaching it clears the whole
    /// choice stack and the next pull terminates immediately.
    root_det: bool,
}

impl<'g> Machine<'g> {
    /// Creates a machine that enumerates the solutions of `code` over a
    /// root frame seeded by the caller, with `this` in scope.
    pub(crate) fn new(
        plan: &'g ProgramPlan,
        code: MachineCode<'g>,
        root: Frame,
        this: Option<Value>,
        max_depth: usize,
        max_steps: u64,
    ) -> Self {
        Machine::with_budget(
            plan,
            code,
            root,
            this,
            Budget::new(max_depth, max_steps),
            Vec::new(),
        )
    }

    /// Creates a machine over an explicit [`Budget`] (possibly drawing on a
    /// shared OR-parallel step pool) with a replay `guide`: the decision
    /// prefix that routes this machine to its task's subtree. Execution is
    /// deterministic between choice points, so replaying the prefix
    /// reconstructs the donor's frames, trail, and bindings exactly.
    pub(crate) fn with_budget(
        plan: &'g ProgramPlan,
        code: MachineCode<'g>,
        root: Frame,
        this: Option<Value>,
        budget: Budget,
        guide: Vec<u32>,
    ) -> Self {
        let mut m = Machine {
            plan,
            budget,
            frames: vec![FrameCtx { slots: root, this }],
            cont: None,
            choices: Vec::new(),
            trail: Vec::new(),
            phase: Phase::Running,
            path: Vec::new(),
            guide,
            guide_pos: 0,
            donated: 0,
            created: 0,
            root_det: false,
        };
        match code {
            MachineCode::Goal(goal) => m.push(Step::Goal { fi: 0, goal }),
            MachineCode::Bc(body) => m.push(Step::Bc {
                fi: 0,
                body,
                pc: body.entry,
            }),
        }
        m
    }

    /// The root frame (the query's own solved form).
    pub(crate) fn root_frame(&self) -> &Frame {
        &self.frames[0].slots
    }

    /// Machine steps (plus recursive-evaluator steps) spent so far.
    pub(crate) fn steps(&self) -> u64 {
        self.budget.steps
    }

    /// Attaches an external interrupt token to the machine's budget; a
    /// fired token stops the run with an
    /// [`RtErrorKind::Interrupted`](crate::RtErrorKind::Interrupted) error
    /// at the next fuel-poll boundary.
    pub(crate) fn with_interrupt(
        mut self,
        token: Option<std::sync::Arc<std::sync::atomic::AtomicBool>>,
    ) -> Self {
        self.budget.set_interrupt(token);
        self
    }

    /// Marks the root form as `Det`-analyzed (see [`Machine::root_det`]).
    pub(crate) fn with_root_det(mut self, det: bool) -> Self {
        self.root_det = det;
        self
    }

    /// Choice points currently live on the choice stack.
    pub(crate) fn live_choices(&self) -> usize {
        self.choices.len()
    }

    /// Total choice points created over the machine's lifetime.
    pub(crate) fn choices_created(&self) -> u64 {
        self.created
    }

    /// Runs until the next solution. Returns `Ok(true)` with the solution's
    /// bindings readable through [`Machine::root_frame`], `Ok(false)` when
    /// the enumeration is exhausted. An error ends the enumeration.
    pub(crate) fn next_solution(&mut self) -> RtResult<bool> {
        match self.run(u64::MAX)? {
            RunOutcome::Solution => Ok(true),
            RunOutcome::Exhausted | RunOutcome::Paused => Ok(false),
        }
    }

    /// Runs for at most `fuel` machine steps or until the next solution /
    /// exhaustion, whichever comes first. An error ends the enumeration.
    pub(crate) fn run(&mut self, fuel: u64) -> RtResult<RunOutcome> {
        if matches!(self.phase, Phase::AtSolution) {
            self.phase = Phase::Running;
            if !self.backtrack() {
                self.phase = Phase::Done;
            }
        }
        let mut used: u64 = 0;
        loop {
            if matches!(self.phase, Phase::Done) {
                return Ok(RunOutcome::Exhausted);
            }
            if used >= fuel {
                return Ok(RunOutcome::Paused);
            }
            used += 1;
            let Some(node) = self.cont.take() else {
                if self.root_det {
                    // The analysis proved the root form has at most one
                    // solution: this is it, so every remaining choice
                    // point is barren.
                    self.choices.clear();
                }
                self.phase = Phase::AtSolution;
                return Ok(RunOutcome::Solution);
            };
            let step = match Rc::try_unwrap(node) {
                Ok(n) => {
                    self.cont = n.next;
                    n.step
                }
                Err(rc) => {
                    self.cont = rc.next.clone();
                    rc.step.clone()
                }
            };
            if let Err(e) = self.exec(step) {
                self.phase = Phase::Done;
                return Err(e);
            }
        }
    }

    /// Splits off the *oldest* choice point — the root-most branching of
    /// this machine's remaining search space — as replay tasks for other
    /// OR-parallel workers, removing it locally so this machine never
    /// explores the donated alternatives. Returns one absolute choice path
    /// per untried alternative, in alternative order.
    ///
    /// Donating the oldest choice point (rather than the newest) keeps the
    /// donated grains as large as possible *and* upholds the ordering
    /// invariant the ordered-mode collector relies on: every solution this
    /// machine emits after the donation lies lexicographically **before**
    /// every donated subtree, because the machine's remaining work sits
    /// under smaller alternative indices of the same (or an older-donated)
    /// branching. Later donations are likewise entirely before earlier
    /// ones.
    pub(crate) fn split_oldest(&mut self) -> Vec<Vec<u32>> {
        if self.choices.is_empty() {
            return Vec::new();
        }
        let ch = self.choices.remove(0);
        self.donated += 1;
        let prefix = &self.path[..ch.path_mark];
        match ch.alt {
            Alt::Branches { branches, next, .. } => (next..branches.len())
                .map(|k| {
                    let mut p = Vec::with_capacity(prefix.len() + 1);
                    p.extend_from_slice(prefix);
                    p.push(k as u32);
                    p
                })
                .collect(),
            Alt::OrPat { .. } => {
                let mut p = Vec::with_capacity(prefix.len() + 1);
                p.extend_from_slice(prefix);
                p.push(1);
                vec![p]
            }
            Alt::BcChoice { alts, next, .. } => (next..alts.len())
                .map(|k| {
                    let mut p = Vec::with_capacity(prefix.len() + 1);
                    p.extend_from_slice(prefix);
                    p.push(k as u32);
                    p
                })
                .collect(),
        }
    }

    /// Whether the machine still holds a splittable choice point.
    pub(crate) fn can_split(&self) -> bool {
        !self.choices.is_empty()
    }

    /// Returns the unspent part of a shared-budget grant to the pool (see
    /// [`Budget::release_unused`]); call when the machine goes idle.
    pub(crate) fn release_budget(&mut self) {
        self.budget.release_unused();
    }

    // ------------------------------------------------------------------
    // Machine infrastructure
    // ------------------------------------------------------------------

    fn push(&mut self, step: Step<'g>) {
        self.cont = Some(Rc::new(Cont {
            step,
            next: self.cont.take(),
        }));
    }

    /// Records a choice point capturing the current continuation and marks,
    /// and pushes the initial decision (alternative 0) onto the choice
    /// path.
    fn choice(&mut self, alt: Alt<'g>) {
        self.created += 1;
        self.choices.push(Choice {
            cont: self.cont.clone(),
            trail_mark: self.trail.len(),
            frames_mark: self.frames.len(),
            path_mark: self.path.len(),
            alt,
        });
        self.path.push(0);
    }

    /// Consumes the next replay directive, if the guide still has one: the
    /// pending choice point takes alternative `d` directly and creates no
    /// local choice point (its siblings belong to other tasks).
    fn next_guide(&mut self) -> Option<u32> {
        let d = *self.guide.get(self.guide_pos)?;
        self.guide_pos += 1;
        self.path.push(d);
        Some(d)
    }

    /// Binds a slot, recording the old value on the trail.
    fn bind(&mut self, fi: usize, slot: SlotId, value: Option<Value>) {
        let old = std::mem::replace(&mut self.frames[fi].slots[slot as usize], value);
        self.trail.push(TrailEntry { fi, slot, old });
    }

    /// The current goal failed: restore the most recent choice point and
    /// install its next alternative, or end the run.
    fn fail(&mut self) {
        if !self.backtrack() {
            self.phase = Phase::Done;
        }
    }

    fn backtrack(&mut self) -> bool {
        let Some(ch) = self.choices.last_mut() else {
            return false;
        };
        let trail_mark = ch.trail_mark;
        let frames_mark = ch.frames_mark;
        let path_mark = ch.path_mark;
        let cont = ch.cont.clone();
        let (step, decision, exhausted) = match &mut ch.alt {
            Alt::Branches { fi, branches, next } => {
                let step = Step::Goal {
                    fi: *fi,
                    goal: &branches[*next],
                };
                let decision = *next as u32;
                *next += 1;
                (step, decision, *next >= branches.len())
            }
            Alt::OrPat { fi, pat, value } => (
                Step::Match {
                    fi: *fi,
                    pat,
                    value: value.clone(),
                },
                1,
                true,
            ),
            Alt::BcChoice {
                fi,
                body,
                alts,
                next,
            } => {
                let step = Step::Bc {
                    fi: *fi,
                    body,
                    pc: alts[*next],
                };
                let decision = *next as u32;
                *next += 1;
                (step, decision, *next >= alts.len())
            }
        };
        if exhausted {
            self.choices.pop();
        }
        while self.trail.len() > trail_mark {
            let TrailEntry { fi, slot, old } = self.trail.pop().expect("trail underflow");
            self.frames[fi].slots[slot as usize] = old;
        }
        self.frames.truncate(frames_mark);
        self.path.truncate(path_mark);
        self.path.push(decision);
        self.cont = cont;
        self.push(step);
        true
    }

    // ------------------------------------------------------------------
    // Deterministic helpers (delegated to the recursive evaluator)
    // ------------------------------------------------------------------

    fn ground(&mut self, fi: usize, e: &PExpr) -> bool {
        let Machine {
            plan,
            budget,
            frames,
            ..
        } = self;
        let f = &frames[fi];
        Ev::new(plan, budget).ground(&f.slots, f.this.as_ref(), e)
    }

    fn eval_expr(&mut self, fi: usize, e: &PExpr) -> RtResult<Value> {
        let Machine {
            plan,
            budget,
            frames,
            ..
        } = self;
        let f = &frames[fi];
        Ev::new(plan, budget).eval(&f.slots, f.this.as_ref(), e)
    }

    fn values_equal(&mut self, a: &Value, b: &Value) -> RtResult<bool> {
        Ev::new(self.plan, &mut self.budget).values_equal(a, b)
    }

    /// Resolves a runtime-class-dispatched name through the same dispatch
    /// tables the recursive evaluator uses.
    fn resolve_dispatch(
        &mut self,
        dispatch: Option<DispatchId>,
        value: &Value,
        name: &str,
        with_ctor_fallback: bool,
    ) -> Option<PlanId> {
        let Value::Obj(o) = value else { return None };
        let ev = Ev::new(self.plan, &mut self.budget);
        if with_ctor_fallback {
            ev.resolve_dispatch_or_ctor(dispatch, o, name)
        } else {
            ev.resolve_dispatch(dispatch, o, name)
        }
    }

    /// Existence check for negation-as-failure: runs the recursive solver
    /// over a scratch copy of the frame.
    fn exists(&mut self, fi: usize, goal: &Goal) -> RtResult<bool> {
        let Machine {
            plan,
            budget,
            frames,
            ..
        } = self;
        let f = &frames[fi];
        let mut scratch = f.slots.clone();
        let this = f.this.clone();
        let mut found = false;
        Ev::new(plan, budget).solve(&mut scratch, this.as_ref(), goal, &mut |_, _| {
            found = true;
            Ok(false)
        })?;
        Ok(found)
    }

    fn is_subtype(&self, class: &str, ty: &str) -> bool {
        self.plan.table().is_subtype(class, ty)
    }

    // ------------------------------------------------------------------
    // Step execution
    // ------------------------------------------------------------------

    fn exec(&mut self, step: Step<'g>) -> RtResult<()> {
        self.budget.step()?;
        match step {
            Step::Goal { fi, goal } => self.exec_goal(fi, goal),
            Step::Bc { fi, body, pc } => self.exec_bc(fi, body, pc),
            Step::DynSeq {
                fi,
                items,
                remaining,
            } => self.exec_dynseq(fi, items, remaining),
            Step::Match { fi, pat, value } => self.exec_match(fi, pat, value),
            Step::CollectRow {
                caller,
                callee,
                param_slots,
                args,
                commit,
            } => self.exec_collect(caller, callee, param_slots, args, commit),
        }
    }

    fn exec_goal(&mut self, fi: usize, goal: &'g Goal) -> RtResult<()> {
        match goal {
            Goal::True | Goal::Trivial => Ok(()),
            Goal::Fail => {
                self.fail();
                Ok(())
            }
            Goal::Seq(goals) => {
                for g in goals.iter().rev() {
                    self.push(Step::Goal { fi, goal: g });
                }
                Ok(())
            }
            Goal::DynSeq(items) => self.exec_dynseq(fi, items, (0..items.len()).collect()),
            Goal::Any(branches) => {
                match branches.len() {
                    0 => self.fail(),
                    1 => self.push(Step::Goal {
                        fi,
                        goal: &branches[0],
                    }),
                    _ => {
                        if let Some(d) = self.next_guide() {
                            debug_assert!((d as usize) < branches.len(), "bad replay guide");
                            self.push(Step::Goal {
                                fi,
                                goal: &branches[d as usize],
                            });
                        } else {
                            self.choice(Alt::Branches {
                                fi,
                                branches,
                                next: 1,
                            });
                            self.push(Step::Goal {
                                fi,
                                goal: &branches[0],
                            });
                        }
                    }
                }
                Ok(())
            }
            Goal::Not(inner) => {
                if self.exists(fi, inner)? {
                    self.fail();
                }
                Ok(())
            }
            Goal::Unify(lhs, rhs) => {
                let lg = self.ground(fi, lhs);
                let rg = self.ground(fi, rhs);
                match (lg, rg) {
                    (true, true) => {
                        let a = self.eval_expr(fi, lhs)?;
                        let b = self.eval_expr(fi, rhs)?;
                        if !self.values_equal(&a, &b)? {
                            self.fail();
                        }
                        Ok(())
                    }
                    (true, false) => {
                        let v = self.eval_expr(fi, lhs)?;
                        self.push(Step::Match {
                            fi,
                            pat: rhs,
                            value: v,
                        });
                        Ok(())
                    }
                    (false, true) => {
                        let v = self.eval_expr(fi, rhs)?;
                        self.push(Step::Match {
                            fi,
                            pat: lhs,
                            value: v,
                        });
                        Ok(())
                    }
                    (false, false) => Err(RtError::new(format!(
                        "equation with unknowns on both sides is not solvable: {lhs:?} = {rhs:?}"
                    ))),
                }
            }
            Goal::Compare(op, lhs, rhs) => {
                let a = self.eval_expr(fi, lhs)?;
                let b = self.eval_expr(fi, rhs)?;
                let (x, y) = match (a.as_int(), b.as_int()) {
                    (Some(x), Some(y)) => (x, y),
                    _ => {
                        if *op == CmpOp::Ne {
                            if self.values_equal(&a, &b)? {
                                self.fail();
                            }
                            return Ok(());
                        }
                        return Err(RtError::new("ordering comparison on non-integers"));
                    }
                };
                let holds = match op {
                    CmpOp::Le => x <= y,
                    CmpOp::Lt => x < y,
                    CmpOp::Ge => x >= y,
                    CmpOp::Gt => x > y,
                    CmpOp::Ne => x != y,
                    CmpOp::Eq => x == y,
                };
                if !holds {
                    self.fail();
                }
                Ok(())
            }
            Goal::Invoke {
                receiver,
                name,
                args,
                dispatch,
            } => {
                let subject: Value = match receiver {
                    Some(r) if self.ground(fi, r) => self.eval_expr(fi, r)?,
                    None => self.frames[fi]
                        .this
                        .clone()
                        .ok_or_else(|| RtError::new("predicate call without a receiver"))?,
                    Some(_) => {
                        return Err(RtError::new("predicate receiver is not ground"));
                    }
                };
                match &subject {
                    Value::Obj(_) => {
                        let Some(pid) = self.resolve_dispatch(*dispatch, &subject, name, false)
                        else {
                            return Err(RtError::method_not_found(
                                subject.class().unwrap_or_default(),
                                name,
                            ));
                        };
                        self.enter_constructor(fi, subject.clone(), pid, args)
                    }
                    Value::Bool(b) => {
                        if !*b {
                            self.fail();
                        }
                        Ok(())
                    }
                    other => Err(RtError::new(format!(
                        "cannot use `{other}` as a predicate receiver"
                    ))),
                }
            }
            Goal::Test(e) => {
                let v = self.eval_expr(fi, e)?;
                if v.as_bool() != Some(true) {
                    self.fail();
                }
                Ok(())
            }
        }
    }

    /// Threads the compiled instruction stream from `pc`. Deterministic
    /// instructions (comparisons, tests, ground unifications, boolean
    /// predicates, failed negations) continue inline at their compile-time
    /// `next` pc without touching the continuation stack; only operations
    /// that need a resumption boundary — pattern matches, constructor
    /// entries, dynamic conjunctions — push a [`Step::Bc`] continuation.
    /// The inline loop terminates because bodies are emitted right-to-left:
    /// every `next` (and every `Choice` alternative) is strictly smaller
    /// than the pc of the instruction holding it. One budget step is
    /// charged per [`Step`], same as the goal walker — the inline chain is
    /// bounded by the body length.
    fn exec_bc(&mut self, fi: usize, body: &'g BcBody, mut pc: Pc) -> RtResult<()> {
        loop {
            match &body.instrs[pc as usize] {
                Instr::Emit => return Ok(()),
                Instr::Fail => {
                    self.fail();
                    return Ok(());
                }
                Instr::Choice(alts) => {
                    if let Some(d) = self.next_guide() {
                        debug_assert!((d as usize) < alts.len(), "bad replay guide");
                        pc = alts[d as usize];
                    } else {
                        self.choice(Alt::BcChoice {
                            fi,
                            body,
                            alts,
                            next: 1,
                        });
                        pc = alts[0];
                    }
                }
                Instr::Unify {
                    lhs,
                    rhs,
                    mode,
                    next,
                } => {
                    let l = &body.exprs[*lhs as usize];
                    let r = &body.exprs[*rhs as usize];
                    let mode = match mode {
                        UnifyMode::Dynamic => match (self.ground(fi, l), self.ground(fi, r)) {
                            (true, true) => UnifyMode::EvalEval,
                            (true, false) => UnifyMode::EvalMatch,
                            (false, true) => UnifyMode::MatchEval,
                            (false, false) => {
                                return Err(RtError::new(format!(
                                        "equation with unknowns on both sides is not solvable: {l:?} = {r:?}"
                                    )));
                            }
                        },
                        m => *m,
                    };
                    match mode {
                        UnifyMode::EvalEval => {
                            let a = self.eval_expr(fi, l)?;
                            let b = self.eval_expr(fi, r)?;
                            if !self.values_equal(&a, &b)? {
                                self.fail();
                                return Ok(());
                            }
                            pc = *next;
                        }
                        UnifyMode::EvalMatch => {
                            let v = self.eval_expr(fi, l)?;
                            self.push(Step::Bc {
                                fi,
                                body,
                                pc: *next,
                            });
                            self.push(Step::Match {
                                fi,
                                pat: r,
                                value: v,
                            });
                            return Ok(());
                        }
                        UnifyMode::MatchEval => {
                            let v = self.eval_expr(fi, r)?;
                            self.push(Step::Bc {
                                fi,
                                body,
                                pc: *next,
                            });
                            self.push(Step::Match {
                                fi,
                                pat: l,
                                value: v,
                            });
                            return Ok(());
                        }
                        UnifyMode::Dynamic => unreachable!("dynamic mode resolved above"),
                    }
                }
                Instr::Compare { op, lhs, rhs, next } => {
                    let a = self.eval_expr(fi, &body.exprs[*lhs as usize])?;
                    let b = self.eval_expr(fi, &body.exprs[*rhs as usize])?;
                    let holds = match (a.as_int(), b.as_int()) {
                        (Some(x), Some(y)) => match op {
                            CmpOp::Le => x <= y,
                            CmpOp::Lt => x < y,
                            CmpOp::Ge => x >= y,
                            CmpOp::Gt => x > y,
                            CmpOp::Ne => x != y,
                            CmpOp::Eq => x == y,
                        },
                        _ => {
                            if *op != CmpOp::Ne {
                                return Err(RtError::new("ordering comparison on non-integers"));
                            }
                            !self.values_equal(&a, &b)?
                        }
                    };
                    if !holds {
                        self.fail();
                        return Ok(());
                    }
                    pc = *next;
                }
                Instr::Test { expr, next } => {
                    let v = self.eval_expr(fi, &body.exprs[*expr as usize])?;
                    if v.as_bool() != Some(true) {
                        self.fail();
                        return Ok(());
                    }
                    pc = *next;
                }
                Instr::Invoke {
                    receiver,
                    name,
                    args_start,
                    args_len,
                    dispatch,
                    next,
                } => {
                    let subject: Value = match receiver {
                        Some(r) => {
                            let r = &body.exprs[*r as usize];
                            if !self.ground(fi, r) {
                                return Err(RtError::new("predicate receiver is not ground"));
                            }
                            self.eval_expr(fi, r)?
                        }
                        None => self.frames[fi]
                            .this
                            .clone()
                            .ok_or_else(|| RtError::new("predicate call without a receiver"))?,
                    };
                    match &subject {
                        Value::Obj(_) => {
                            let name = &body.names[*name as usize];
                            let Some(pid) = self.resolve_dispatch(*dispatch, &subject, name, false)
                            else {
                                return Err(RtError::method_not_found(
                                    subject.class().unwrap_or_default(),
                                    name,
                                ));
                            };
                            let args = body.args(*args_start, *args_len);
                            self.push(Step::Bc {
                                fi,
                                body,
                                pc: *next,
                            });
                            return self.enter_constructor(fi, subject.clone(), pid, args);
                        }
                        Value::Bool(b) => {
                            if !*b {
                                self.fail();
                                return Ok(());
                            }
                            pc = *next;
                        }
                        other => {
                            return Err(RtError::new(format!(
                                "cannot use `{other}` as a predicate receiver"
                            )));
                        }
                    }
                }
                Instr::Not { goal, next } => {
                    if self.exists(fi, &body.goals[*goal as usize])? {
                        self.fail();
                        return Ok(());
                    }
                    pc = *next;
                }
                Instr::DynSeq { goal, next } => {
                    let Goal::DynSeq(items) = &body.goals[*goal as usize] else {
                        return Err(RtError::new("corrupt bytecode: DynSeq pool entry"));
                    };
                    self.push(Step::Bc {
                        fi,
                        body,
                        pc: *next,
                    });
                    return self.exec_dynseq(fi, items, (0..items.len()).collect());
                }
            }
        }
    }

    /// Selects the first ready conjunct against the *current* bindings and
    /// re-queues the rest — the run-time scheduling of `Goal::DynSeq`,
    /// re-evaluated after every solution of every earlier conjunct exactly
    /// like the recursive evaluator (and the tree-walker) do.
    fn exec_dynseq(
        &mut self,
        fi: usize,
        items: &'g [(ReadyCheck, Goal)],
        remaining: Vec<usize>,
    ) -> RtResult<()> {
        if remaining.is_empty() {
            return Ok(());
        }
        let chosen = {
            let Machine {
                plan,
                budget,
                frames,
                ..
            } = self;
            let f = &frames[fi];
            let ev = Ev::new(plan, budget);
            remaining
                .iter()
                .copied()
                .find(|&i| ev.check_ready(&f.slots, f.this.as_ref(), &items[i].0))
        };
        let Some(chosen) = chosen else {
            return Err(RtError::new(
                "formula is not solvable: no conjunct can run with the current bindings",
            ));
        };
        let rest: Vec<usize> = remaining.into_iter().filter(|&i| i != chosen).collect();
        if !rest.is_empty() {
            self.push(Step::DynSeq {
                fi,
                items,
                remaining: rest,
            });
        }
        self.push(Step::Goal {
            fi,
            goal: &items[chosen].1,
        });
        Ok(())
    }

    fn exec_match(&mut self, fi: usize, pat: &'g PExpr, value: Value) -> RtResult<()> {
        match pat {
            PExpr::Wildcard => Ok(()),
            PExpr::Decl(ty, slot, check) => {
                let admits = Ev::new(self.plan, &mut self.budget).class_admits(ty, check, &value);
                if !admits {
                    self.fail();
                    return Ok(());
                }
                if let Some(s) = slot {
                    self.bind(fi, *s, Some(value));
                }
                Ok(())
            }
            PExpr::Name { slot, .. } | PExpr::Result(slot) => {
                match self.frames[fi].slots[*slot as usize].clone() {
                    Some(bound) => {
                        if !self.values_equal(&bound, &value)? {
                            self.fail();
                        }
                        Ok(())
                    }
                    None => {
                        self.bind(fi, *slot, Some(value));
                        Ok(())
                    }
                }
            }
            PExpr::As(a, b) => {
                self.push(Step::Match {
                    fi,
                    pat: b,
                    value: value.clone(),
                });
                self.push(Step::Match { fi, pat: a, value });
                Ok(())
            }
            PExpr::OrPat(a, b) => {
                if let Some(d) = self.next_guide() {
                    debug_assert!(d < 2, "bad replay guide");
                    let pat = if d == 0 { a } else { b };
                    self.push(Step::Match { fi, pat, value });
                } else {
                    self.choice(Alt::OrPat {
                        fi,
                        pat: b,
                        value: value.clone(),
                    });
                    self.push(Step::Match { fi, pat: a, value });
                }
                Ok(())
            }
            PExpr::Where(p, goal) => {
                self.push(Step::Goal { fi, goal });
                self.push(Step::Match { fi, pat: p, value });
                Ok(())
            }
            PExpr::Call {
                receiver,
                name,
                args,
                kind,
                dispatch,
            } => {
                match (kind, receiver) {
                    (CallKind::StaticConstruct(cr), _) | (CallKind::ClassCtor(cr), None) => {
                        let resolved = {
                            let ev = Ev::new(self.plan, &mut self.budget);
                            ev.resolve_static_match(cr, name)
                        };
                        let Some(pid) = resolved else {
                            return Err(RtError::method_not_found(&cr.name, name));
                        };
                        if let Some(vclass) = value.class() {
                            if !self.is_subtype(vclass, &cr.name) {
                                let converted = Ev::new(self.plan, &mut self.budget)
                                    .convert_via_equals(&cr.name, &value)?;
                                return match converted {
                                    Some(c) => self.enter_constructor(fi, c, pid, args),
                                    None => {
                                        self.fail();
                                        Ok(())
                                    }
                                };
                            }
                        }
                        self.enter_constructor(fi, value, pid, args)
                    }
                    _ => {
                        // Dynamic: dispatch on the value's own runtime class
                        // through the same table the recursive evaluator uses.
                        let Some(pid) = self.resolve_dispatch(*dispatch, &value, name, true) else {
                            return Err(RtError::method_not_found(
                                value.class().unwrap_or_default(),
                                name,
                            ));
                        };
                        self.enter_constructor(fi, value, pid, args)
                    }
                }
            }
            PExpr::Binary(op, a, b) => {
                let Some(target) = value.as_int() else {
                    self.fail();
                    return Ok(());
                };
                let a_ground = self.ground(fi, a);
                let b_ground = self.ground(fi, b);
                match (op, a_ground, b_ground) {
                    (_, true, true) => {
                        let v = self.eval_expr(fi, pat)?;
                        if !self.values_equal(&v, &value)? {
                            self.fail();
                        }
                        Ok(())
                    }
                    (BinOp::Add, true, false) => {
                        let av = self.eval_expr(fi, a)?.as_int().unwrap_or(0);
                        self.push(Step::Match {
                            fi,
                            pat: b,
                            value: Value::Int(target - av),
                        });
                        Ok(())
                    }
                    (BinOp::Add, false, true) => {
                        let bv = self.eval_expr(fi, b)?.as_int().unwrap_or(0);
                        self.push(Step::Match {
                            fi,
                            pat: a,
                            value: Value::Int(target - bv),
                        });
                        Ok(())
                    }
                    (BinOp::Sub, false, true) => {
                        let bv = self.eval_expr(fi, b)?.as_int().unwrap_or(0);
                        self.push(Step::Match {
                            fi,
                            pat: a,
                            value: Value::Int(target + bv),
                        });
                        Ok(())
                    }
                    (BinOp::Sub, true, false) => {
                        let av = self.eval_expr(fi, a)?.as_int().unwrap_or(0);
                        self.push(Step::Match {
                            fi,
                            pat: b,
                            value: Value::Int(av - target),
                        });
                        Ok(())
                    }
                    _ => Err(RtError::new(
                        "cannot invert this arithmetic pattern at run time",
                    )),
                }
            }
            PExpr::Neg(a) => {
                let Some(target) = value.as_int() else {
                    self.fail();
                    return Ok(());
                };
                self.push(Step::Match {
                    fi,
                    pat: a,
                    value: Value::Int(-target),
                });
                Ok(())
            }
            other => {
                let v = self.eval_expr(fi, other)?;
                if !self.values_equal(&v, &value)? {
                    self.fail();
                }
                Ok(())
            }
        }
    }

    /// Starts a constructor match: pushes the callee's activation frame
    /// (with `this` = the matched value) and queues its matching goal with a
    /// [`Step::CollectRow`] boundary below it, so every callee solution
    /// flows into the caller's argument patterns and backtracking resumes
    /// the callee's remaining choice points.
    fn enter_constructor(
        &mut self,
        caller: usize,
        value: Value,
        pid: PlanId,
        args: &'g [PExpr],
    ) -> RtResult<()> {
        let plan = self.plan;
        let mp = plan.method(pid);
        let BodyPlan::Formula { matching, .. } = &mp.body else {
            return Err(RtError::mode_mismatch(
                &mp.info.qualified_name(),
                "backward (pattern-matching)",
            ));
        };
        if self.frames.len() >= self.budget.max_depth {
            return Err(RtError::limit(
                "depth",
                self.budget.max_depth as u64,
                "solver recursion limit exceeded",
            ));
        }
        let callee = self.frames.len();
        self.frames.push(FrameCtx {
            slots: vec![None; matching.frame.len()],
            this: Some(value),
        });
        // Determinism commit (`jmatch_core::analysis`): a `Det` matching
        // form yields at most one solution and cannot err, so once its
        // single solution reaches the row boundary every choice point it
        // created is provably barren. Capture the absolute choice mark now;
        // `exec_collect` truncates back to it.
        let commit = matching.det.then(|| self.donated + self.choices.len());
        self.push(Step::CollectRow {
            caller,
            callee,
            param_slots: &matching.param_slots,
            args,
            commit,
        });
        match MachineCode::of_form(matching) {
            MachineCode::Goal(goal) => self.push(Step::Goal { fi: callee, goal }),
            MachineCode::Bc(body) => self.push(Step::Bc {
                fi: callee,
                body,
                pc: body.entry,
            }),
        }
        Ok(())
    }

    /// One callee solution reached the row boundary: collect the parameter
    /// values and match the caller's argument patterns (first solution per
    /// pattern, left to right; unbound parameters and pattern errors skip
    /// the row, like the recursive evaluator).
    fn exec_collect(
        &mut self,
        caller: usize,
        callee: usize,
        param_slots: &[SlotId],
        args: &[PExpr],
        commit: Option<usize>,
    ) -> RtResult<()> {
        if let Some(mark) = commit {
            // The callee's matching form is `Det`: this is its only
            // solution, so its leftover choice points (everything above the
            // entry mark) are barren — drop them. Trail entries above the
            // dropped marks simply become permanent bindings, which is
            // exactly what committing means. `mark` is absolute; donations
            // since capture shift the local index down.
            let keep = mark.saturating_sub(self.donated);
            if self.choices.len() > keep {
                self.choices.truncate(keep);
            }
        }
        let mut row = Vec::with_capacity(param_slots.len());
        for &s in param_slots {
            match &self.frames[callee].slots[s as usize] {
                Some(v) => row.push(v.clone()),
                None => {
                    self.fail();
                    return Ok(());
                }
            }
        }
        let (work, failed) = {
            let Machine {
                plan,
                budget,
                frames,
                ..
            } = self;
            let mut work = frames[caller].slots.clone();
            let mut failed = false;
            let mut ev = Ev::new(plan, budget);
            for (i, v) in row.iter().enumerate() {
                let Some(pat) = args.get(i) else {
                    continue;
                };
                // Like the evaluator's `match_args_then`, argument patterns
                // are matched without `this` in scope.
                let mut sol: Option<Frame> = None;
                let r = ev.match_pat(&mut work, None, pat, v, &mut |_, fr2| {
                    sol = Some(fr2.clone());
                    Ok(false)
                });
                if r.is_err() {
                    failed = true;
                    break;
                }
                match sol {
                    Some(s) => work = s,
                    None => {
                        failed = true;
                        break;
                    }
                }
            }
            (work, failed)
        };
        if failed {
            self.fail();
            return Ok(());
        }
        let changed: Vec<(usize, Option<Value>)> = work
            .iter()
            .enumerate()
            .filter(|(i, w)| !slot_unchanged(&self.frames[caller].slots[*i], w))
            .map(|(i, w)| (i, w.clone()))
            .collect();
        for (i, w) in changed {
            self.bind(caller, i as SlotId, w);
        }
        Ok(())
    }
}

/// Cheap slot comparison for the `exec_collect` diff: object identity via
/// `Arc::ptr_eq` instead of structural equality, so an unchanged list-valued
/// slot costs O(1) per callee solution, not O(list). Distinct-but-equal
/// objects read as "changed", which only records a redundant trail entry.
fn slot_unchanged(old: &Option<Value>, new: &Option<Value>) -> bool {
    match (old, new) {
        (None, None) => true,
        (Some(Value::Obj(a)), Some(Value::Obj(b))) => std::sync::Arc::ptr_eq(a, b),
        (Some(a), Some(b)) => a == b,
        _ => false,
    }
}

/// Iterative teardown of the persistent continuation chains: `Cont` is a
/// linked list whose derived drop would recurse once per uniquely-owned
/// node, overflowing the native stack when a deep enumeration (raised
/// `Limits::max_depth`) is abandoned mid-run. Unlink every chain — the
/// machine's own and each choice point's — in a loop instead.
impl Drop for Machine<'_> {
    fn drop(&mut self) {
        let mut chains: Vec<ContRef<'_>> = Vec::with_capacity(self.choices.len() + 1);
        chains.push(self.cont.take());
        for ch in &mut self.choices {
            chains.push(ch.cont.take());
        }
        for chain in chains {
            let mut cur = chain;
            while let Some(rc) = cur {
                match Rc::try_unwrap(rc) {
                    Ok(mut node) => cur = node.next.take(),
                    // Still shared by a chain later in the list; that chain
                    // will continue the unlinking when its turn comes.
                    Err(_) => break,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args;
    use crate::workspace::Workspace;

    /// The `parallel_scaling` workload: `vals` enumerates a complete binary
    /// tree's leaves left-to-right, so every `Node` activation is one
    /// two-way choice point — the densest choice-path shape the OR-parallel
    /// splitter sees.
    const TREE_SRC: &str = r#"
        interface Tree {
            constructor leaf(int v) returns(v);
            constructor node(Tree l, Tree r) returns(l, r);
            boolean vals(int x) iterates(x);
        }
        class Leaf implements Tree {
            int val;
            constructor leaf(int v) returns(v) ( val = v )
            constructor node(Tree l, Tree r) returns(l, r) ( false )
            boolean vals(int x) iterates(x) ( leaf(x) )
        }
        class Node implements Tree {
            Tree left;
            Tree right;
            constructor leaf(int v) returns(v) ( false )
            constructor node(Tree l, Tree r) returns(l, r) ( left = l && right = r )
            boolean vals(int x) iterates(x) ( node(Tree l, _) && l.vals(x) || node(_, Tree r) && r.vals(x) )
        }
    "#;

    fn complete_tree(program: &crate::Program, depth: u32, next: &mut i64) -> Value {
        let leaf = program.ctor("Leaf", "leaf").unwrap();
        let node = program.ctor("Node", "node").unwrap();
        fn build(
            leaf: &crate::CtorRef,
            node: &crate::CtorRef,
            depth: u32,
            next: &mut i64,
        ) -> Value {
            if depth == 0 {
                let v = leaf.construct(args![*next]).unwrap();
                *next += 1;
                v
            } else {
                let l = build(leaf, node, depth - 1, next);
                let r = build(leaf, node, depth - 1, next);
                node.construct(args![l, r]).unwrap()
            }
        }
        build(&leaf, &node, depth, next)
    }

    /// Runs `vals` over a 4096-leaf tree to the first solution, then drains
    /// the machine's choice points through [`Machine::split_oldest`],
    /// returning every exported replay prefix in donation order.
    fn donated_prefixes(bytecode: bool) -> Vec<Vec<u32>> {
        let program = Workspace::new()
            .verify(false)
            .bytecode(bytecode)
            .compile(TREE_SRC)
            .unwrap();
        let mut next = 0i64;
        let tree = complete_tree(&program, 12, &mut next);
        let plan = program.plan();
        let pid = plan.lookup_impl("Node", "vals").unwrap();
        let BodyPlan::Formula { matching, .. } = &plan.method(pid).body else {
            panic!("vals has a declarative body");
        };
        let mut machine = Machine::new(
            plan,
            MachineCode::of_form(matching),
            vec![None; matching.frame.len()],
            Some(tree),
            10_000,
            u64::MAX,
        );
        assert!(machine.next_solution().unwrap());
        let mut prefixes = Vec::new();
        while machine.can_split() {
            prefixes.extend(machine.split_oldest());
        }
        prefixes
    }

    /// Replacing boxed-continuation path replay with pc-based choice
    /// restoration must not grow the OR-parallel task descriptors: the
    /// 4096-leaf tree's donated prefixes are required to be *identical*
    /// under both code forms (the bytecode `Choice` mirrors its `Goal::Any`
    /// one-to-one), so their serialized size — 4 bytes per decision — can
    /// never be larger.
    #[test]
    fn bytecode_split_prefixes_match_goal_tree_prefixes() {
        let bc = donated_prefixes(true);
        let tree = donated_prefixes(false);
        let size = |ps: &[Vec<u32>]| ps.iter().map(|p| 4 * p.len()).sum::<usize>();
        assert_eq!(bc, tree, "donated replay prefixes diverged");
        assert!(size(&bc) <= size(&tree));
        // The first solution of a depth-12 enumeration holds one untried
        // alternative per ancestor: 12 donatable prefixes, each one
        // decision longer than the last.
        assert_eq!(bc.len(), 12);
        for (i, p) in bc.iter().enumerate() {
            assert_eq!(p.len(), i + 1, "prefix {i} has wrong depth: {p:?}");
        }
    }
}
