//! OR-parallel solution enumeration: a work-stealing pool of [`Machine`]s
//! over one shared [`ProgramPlan`].
//!
//! # The model
//!
//! Backtracking enumeration explores a **choice tree**: at every
//! multi-alternative choice point (a `Goal::Any` disjunction or an
//! or-pattern) the machine picks alternative 0 and leaves the rest for
//! backtracking. Execution is deterministic *between* choice points, so a
//! node of the tree is fully identified by its **choice path** — the
//! alternative indices taken at each choice point from the root, in
//! creation order — and sequential enumeration order is exactly
//! lexicographic order on choice paths.
//!
//! This module parallelizes the tree by **path replay** (the classic
//! recomputation approach to OR-parallelism): a *task* is a choice-path
//! prefix, and a worker claims one by building a fresh [`Machine`] over the
//! shared `Arc<ProgramPlan>` — with its own trail, frame arena, and
//! continuation stack — and replaying the prefix as a guide
//! ([`Machine::with_budget`]). Guided choice points take the recorded
//! alternative directly and create no local choice point, so the worker
//! then owns exactly the subtree under the prefix and enumerates it with
//! plain sequential DFS. Nothing mutable is ever shared between workers;
//! replay trades a little duplicated deterministic work for zero
//! synchronization on bindings.
//!
//! # Splitting invariants
//!
//! Work is split on demand: when some worker is idle (`hungry > 0` in the
//! [`Injector`]), a busy worker donates via [`Machine::split_oldest`],
//! which exports **all untried alternatives of its oldest (root-most)
//! choice point** as new tasks and removes that choice point locally.
//! Three invariants follow, and the ordered-mode collector depends on
//! them:
//!
//! 1. **Partition.** A donated alternative is never explored locally and
//!    every local alternative is never donated, so the dispensed tasks
//!    partition the solution space — no duplicates, no gaps.
//! 2. **Solutions before donations.** Untried alternatives have larger
//!    indices than the one being explored, so *every* solution a worker
//!    emits for its task — before or after a donation — is
//!    lexicographically before *every* subtree it donates.
//! 3. **Later donations before earlier ones.** A later donation comes from
//!    a choice point inside the subtree currently being explored, which
//!    lies entirely before the previously donated siblings.
//!
//! Invariants 2 and 3 mean a task's output in sequential order is: the
//! worker's own emissions (already in DFS order), then its donation rounds
//! *in reverse round order*, each round in alternative order. The ordered
//! collector ([`ParStream`]) is a reorder buffer that walks exactly this
//! recursion, streaming the head task's solutions as they arrive and
//! buffering the rest; unordered mode skips the buffer and merges solutions
//! as produced.
//!
//! # Budgets and errors
//!
//! All workers draw on one [`SharedBudget`] pool sized by
//! [`Limits::max_steps`], debited in batches (see
//! [`crate::eval::Budget::new_shared`]), so the configured ceiling bounds
//! the *combined* work of the pool — a budget a sequential run exceeds is
//! always exceeded in parallel too (parallel replay can only add work).
//! `max_depth` is a per-derivation nesting property and is enforced
//! per-machine, identically to sequential runs. A worker error ends its
//! task; in ordered mode the collector surfaces it at the task's exact
//! sequential position (after the task's earlier solutions, before
//! everything lexicographically later), reproducing the sequential
//! stream's error placement for deterministic (non-budget) errors.

use crate::api::{frame_bindings, param_row_bindings, Limits};
use crate::eval::{Budget, Frame, SharedBudget};
use crate::machine::{Machine, MachineCode, RunOutcome};
use crate::{Bindings, RtError, RtResult, Value};
use jmatch_core::lower::{BodyPlan, PlanId, ProgramPlan, SlotId, SolvedForm};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// A task's choice-path prefix (see the module docs).
type ChoicePath = Vec<u32>;

/// Dense id of one dispensed task.
type TaskId = u64;

const ROOT_TASK: TaskId = 0;

/// Machine steps a worker runs between scheduling points (cancellation
/// polls and donation checks).
const WORKER_FUEL: u64 = 256;

/// Worker stack size: the machine keeps its activation frames on the heap,
/// but deterministic sub-evaluation recurses natively up to
/// `Limits::max_depth`, so give workers the same headroom a test thread's
/// raised limits may need.
const WORKER_STACK: usize = 16 << 20;

/// Whether solutions are merged back in sequential order or as produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ParMode {
    /// Reproduce the sequential machine's exact enumeration order (and
    /// error placement) through a reorder buffer.
    Ordered,
    /// Merge solutions as workers produce them — maximal throughput, order
    /// depends on scheduling.
    Unordered,
}

/// What a parallel enumeration runs: the plan-engine counterpart of
/// `api::Source`, with everything owned so it can be shipped to workers.
#[derive(Clone)]
pub(crate) enum ParJob {
    /// Backward mode of a constructor: solve the matching plan of `pid`
    /// against `value`.
    Deconstruct {
        /// The matching plan.
        pid: PlanId,
        /// The matched value (`this` inside the plan).
        value: Value,
    },
    /// A standalone lowered formula with its entry bindings.
    Formula {
        /// The lowered form (shared, immutable).
        form: Arc<SolvedForm>,
        /// Entry bindings as (slot, value) writes into the root frame.
        seed: Vec<(SlotId, Value)>,
        /// `this`, when in scope.
        this: Option<Value>,
    },
}

/// Messages from workers to the collecting iterator.
enum Msg {
    /// One solution of `task`.
    Sol { task: TaskId, bindings: Bindings },
    /// `parent` donated one round of child tasks (in alternative order).
    Spawn {
        parent: TaskId,
        children: Vec<TaskId>,
    },
    /// `task` is finished; `error` is the failure that ended it, if any.
    Done {
        task: TaskId,
        error: Option<RtError>,
    },
}

/// The shared work queue: pending tasks plus the bookkeeping workers need
/// to decide when to donate (idle-worker count) and when to exit (no
/// pending and no running tasks).
struct Injector {
    state: Mutex<QueueState>,
    cv: Condvar,
    /// Workers currently parked in [`Injector::pop`] — the cheap signal
    /// busy workers poll to decide whether donating is worthwhile.
    hungry: AtomicUsize,
    /// Tasks currently queued (mirror of `state.tasks.len()`), so busy
    /// workers can skip donating when the queue already holds enough work
    /// to feed the idle workers.
    pending: AtomicUsize,
    cancelled: AtomicBool,
    next_id: AtomicU64,
}

struct QueueState {
    tasks: VecDeque<(TaskId, ChoicePath)>,
    /// Tasks dispensed or queued but not yet finished.
    outstanding: usize,
}

impl Injector {
    /// Locks the queue state, tolerating poisoning: a panicking worker
    /// must not cascade panics into its siblings or the collector (the
    /// queue's invariants are a counter and a deque, both valid at every
    /// await point).
    fn lock(&self) -> std::sync::MutexGuard<'_, QueueState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn new() -> Self {
        let mut tasks = VecDeque::new();
        tasks.push_back((ROOT_TASK, ChoicePath::new()));
        Injector {
            state: Mutex::new(QueueState {
                tasks,
                outstanding: 1,
            }),
            cv: Condvar::new(),
            hungry: AtomicUsize::new(0),
            pending: AtomicUsize::new(1),
            cancelled: AtomicBool::new(false),
            next_id: AtomicU64::new(ROOT_TASK + 1),
        }
    }

    fn fresh_id(&self) -> TaskId {
        self.next_id.fetch_add(1, Ordering::Relaxed)
    }

    fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::Relaxed)
    }

    fn cancel(&self) {
        self.cancelled.store(true, Ordering::Relaxed);
        self.cv.notify_all();
    }

    /// Blocks until a task is available; returns `None` when the
    /// enumeration is complete (nothing pending, nothing running) or
    /// cancelled.
    fn pop(&self) -> Option<(TaskId, ChoicePath)> {
        let mut st = self.lock();
        loop {
            if self.is_cancelled() {
                return None;
            }
            if let Some(t) = st.tasks.pop_front() {
                self.pending.fetch_sub(1, Ordering::Relaxed);
                return Some(t);
            }
            if st.outstanding == 0 {
                return None;
            }
            self.hungry.fetch_add(1, Ordering::Relaxed);
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
            self.hungry.fetch_sub(1, Ordering::Relaxed);
        }
    }

    fn push_tasks(&self, entries: Vec<(TaskId, ChoicePath)>) {
        let mut st = self.lock();
        st.outstanding += entries.len();
        self.pending.fetch_add(entries.len(), Ordering::Relaxed);
        st.tasks.extend(entries);
        drop(st);
        self.cv.notify_all();
    }

    /// One dispensed task finished (successfully or not).
    fn finish(&self) {
        let mut st = self.lock();
        st.outstanding -= 1;
        let done = st.outstanding == 0;
        drop(st);
        if done {
            self.cv.notify_all();
        }
    }
}

// ---------------------------------------------------------------------------
// Workers
// ---------------------------------------------------------------------------

fn worker_loop(
    plan: &ProgramPlan,
    job: &ParJob,
    limits: Limits,
    pool: &Arc<SharedBudget>,
    inj: &Injector,
    tx: &mpsc::SyncSender<Msg>,
    interrupt: Option<&Arc<std::sync::atomic::AtomicBool>>,
) {
    while let Some((task, guide)) = inj.pop() {
        // The guard runs `finish` even if `run_task` panics: a worker that
        // unwinds must still retire its task, or `outstanding` never hits
        // zero and the surviving workers (and the collector) wait forever.
        let _finish = FinishGuard(inj);
        run_task(plan, job, limits, pool, inj, tx, task, guide, interrupt);
    }
}

/// Retires one dispensed task on drop — including on unwind.
struct FinishGuard<'a>(&'a Injector);

impl Drop for FinishGuard<'_> {
    fn drop(&mut self) {
        self.0.finish();
    }
}

#[allow(clippy::too_many_arguments)]
fn run_task(
    plan: &ProgramPlan,
    job: &ParJob,
    limits: Limits,
    pool: &Arc<SharedBudget>,
    inj: &Injector,
    tx: &mpsc::SyncSender<Msg>,
    task: TaskId,
    guide: ChoicePath,
    interrupt: Option<&Arc<std::sync::atomic::AtomicBool>>,
) {
    let mut budget = Budget::new_shared(limits.max_depth, Arc::clone(pool));
    budget.set_interrupt(interrupt.map(Arc::clone));
    let (code, root, this, root_det): (MachineCode, Frame, Option<Value>, bool) = match job {
        ParJob::Deconstruct { pid, value } => {
            let mp = plan.method(*pid);
            let BodyPlan::Formula { matching, .. } = &mp.body else {
                // Checked at query construction; defend anyway.
                let _ = tx.send(Msg::Done {
                    task,
                    error: Some(RtError::mode_mismatch(
                        &mp.info.qualified_name(),
                        "backward (pattern-matching)",
                    )),
                });
                return;
            };
            (
                MachineCode::of_form(matching),
                vec![None; matching.frame.len()],
                Some(value.clone()),
                matching.det,
            )
        }
        ParJob::Formula { form, seed, this } => {
            let mut root: Frame = vec![None; form.frame.len()];
            for (s, v) in seed {
                root[*s as usize] = Some(v.clone());
            }
            (MachineCode::of_form(form), root, this.clone(), form.det)
        }
    };
    let mut machine =
        Machine::with_budget(plan, code, root, this, budget, guide).with_root_det(root_det);
    loop {
        if inj.is_cancelled() {
            machine.release_budget();
            return;
        }
        match machine.run(WORKER_FUEL) {
            Err(e) => {
                machine.release_budget();
                let _ = tx.send(Msg::Done {
                    task,
                    error: Some(e),
                });
                return;
            }
            Ok(RunOutcome::Exhausted) => {
                machine.release_budget();
                let _ = tx.send(Msg::Done { task, error: None });
                return;
            }
            Ok(RunOutcome::Paused) => {
                donate_if_hungry(&mut machine, inj, tx, task);
            }
            Ok(RunOutcome::Solution) => {
                if let Some(bindings) = extract_solution(plan, job, machine.root_frame()) {
                    if tx.send(Msg::Sol { task, bindings }).is_err() {
                        // The consumer is gone; stop quietly.
                        machine.release_budget();
                        return;
                    }
                }
                donate_if_hungry(&mut machine, inj, tx, task);
            }
        }
    }
}

/// Donates the machine's oldest choice point when some worker is idle.
/// The `Spawn` message goes out *before* the tasks are queued, so the
/// collector can never see a child finish whose parent round it will not
/// eventually learn about (messages from one worker arrive in order, and
/// `Done` for the parent is sent after all its `Spawn`s).
fn donate_if_hungry(
    machine: &mut Machine<'_>,
    inj: &Injector,
    tx: &mpsc::SyncSender<Msg>,
    parent: TaskId,
) {
    // Donate only when idle workers outnumber the tasks already queued:
    // splitting is cheap but replay is not free, so feeding a saturated
    // queue would only shred the search into needlessly fine grains.
    if inj.hungry.load(Ordering::Relaxed) <= inj.pending.load(Ordering::Relaxed)
        || !machine.can_split()
    {
        return;
    }
    let prefixes = machine.split_oldest();
    if prefixes.is_empty() {
        return;
    }
    let entries: Vec<(TaskId, ChoicePath)> =
        prefixes.into_iter().map(|p| (inj.fresh_id(), p)).collect();
    let children: Vec<TaskId> = entries.iter().map(|e| e.0).collect();
    if tx.send(Msg::Spawn { parent, children }).is_err() {
        // Consumer gone: drop the donation; the stream is dead anyway.
        return;
    }
    inj.push_tasks(entries);
}

/// Turns a machine solution into caller-facing [`Bindings`], mirroring the
/// sequential `Solutions` extraction (rows leaving a declared parameter
/// unbound or ill-typed are filtered, like both recursive engines).
fn extract_solution(plan: &ProgramPlan, job: &ParJob, frame: &Frame) -> Option<Bindings> {
    match job {
        ParJob::Formula { form, .. } => Some(frame_bindings(&form.frame, frame)),
        ParJob::Deconstruct { pid, .. } => {
            let mp = plan.method(*pid);
            let BodyPlan::Formula { matching, .. } = &mp.body else {
                return None;
            };
            param_row_bindings(
                &mp.info.decl.params,
                &matching.param_slots,
                plan.table(),
                frame,
            )
        }
    }
}

// ---------------------------------------------------------------------------
// The collecting stream
// ---------------------------------------------------------------------------

/// Per-task reorder-buffer state (ordered mode).
#[derive(Default)]
struct TaskBuf {
    /// Solutions of this task, in the task's own (DFS) order.
    items: VecDeque<Bindings>,
    /// Donation rounds, chronologically; sequential order is the reverse.
    rounds: Vec<Vec<TaskId>>,
    done: bool,
    error: Option<RtError>,
}

/// The worker pool plus the collector that [`crate::Solutions`] drives:
/// ordered mode is a reorder buffer over task streams, unordered mode a
/// plain merge. Dropping the stream cancels the pool, disconnects the
/// channel (unblocking any sender), and joins every worker.
pub(crate) struct ParStream {
    rx: Option<mpsc::Receiver<Msg>>,
    inj: Arc<Injector>,
    workers: Vec<JoinHandle<()>>,
    mode: ParMode,
    /// Ordered mode: buffered state of tasks that are not the head.
    tasks: HashMap<TaskId, TaskBuf>,
    /// Ordered mode: tasks still to emit, sequential-first on top.
    stack: Vec<TaskId>,
    finished: bool,
    spawn_error: Option<RtError>,
}

/// Starts an OR-parallel enumeration over `threads` workers
/// (`0` = the `JMATCH_PAR_THREADS` default of
/// [`jmatch_smt::pool::configured_threads`]).
pub(crate) fn spawn(
    plan: Arc<ProgramPlan>,
    job: ParJob,
    limits: Limits,
    threads: usize,
    mode: ParMode,
    interrupt: Option<Arc<std::sync::atomic::AtomicBool>>,
) -> ParStream {
    let threads = if threads == 0 {
        jmatch_smt::configured_threads()
    } else {
        threads
    };
    let inj = Arc::new(Injector::new());
    let pool = Arc::new(SharedBudget::new(limits.max_steps));
    let (tx, rx) = mpsc::sync_channel::<Msg>(threads * 4 + 16);
    let mut workers = Vec::with_capacity(threads);
    let mut spawn_error = None;
    for i in 0..threads {
        let plan = Arc::clone(&plan);
        let job = job.clone();
        let pool = Arc::clone(&pool);
        let inj = Arc::clone(&inj);
        let tx = tx.clone();
        let interrupt = interrupt.clone();
        let builder = std::thread::Builder::new()
            .name(format!("jmatch-par-worker-{i}"))
            .stack_size(WORKER_STACK);
        match builder
            .spawn(move || worker_loop(&plan, &job, limits, &pool, &inj, &tx, interrupt.as_ref()))
        {
            Ok(h) => workers.push(h),
            Err(e) => {
                spawn_error = Some(RtError::new(format!(
                    "could not start OR-parallel worker {i}: {e}"
                )));
                break;
            }
        }
    }
    drop(tx);
    if spawn_error.is_some() {
        inj.cancel();
    }
    ParStream {
        rx: Some(rx),
        inj,
        workers,
        mode,
        tasks: HashMap::new(),
        stack: vec![ROOT_TASK],
        finished: false,
        spawn_error,
    }
}

impl ParStream {
    /// The next solution, an error ending the stream, or `None` when the
    /// enumeration is complete.
    pub(crate) fn next(&mut self) -> Option<RtResult<Bindings>> {
        if self.finished {
            return None;
        }
        if let Some(e) = self.spawn_error.take() {
            self.end(true);
            return Some(Err(e));
        }
        match self.mode {
            ParMode::Unordered => self.next_unordered(),
            ParMode::Ordered => self.next_ordered(),
        }
    }

    fn next_unordered(&mut self) -> Option<RtResult<Bindings>> {
        loop {
            let Some(rx) = self.rx.as_ref() else {
                self.end(false);
                return None;
            };
            match rx.recv() {
                Ok(Msg::Sol { bindings, .. }) => return Some(Ok(bindings)),
                Ok(Msg::Spawn { .. }) | Ok(Msg::Done { error: None, .. }) => {}
                Ok(Msg::Done { error: Some(e), .. }) => {
                    self.end(true);
                    return Some(Err(e));
                }
                Err(_) => {
                    // Every worker exited: the enumeration is complete.
                    self.end(false);
                    return None;
                }
            }
        }
    }

    fn next_ordered(&mut self) -> Option<RtResult<Bindings>> {
        enum Action {
            Emit(Bindings),
            Fail(RtError),
            Pop,
            Wait,
        }
        loop {
            let Some(&head) = self.stack.last() else {
                // Every task emitted: the enumeration is complete.
                self.end(false);
                return None;
            };
            let action = {
                let tb = self.tasks.entry(head).or_default();
                if let Some(b) = tb.items.pop_front() {
                    Action::Emit(b)
                } else if let Some(e) = tb.error.take() {
                    Action::Fail(e)
                } else if tb.done {
                    Action::Pop
                } else {
                    Action::Wait
                }
            };
            match action {
                Action::Emit(b) => return Some(Ok(b)),
                Action::Fail(e) => {
                    // Surfaced at the head's position: after the task's own
                    // solutions, before everything sequentially later —
                    // exactly where the sequential stream stops.
                    self.end(true);
                    return Some(Err(e));
                }
                Action::Pop => {
                    self.stack.pop();
                    let tb = self.tasks.remove(&head).unwrap_or_default();
                    // Sequential order of the children is reverse round
                    // order, each round in alternative order (module docs);
                    // push the reverse so the stack pops sequentially.
                    for round in &tb.rounds {
                        for &child in round.iter().rev() {
                            self.stack.push(child);
                        }
                    }
                }
                Action::Wait => {
                    let Some(rx) = self.rx.as_ref() else {
                        self.end(false);
                        return None;
                    };
                    match rx.recv() {
                        Ok(m) => self.dispatch(m),
                        Err(_) => {
                            // Workers gone with the head unfinished: a
                            // worker died without reporting; end the stream
                            // rather than hang.
                            self.end(false);
                            return None;
                        }
                    }
                }
            }
        }
    }

    fn dispatch(&mut self, m: Msg) {
        match m {
            Msg::Sol { task, bindings } => {
                self.tasks
                    .entry(task)
                    .or_default()
                    .items
                    .push_back(bindings);
            }
            Msg::Spawn { parent, children } => {
                self.tasks.entry(parent).or_default().rounds.push(children);
            }
            Msg::Done { task, error } => {
                let tb = self.tasks.entry(task).or_default();
                tb.done = true;
                tb.error = error;
            }
        }
    }

    /// Ends the stream: optionally cancels outstanding work, disconnects
    /// the channel, and joins every worker.
    fn end(&mut self, cancel: bool) {
        self.finished = true;
        if cancel {
            self.inj.cancel();
        }
        // Dropping the receiver unblocks any worker parked in `send`.
        self.rx = None;
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for ParStream {
    fn drop(&mut self) {
        self.inj.cancel();
        self.rx = None;
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_plumbing_is_send() {
        fn assert_send<T: Send>() {}
        assert_send::<ParJob>();
        assert_send::<Msg>();
        assert_send::<ParStream>();
    }
}
