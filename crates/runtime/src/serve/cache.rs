//! The compile-once program cache.
//!
//! Serving is only cheaper than embedding when compilation (parse +
//! resolve + verify + lower) happens **once** per distinct source: the
//! cache keys on a 64-bit FNV-1a hash of `(source, verify)`, stores the
//! shared [`Program`] behind an `Arc`, and bounds itself with an LRU
//! eviction policy. Concurrent first compiles of the same source are
//! **single-flighted** — one connection compiles while the others wait on
//! a condvar, so a thundering herd of identical cold compiles does the
//! work exactly once.

use crate::{Engine, Program, Workspace};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// FNV-1a, the std-only stable hash the cache keys on (`DefaultHasher`'s
/// output is not documented as stable across releases, and the key leaks
/// into the wire protocol as the program id).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// What a compile attempt produced.
#[derive(Debug, Clone)]
pub enum CacheOutcome {
    /// A ready program: its wire key, and whether it came from cache.
    Ready {
        /// The shared compiled program.
        program: Arc<Program>,
        /// The wire key (`"p:"` + 16 hex digits).
        key: String,
        /// `true` when no compilation ran for this request.
        cached: bool,
    },
    /// The source failed to compile; the diagnostics, rendered.
    Failed(Vec<String>),
}

/// What a [`ProgramCache::reload`] produced.
///
/// A reload is an *edit* against a resident program: the server keeps the
/// base entry's [`Workspace`], so recompilation is incremental — only the
/// methods the source delta touched are re-lowered and re-verified, and
/// the response says which.
#[derive(Debug, Clone)]
pub enum ReloadOutcome {
    /// The new source is byte-identical to the resident one: nothing ran.
    Unchanged {
        /// The (unchanged) wire key.
        key: String,
    },
    /// Incrementally recompiled: the new generation is resident under
    /// `key` (the base entry stays resident under its old key).
    Recompiled {
        /// The new wire key (`"p:"` + 16 hex digits of the new source).
        key: String,
        /// The new program generation.
        program: Arc<Program>,
        /// Qualified names of the methods whose compiled plan changed.
        methods: Vec<String>,
        /// Qualified names of the methods that were re-verified.
        reverified: Vec<String>,
    },
    /// The edit does not compile (parse error or semantic errors); the
    /// base entry stays resident and current.
    Rejected {
        /// Rendered diagnostics.
        diagnostics: Vec<String>,
    },
}

/// Counters the metrics endpoint snapshots.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Requests served from cache (compiles *and* key lookups).
    pub hits: u64,
    /// Requests that had to compile (or missed a key lookup).
    pub misses: u64,
    /// Entries evicted by the LRU bound.
    pub evictions: u64,
}

struct Entry {
    program: Arc<Program>,
    /// The full source, kept to disambiguate hash collisions.
    source: String,
    verify: bool,
    /// LRU stamp: larger = more recently used.
    stamp: u64,
    /// The workspace that built this program, kept so `reload` edits are
    /// incremental. Shared (`Arc`) between an entry and the generations
    /// reloaded from it; locked only while a reload recompiles.
    workspace: Arc<Mutex<Workspace>>,
}

#[derive(Default)]
struct Inner {
    ready: HashMap<u64, Entry>,
    /// Keys with a compile in flight; waiters block on the condvar.
    pending: HashMap<u64, ()>,
    tick: u64,
}

/// A bounded, thread-safe, single-flight LRU cache of compiled programs.
pub struct ProgramCache {
    inner: Mutex<Inner>,
    done: Condvar,
    capacity: usize,
    engine: Engine,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl ProgramCache {
    /// A cache holding at most `capacity` compiled programs (at least 1).
    pub fn new(capacity: usize, engine: Engine) -> Self {
        ProgramCache {
            inner: Mutex::new(Inner::default()),
            done: Condvar::new(),
            capacity: capacity.max(1),
            engine,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// The wire key for a source text (stable across servers).
    pub fn key_of(source: &str, verify: bool) -> String {
        format!("p:{:016x}", Self::hash_of(source, verify))
    }

    fn hash_of(source: &str, verify: bool) -> u64 {
        // Fold the verify flag into the hash: the same text compiled with
        // and without verification is two distinct programs (different
        // diagnostics), so they get distinct wire keys.
        fnv1a(source.as_bytes()) ^ (verify as u64)
    }

    /// Returns the cached program for `source`, compiling (and lowering)
    /// it exactly once across all concurrent callers on a miss.
    pub fn get_or_compile(&self, source: &str, verify: bool) -> CacheOutcome {
        let hash = Self::hash_of(source, verify);
        let key = format!("p:{hash:016x}");
        {
            let mut inner = self.inner.lock().expect("cache lock poisoned");
            loop {
                if let Some(entry) = inner.ready.get(&hash) {
                    if entry.source == source && entry.verify == verify {
                        inner.tick += 1;
                        let tick = inner.tick;
                        let entry = inner.ready.get_mut(&hash).expect("entry just found");
                        entry.stamp = tick;
                        self.hits.fetch_add(1, Ordering::Relaxed);
                        return CacheOutcome::Ready {
                            program: Arc::clone(&entry.program),
                            key,
                            cached: true,
                        };
                    }
                    // A genuine 64-bit collision: evict the older claimant
                    // and recompile. (Counted as a miss.)
                    inner.ready.remove(&hash);
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                    inner.pending.insert(hash, ());
                    break;
                }
                if inner.pending.contains_key(&hash) {
                    // Someone else is compiling this source: wait for the
                    // slot to resolve, then re-check.
                    inner = self.done.wait(inner).expect("cache lock poisoned");
                    continue;
                }
                inner.pending.insert(hash, ());
                break;
            }
        }
        // Compile outside the lock; other keys stay servable meanwhile.
        // The workspace compiles bytecode by default, so the cached
        // program amortizes the pass-4 cost across every tenant that hits
        // this key: their queries all run on the flat form — and the
        // workspace itself is kept resident so a later `reload` of this
        // entry recompiles only what the edit touched.
        self.misses.fetch_add(1, Ordering::Relaxed);
        let mut ws = Workspace::new().verify(verify).engine(self.engine);
        let compiled = ws.load(source);
        let mut inner = self.inner.lock().expect("cache lock poisoned");
        inner.pending.remove(&hash);
        self.done.notify_all();
        match compiled {
            Err(parse_error) => CacheOutcome::Failed(vec![parse_error.to_string()]),
            Ok(generation) => {
                let program = generation.into_program();
                if !program.diagnostics().errors.is_empty() {
                    return CacheOutcome::Failed(
                        program
                            .diagnostics()
                            .errors
                            .iter()
                            .map(|e| e.to_string())
                            .collect(),
                    );
                }
                let program = Arc::new(program);
                Self::insert(
                    &mut inner,
                    self,
                    hash,
                    Entry {
                        program: Arc::clone(&program),
                        source: source.to_owned(),
                        verify,
                        stamp: 0,
                        workspace: Arc::new(Mutex::new(ws)),
                    },
                );
                CacheOutcome::Ready {
                    program,
                    key,
                    cached: false,
                }
            }
        }
    }

    /// Inserts `entry` (stamping it most-recent) and applies the LRU bound.
    fn insert(inner: &mut Inner, cache: &ProgramCache, hash: u64, mut entry: Entry) {
        inner.tick += 1;
        entry.stamp = inner.tick;
        inner.ready.insert(hash, entry);
        while inner.ready.len() > cache.capacity {
            let oldest = inner
                .ready
                .iter()
                .min_by_key(|(_, e)| e.stamp)
                .map(|(k, _)| *k)
                .expect("non-empty over-capacity cache");
            inner.ready.remove(&oldest);
            cache.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Applies a source edit against the resident program `base_key` and
    /// caches the result under the *new* source's key, recompiling
    /// incrementally through the entry's retained [`Workspace`] — only
    /// methods the delta touched are re-lowered/re-verified.
    ///
    /// Returns `None` when `base_key` is not resident (evicted or never
    /// compiled here); the caller should answer like any unknown-program
    /// lookup. The verify flag is inherited from the base entry (it is
    /// part of the program's identity).
    pub fn reload(&self, base_key: &str, new_source: &str) -> Option<ReloadOutcome> {
        let base_hash = base_key
            .strip_prefix("p:")
            .and_then(|h| u64::from_str_radix(h, 16).ok())?;
        let (workspace, verify) = {
            let mut inner = self.inner.lock().expect("cache lock poisoned");
            inner.tick += 1;
            let tick = inner.tick;
            let entry = match inner.ready.get_mut(&base_hash) {
                Some(e) => e,
                None => {
                    self.misses.fetch_add(1, Ordering::Relaxed);
                    return None;
                }
            };
            entry.stamp = tick;
            if entry.source == new_source {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Some(ReloadOutcome::Unchanged {
                    key: base_key.to_owned(),
                });
            }
            (Arc::clone(&entry.workspace), entry.verify)
        };
        // Recompile outside the cache lock; concurrent reloads of the same
        // lineage serialize on the workspace mutex.
        self.misses.fetch_add(1, Ordering::Relaxed);
        let mut ws = workspace.lock().expect("workspace lock poisoned");
        let generation = match ws.update_source(new_source) {
            Err(parse_error) => {
                return Some(ReloadOutcome::Rejected {
                    diagnostics: vec![parse_error.to_string()],
                })
            }
            Ok(g) => g,
        };
        drop(ws);
        let program = generation.program().clone();
        if !program.diagnostics().errors.is_empty() {
            return Some(ReloadOutcome::Rejected {
                diagnostics: program
                    .diagnostics()
                    .errors
                    .iter()
                    .map(|e| e.to_string())
                    .collect(),
            });
        }
        let program = Arc::new(program);
        let new_hash = Self::hash_of(new_source, verify);
        let key = format!("p:{new_hash:016x}");
        let report = generation.report();
        let mut inner = self.inner.lock().expect("cache lock poisoned");
        Self::insert(
            &mut inner,
            self,
            new_hash,
            Entry {
                program: Arc::clone(&program),
                source: new_source.to_owned(),
                verify,
                stamp: 0,
                // The reloaded generation shares the lineage's workspace:
                // a reload against either key continues incrementally from
                // the newest generation.
                workspace,
            },
        );
        Some(ReloadOutcome::Recompiled {
            key,
            program,
            methods: report.recompiled.clone(),
            reverified: report.reverified.clone(),
        })
    }

    /// Looks up a program by its wire key (`query`/`call`/`stream`
    /// frames). Touches the LRU stamp on hit; a miss means the entry was
    /// evicted (or never compiled here) and the client must re-`compile`.
    pub fn lookup(&self, key: &str) -> Option<Arc<Program>> {
        let hash = key
            .strip_prefix("p:")
            .and_then(|h| u64::from_str_radix(h, 16).ok())?;
        let mut inner = self.inner.lock().expect("cache lock poisoned");
        inner.tick += 1;
        let tick = inner.tick;
        match inner.ready.get_mut(&hash) {
            Some(entry) => {
                entry.stamp = tick;
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(Arc::clone(&entry.program))
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Point-in-time counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }

    /// How many programs are resident.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("cache lock poisoned").ready.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl std::fmt::Debug for ProgramCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProgramCache")
            .field("capacity", &self.capacity)
            .field("len", &self.len())
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC_A: &str = "static int one() { return 1; }";
    const SRC_B: &str = "static int two() { return 2; }";
    const SRC_C: &str = "static int three() { return 3; }";

    #[test]
    fn compiles_once_then_hits() {
        let cache = ProgramCache::new(4, Engine::Plan);
        let CacheOutcome::Ready { key, cached, .. } = cache.get_or_compile(SRC_A, false) else {
            panic!("compile failed");
        };
        assert!(!cached);
        let CacheOutcome::Ready {
            key: key2, cached, ..
        } = cache.get_or_compile(SRC_A, false)
        else {
            panic!("compile failed");
        };
        assert!(cached);
        assert_eq!(key, key2);
        assert!(cache.lookup(&key).is_some());
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (2, 1));
        // The verify flag is part of the identity.
        let CacheOutcome::Ready {
            key: kv, cached, ..
        } = cache.get_or_compile(SRC_A, true)
        else {
            panic!("compile failed");
        };
        assert!(!cached);
        assert_ne!(kv, key);
    }

    #[test]
    fn lru_bound_evicts_least_recently_used() {
        let cache = ProgramCache::new(2, Engine::Plan);
        let key_of = |outcome: CacheOutcome| match outcome {
            CacheOutcome::Ready { key, .. } => key,
            CacheOutcome::Failed(e) => panic!("compile failed: {e:?}"),
        };
        let ka = key_of(cache.get_or_compile(SRC_A, false));
        let _kb = key_of(cache.get_or_compile(SRC_B, false));
        // Touch A so B is the LRU victim when C arrives.
        assert!(cache.lookup(&ka).is_some());
        let kb = ProgramCache::key_of(SRC_B, false);
        let _kc = key_of(cache.get_or_compile(SRC_C, false));
        assert_eq!(cache.len(), 2);
        assert!(cache.lookup(&ka).is_some());
        assert!(cache.lookup(&kb).is_none(), "B survived eviction");
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn single_flight_compiles_concurrently_requested_source_once() {
        let cache = Arc::new(ProgramCache::new(4, Engine::Plan));
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let cache = Arc::clone(&cache);
                scope.spawn(move || {
                    let CacheOutcome::Ready { program, .. } = cache.get_or_compile(SRC_A, false)
                    else {
                        panic!("compile failed");
                    };
                    assert!(program.free_method("one").is_ok());
                });
            }
        });
        // All eight callers resolved, but at most one compiled: with
        // single-flight, every concurrent waiter re-checks and hits.
        assert_eq!(cache.stats().misses, 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn reload_unchanged_recompiled_and_rejected() {
        let cache = ProgramCache::new(4, Engine::Plan);
        let CacheOutcome::Ready { key, .. } = cache.get_or_compile(SRC_A, false) else {
            panic!("compile failed");
        };
        // Identical source: nothing runs.
        let Some(ReloadOutcome::Unchanged { key: k }) = cache.reload(&key, SRC_A) else {
            panic!("expected unchanged");
        };
        assert_eq!(k, key);
        // A body edit recompiles exactly the edited method.
        let edited = "static int one() { return 1 + 0; }";
        let Some(ReloadOutcome::Recompiled {
            key: k2,
            program,
            methods,
            ..
        }) = cache.reload(&key, edited)
        else {
            panic!("expected recompiled");
        };
        assert_eq!(k2, ProgramCache::key_of(edited, false));
        assert_ne!(k2, key);
        assert_eq!(methods, vec!["<toplevel>.one"]);
        assert!(program.free_method("one").is_ok());
        // Both generations stay resident and servable.
        assert!(cache.lookup(&key).is_some());
        assert!(cache.lookup(&k2).is_some());
        // A broken edit is rejected; the base entry survives.
        let Some(ReloadOutcome::Rejected { diagnostics }) = cache.reload(&key, "static int ((")
        else {
            panic!("expected rejected");
        };
        assert!(!diagnostics.is_empty());
        assert!(cache.lookup(&key).is_some());
        // An unknown base key is a miss.
        assert!(cache.reload("p:0000000000000000", SRC_B).is_none());
    }

    #[test]
    fn compile_failures_are_reported_not_cached() {
        let cache = ProgramCache::new(4, Engine::Plan);
        let CacheOutcome::Failed(errors) = cache.get_or_compile("static int ((", false) else {
            panic!("expected failure");
        };
        assert!(!errors.is_empty());
        assert!(cache.is_empty());
        assert!(cache
            .lookup(&ProgramCache::key_of("static int ((", false))
            .is_none());
    }
}
