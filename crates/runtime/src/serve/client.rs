//! A small blocking client for the `jmatch-serve` wire protocol.
//!
//! This is the reference client the load generator, the serve example and
//! the integration tests drive the server with: one frame out, one (or,
//! for streams, many) frames back, everything surfaced as raw [`Json`]
//! documents so callers can assert on exact wire shapes. It is
//! deliberately thin — no connection pooling, no hidden state — because
//! its job is to *exercise* the server, not to hide it. The one
//! convenience it does offer is [`RetryPolicy`]: deterministic, jittered
//! exponential backoff over the protocol's *retryable* rejections
//! (`over-capacity`, `quota-exhausted`, `deadline-exceeded`), because
//! every caller that meets backpressure needs exactly that loop.

use super::fault::Xorshift;
use super::json::Json;
use super::proto::{
    error_kind, read_frame, value_to_json, write_frame, FrameError, DEFAULT_MAX_FRAME,
};
use crate::Value;
use std::io;
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// The socket failed.
    Io(io::Error),
    /// The server's framing or JSON was unreadable.
    Frame(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "socket error: {e}"),
            ClientError::Frame(m) => write!(f, "bad frame from server: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        match e {
            FrameError::Truncated(io) => ClientError::Io(io),
            other => ClientError::Frame(other.to_string()),
        }
    }
}

/// Result alias for client operations.
pub type ClientResult<T> = Result<T, ClientError>;

/// An enumeration request, as the client-side mirror of the server's
/// `query` / `stream` frame vocabulary.
#[derive(Debug, Clone)]
pub struct QueryOptions {
    /// Tenant the work is accounted to.
    pub tenant: String,
    /// The program cache key (`compile`'s reply).
    pub program: String,
    /// The method to enumerate.
    pub method: String,
    /// Declaring class for instance methods; `None` = free method.
    pub class: Option<String>,
    /// Known (input) bindings.
    pub known: Vec<(String, Value)>,
    /// Step-ceiling override (only ever lowers the tenant's).
    pub max_steps: Option<u64>,
    /// Depth-ceiling override (only ever lowers the tenant's).
    pub max_depth: Option<usize>,
    /// Wall-clock deadline for the whole request, in milliseconds from
    /// admission; past it the server answers `deadline-exceeded`.
    pub deadline_ms: Option<u64>,
}

impl QueryOptions {
    /// A query of `method` in `program` for the default tenant.
    pub fn new(program: &str, method: &str) -> Self {
        QueryOptions {
            tenant: "default".into(),
            program: program.to_owned(),
            method: method.to_owned(),
            class: None,
            known: Vec::new(),
            max_steps: None,
            max_depth: None,
            deadline_ms: None,
        }
    }

    fn extend_doc(&self, pairs: &mut Vec<(String, Json)>) {
        if let Some(ms) = self.deadline_ms {
            pairs.push(("deadline_ms".into(), Json::Int(ms as i64)));
        }
        pairs.push(("tenant".into(), Json::Str(self.tenant.clone())));
        pairs.push(("program".into(), Json::Str(self.program.clone())));
        pairs.push(("method".into(), Json::Str(self.method.clone())));
        if let Some(class) = &self.class {
            pairs.push(("class".into(), Json::Str(class.clone())));
        }
        if !self.known.is_empty() {
            pairs.push((
                "known".into(),
                Json::Obj(
                    self.known
                        .iter()
                        .map(|(name, v)| (name.clone(), value_to_json(v)))
                        .collect(),
                ),
            ));
        }
        let mut limits = Vec::new();
        if let Some(d) = self.max_depth {
            limits.push(("max_depth".to_owned(), Json::Int(d as i64)));
        }
        if let Some(s) = self.max_steps {
            limits.push(("max_steps".to_owned(), Json::Int(s as i64)));
        }
        if !limits.is_empty() {
            pairs.push(("limits".into(), Json::Obj(limits)));
        }
    }
}

/// Deterministic, jittered exponential backoff over the protocol's
/// retryable rejections.
///
/// The delay for attempt `n` is `min(max_delay_ms, base_delay_ms << n)`
/// scaled by a jitter factor in `[0.5, 1.0)` drawn from a seeded stream
/// (so a test run's retry timing replays exactly), and never below the
/// server's `retry_after_ms` hint when the rejection carries one.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total attempts (the first try counts; `1` = no retries).
    pub max_attempts: u32,
    /// First retry delay, before jitter.
    pub base_delay_ms: u64,
    /// Ceiling on any single delay.
    pub max_delay_ms: u64,
    /// Seed for the jitter stream.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 5,
            base_delay_ms: 10,
            max_delay_ms: 500,
            seed: 0x5EED,
        }
    }
}

impl RetryPolicy {
    /// Whether a reply frame is a *retryable* rejection: the work was
    /// refused or abandoned for a transient reason (`over-capacity`,
    /// `quota-exhausted`, `deadline-exceeded`) and a later identical
    /// request can succeed.
    pub fn is_retryable(frame: &Json) -> bool {
        if frame.get("ok").and_then(Json::as_bool) != Some(false) {
            return false;
        }
        matches!(
            frame
                .get("error")
                .and_then(|e| e.get("kind"))
                .and_then(Json::as_str),
            Some(error_kind::OVER_CAPACITY)
                | Some(error_kind::QUOTA_EXHAUSTED)
                | Some(error_kind::DEADLINE_EXCEEDED)
        )
    }

    /// The delay before retry number `attempt` (0-based), honoring the
    /// rejected frame's `retry_after_ms` hint as a floor.
    fn delay(&self, attempt: u32, frame: &Json, jitter: &mut Xorshift) -> Duration {
        let exp = self
            .base_delay_ms
            .saturating_mul(1u64 << attempt.min(16))
            .min(self.max_delay_ms);
        let jittered = ((exp as f64) * (0.5 + 0.5 * jitter.next_unit())) as u64;
        let hint = frame
            .get("error")
            .and_then(|e| e.get("retry_after_ms"))
            .and_then(Json::as_i64)
            .map_or(0, |ms| ms.max(0) as u64);
        Duration::from_millis(jittered.max(hint))
    }
}

/// One connection to a `jmatch-serve` server.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
    next_id: i64,
    max_frame: usize,
}

impl Client {
    /// Connects to a server.
    ///
    /// # Errors
    ///
    /// Propagates the connect failure.
    pub fn connect(addr: SocketAddr) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client {
            stream,
            next_id: 0,
            max_frame: DEFAULT_MAX_FRAME,
        })
    }

    /// The id the next request will carry.
    pub fn peek_id(&self) -> i64 {
        self.next_id
    }

    fn fresh_id(&mut self) -> i64 {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    /// Sends one raw frame.
    ///
    /// # Errors
    ///
    /// Propagates socket failures.
    pub fn send(&mut self, doc: &Json) -> io::Result<()> {
        write_frame(&mut self.stream, doc)
    }

    /// Receives one raw frame.
    ///
    /// # Errors
    ///
    /// Fails on socket errors or unreadable framing.
    pub fn recv(&mut self) -> ClientResult<Json> {
        Ok(read_frame(&mut self.stream, self.max_frame)?)
    }

    fn request(&mut self, op: &str, extra: Vec<(String, Json)>) -> ClientResult<Json> {
        let id = self.fresh_id();
        let mut pairs = vec![
            ("op".to_owned(), Json::Str(op.to_owned())),
            ("id".to_owned(), Json::Int(id)),
        ];
        pairs.extend(extra);
        self.send(&Json::Obj(pairs))?;
        self.recv()
    }

    /// Liveness probe.
    ///
    /// # Errors
    ///
    /// Fails on socket or framing errors.
    pub fn ping(&mut self) -> ClientResult<Json> {
        self.request("ping", Vec::new())
    }

    /// Compiles (or fetches from the server's cache) a source text.
    /// The reply carries `program` (the cache key) and `cached`.
    ///
    /// # Errors
    ///
    /// Fails on socket or framing errors; compile failures come back as a
    /// well-formed error frame, not an `Err`.
    pub fn compile(&mut self, source: &str, verify: bool) -> ClientResult<Json> {
        self.request(
            "compile",
            vec![
                ("source".to_owned(), Json::Str(source.to_owned())),
                ("verify".to_owned(), Json::Bool(verify)),
            ],
        )
    }

    /// Compiles (or fetches from the server's cache) a source text and
    /// returns its plan-analysis lints. The reply carries `program` (the
    /// cache key, shared with [`Client::compile`]), `cached`, and `lints`.
    ///
    /// # Errors
    ///
    /// Fails on socket or framing errors; compile failures come back as a
    /// well-formed error frame, not an `Err`.
    pub fn lint(&mut self, source: &str, verify: bool) -> ClientResult<Json> {
        self.request(
            "lint",
            vec![
                ("source".to_owned(), Json::Str(source.to_owned())),
                ("verify".to_owned(), Json::Bool(verify)),
            ],
        )
    }

    /// Hot-reloads a resident program: asks the server to incrementally
    /// recompile `program` (a cache key from [`Client::compile`]) against
    /// `new_source`. The reply's `status` is `"unchanged"` or
    /// `"recompiled"` (with `program`, `methods`, `reverified`); an edit
    /// that does not compile comes back as a `reload-rejected` error frame
    /// carrying `errors`, and the previous program stays resident.
    ///
    /// # Errors
    ///
    /// Fails on socket or framing errors; reload rejections come back as a
    /// well-formed error frame, not an `Err`.
    pub fn reload(&mut self, tenant: &str, program: &str, new_source: &str) -> ClientResult<Json> {
        self.request(
            "reload",
            vec![
                ("tenant".to_owned(), Json::Str(tenant.to_owned())),
                ("program".to_owned(), Json::Str(program.to_owned())),
                ("source".to_owned(), Json::Str(new_source.to_owned())),
            ],
        )
    }

    /// Forward-mode call of a free method.
    ///
    /// # Errors
    ///
    /// Fails on socket or framing errors.
    pub fn call(
        &mut self,
        tenant: &str,
        program: &str,
        method: &str,
        args: &[Value],
    ) -> ClientResult<Json> {
        self.request(
            "call",
            vec![
                ("tenant".to_owned(), Json::Str(tenant.to_owned())),
                ("program".to_owned(), Json::Str(program.to_owned())),
                ("method".to_owned(), Json::Str(method.to_owned())),
                (
                    "args".to_owned(),
                    Json::Arr(args.iter().map(value_to_json).collect()),
                ),
            ],
        )
    }

    /// Forward-mode call of a free method with a request deadline.
    ///
    /// # Errors
    ///
    /// Fails on socket or framing errors.
    pub fn call_with_deadline(
        &mut self,
        tenant: &str,
        program: &str,
        method: &str,
        args: &[Value],
        deadline_ms: u64,
    ) -> ClientResult<Json> {
        self.request(
            "call",
            vec![
                ("tenant".to_owned(), Json::Str(tenant.to_owned())),
                ("program".to_owned(), Json::Str(program.to_owned())),
                ("method".to_owned(), Json::Str(method.to_owned())),
                (
                    "args".to_owned(),
                    Json::Arr(args.iter().map(value_to_json).collect()),
                ),
                ("deadline_ms".to_owned(), Json::Int(deadline_ms as i64)),
            ],
        )
    }

    /// Collect-mode enumeration: every solution in one reply frame.
    ///
    /// # Errors
    ///
    /// Fails on socket or framing errors.
    pub fn query(&mut self, options: &QueryOptions) -> ClientResult<Json> {
        let mut extra = Vec::new();
        options.extend_doc(&mut extra);
        self.request("query", extra)
    }

    /// [`Client::query`] under a [`RetryPolicy`]: retryable rejections
    /// (`over-capacity`, `quota-exhausted`, `deadline-exceeded`) back off
    /// with deterministic jitter and try again, up to the policy's attempt
    /// budget. The last reply — success, non-retryable error, or the
    /// final still-rejected frame — is returned either way.
    ///
    /// # Errors
    ///
    /// Fails on socket or framing errors.
    pub fn query_with_retry(
        &mut self,
        options: &QueryOptions,
        policy: &RetryPolicy,
    ) -> ClientResult<Json> {
        let mut jitter = Xorshift::new(policy.seed);
        let mut attempt = 0;
        loop {
            let frame = self.query(options)?;
            attempt += 1;
            if attempt >= policy.max_attempts.max(1) || !RetryPolicy::is_retryable(&frame) {
                return Ok(frame);
            }
            std::thread::sleep(policy.delay(attempt - 1, &frame, &mut jitter));
        }
    }

    /// [`Client::call`] under a [`RetryPolicy`]; see
    /// [`Client::query_with_retry`] for the loop's semantics.
    ///
    /// # Errors
    ///
    /// Fails on socket or framing errors.
    pub fn call_with_retry(
        &mut self,
        tenant: &str,
        program: &str,
        method: &str,
        args: &[Value],
        policy: &RetryPolicy,
    ) -> ClientResult<Json> {
        let mut jitter = Xorshift::new(policy.seed);
        let mut attempt = 0;
        loop {
            let frame = self.call(tenant, program, method, args)?;
            attempt += 1;
            if attempt >= policy.max_attempts.max(1) || !RetryPolicy::is_retryable(&frame) {
                return Ok(frame);
            }
            std::thread::sleep(policy.delay(attempt - 1, &frame, &mut jitter));
        }
    }

    /// Streamed enumeration: sends one `stream` frame and collects every
    /// reply frame (batches plus the terminal frame) for this request id,
    /// in order.
    ///
    /// # Errors
    ///
    /// Fails on socket or framing errors.
    pub fn stream(&mut self, options: &QueryOptions, batch: usize) -> ClientResult<Vec<Json>> {
        let mut extra = vec![("batch".to_owned(), Json::Int(batch as i64))];
        options.extend_doc(&mut extra);
        let first = self.request("stream", extra)?;
        let mut frames = vec![first];
        while !is_terminal(frames.last().expect("non-empty")) {
            frames.push(self.recv()?);
        }
        Ok(frames)
    }

    /// Starts a stream without reading any reply frames (for cancel /
    /// disconnect tests). Returns the request id.
    ///
    /// # Errors
    ///
    /// Propagates socket failures.
    pub fn start_stream(&mut self, options: &QueryOptions, batch: usize) -> io::Result<i64> {
        let id = self.fresh_id();
        let mut pairs = vec![
            ("op".to_owned(), Json::Str("stream".to_owned())),
            ("id".to_owned(), Json::Int(id)),
            ("batch".to_owned(), Json::Int(batch as i64)),
        ];
        options.extend_doc(&mut pairs);
        self.send(&Json::Obj(pairs))?;
        Ok(id)
    }

    /// Cancels an in-flight stream on this connection.
    ///
    /// # Errors
    ///
    /// Propagates socket failures (no reply is read here — the ack
    /// interleaves with stream frames; use [`Client::recv`]).
    pub fn cancel(&mut self, target: i64) -> io::Result<i64> {
        let id = self.fresh_id();
        self.send(&Json::Obj(vec![
            ("op".to_owned(), Json::Str("cancel".to_owned())),
            ("id".to_owned(), Json::Int(id)),
            ("target".to_owned(), Json::Int(target)),
        ]))?;
        Ok(id)
    }

    /// Asks the server to shut down (honored only when the server enables
    /// remote shutdown).
    ///
    /// # Errors
    ///
    /// Fails on socket or framing errors.
    pub fn shutdown_server(&mut self) -> ClientResult<Json> {
        self.request("shutdown", Vec::new())
    }
}

/// Whether a reply frame ends its request (an error frame or `done:true`).
pub fn is_terminal(frame: &Json) -> bool {
    frame.get("ok").and_then(Json::as_bool) == Some(false)
        || frame.get("done").and_then(Json::as_bool) == Some(true)
}

/// Polls `addr` with ping until the server answers (CI boot handshake).
///
/// # Errors
///
/// Returns the last failure when `timeout` elapses without a pong.
pub fn wait_ready(addr: SocketAddr, timeout: Duration) -> ClientResult<()> {
    let deadline = Instant::now() + timeout;
    loop {
        let last = match Client::connect(addr) {
            Ok(mut client) => match client.ping() {
                Ok(frame) if frame.get("pong").and_then(Json::as_bool) == Some(true) => {
                    return Ok(());
                }
                Ok(frame) => ClientError::Frame(format!("unexpected pong reply: {frame}")),
                Err(e) => e,
            },
            Err(e) => ClientError::Io(e),
        };
        if Instant::now() >= deadline {
            return Err(last);
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rejection(kind: &str, retry_after_ms: Option<i64>) -> Json {
        let mut err = vec![("kind".to_owned(), Json::Str(kind.to_owned()))];
        if let Some(ms) = retry_after_ms {
            err.push(("retry_after_ms".to_owned(), Json::Int(ms)));
        }
        Json::Obj(vec![
            ("ok".to_owned(), Json::Bool(false)),
            ("id".to_owned(), Json::Int(1)),
            ("error".to_owned(), Json::Obj(err)),
        ])
    }

    #[test]
    fn retryable_kinds_are_exactly_the_transient_ones() {
        for kind in ["over-capacity", "quota-exhausted", "deadline-exceeded"] {
            assert!(
                RetryPolicy::is_retryable(&rejection(kind, Some(25))),
                "{kind}"
            );
        }
        for kind in ["protocol", "internal-error", "cancelled", "unknown-program"] {
            assert!(!RetryPolicy::is_retryable(&rejection(kind, None)), "{kind}");
        }
        // A success frame is never retryable.
        assert!(!RetryPolicy::is_retryable(&Json::Obj(vec![(
            "ok".to_owned(),
            Json::Bool(true)
        )])));
    }

    #[test]
    fn backoff_is_deterministic_jittered_and_bounded() {
        let policy = RetryPolicy {
            max_attempts: 8,
            base_delay_ms: 10,
            max_delay_ms: 100,
            seed: 42,
        };
        let frame = rejection("over-capacity", None);
        let delays = |policy: &RetryPolicy| -> Vec<Duration> {
            let mut jitter = Xorshift::new(policy.seed);
            (0..8)
                .map(|a| policy.delay(a, &frame, &mut jitter))
                .collect()
        };
        let a = delays(&policy);
        let b = delays(&policy);
        assert_eq!(a, b, "same seed, same schedule");
        for (attempt, d) in a.iter().enumerate() {
            let exp = (10u64 << attempt).min(100);
            assert!(*d >= Duration::from_millis(exp / 2), "attempt {attempt}");
            assert!(*d <= Duration::from_millis(exp), "attempt {attempt}");
        }
        // The server's hint is a floor under the jittered delay.
        let hinted = rejection("over-capacity", Some(400));
        let mut jitter = Xorshift::new(42);
        assert!(policy.delay(0, &hinted, &mut jitter) >= Duration::from_millis(400));
    }
}
