//! A small blocking client for the `jmatch-serve` wire protocol.
//!
//! This is the reference client the load generator, the serve example and
//! the integration tests drive the server with: one frame out, one (or,
//! for streams, many) frames back, everything surfaced as raw [`Json`]
//! documents so callers can assert on exact wire shapes. It is
//! deliberately thin — no connection pooling, no retries beyond
//! [`wait_ready`] — because its job is to *exercise* the server, not to
//! hide it.

use super::json::Json;
use super::proto::{read_frame, value_to_json, write_frame, FrameError, DEFAULT_MAX_FRAME};
use crate::Value;
use std::io;
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// The socket failed.
    Io(io::Error),
    /// The server's framing or JSON was unreadable.
    Frame(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "socket error: {e}"),
            ClientError::Frame(m) => write!(f, "bad frame from server: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        match e {
            FrameError::Truncated(io) => ClientError::Io(io),
            other => ClientError::Frame(other.to_string()),
        }
    }
}

/// Result alias for client operations.
pub type ClientResult<T> = Result<T, ClientError>;

/// An enumeration request, as the client-side mirror of the server's
/// `query` / `stream` frame vocabulary.
#[derive(Debug, Clone)]
pub struct QueryOptions {
    /// Tenant the work is accounted to.
    pub tenant: String,
    /// The program cache key (`compile`'s reply).
    pub program: String,
    /// The method to enumerate.
    pub method: String,
    /// Declaring class for instance methods; `None` = free method.
    pub class: Option<String>,
    /// Known (input) bindings.
    pub known: Vec<(String, Value)>,
    /// Step-ceiling override (only ever lowers the tenant's).
    pub max_steps: Option<u64>,
    /// Depth-ceiling override (only ever lowers the tenant's).
    pub max_depth: Option<usize>,
}

impl QueryOptions {
    /// A query of `method` in `program` for the default tenant.
    pub fn new(program: &str, method: &str) -> Self {
        QueryOptions {
            tenant: "default".into(),
            program: program.to_owned(),
            method: method.to_owned(),
            class: None,
            known: Vec::new(),
            max_steps: None,
            max_depth: None,
        }
    }

    fn extend_doc(&self, pairs: &mut Vec<(String, Json)>) {
        pairs.push(("tenant".into(), Json::Str(self.tenant.clone())));
        pairs.push(("program".into(), Json::Str(self.program.clone())));
        pairs.push(("method".into(), Json::Str(self.method.clone())));
        if let Some(class) = &self.class {
            pairs.push(("class".into(), Json::Str(class.clone())));
        }
        if !self.known.is_empty() {
            pairs.push((
                "known".into(),
                Json::Obj(
                    self.known
                        .iter()
                        .map(|(name, v)| (name.clone(), value_to_json(v)))
                        .collect(),
                ),
            ));
        }
        let mut limits = Vec::new();
        if let Some(d) = self.max_depth {
            limits.push(("max_depth".to_owned(), Json::Int(d as i64)));
        }
        if let Some(s) = self.max_steps {
            limits.push(("max_steps".to_owned(), Json::Int(s as i64)));
        }
        if !limits.is_empty() {
            pairs.push(("limits".into(), Json::Obj(limits)));
        }
    }
}

/// One connection to a `jmatch-serve` server.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
    next_id: i64,
    max_frame: usize,
}

impl Client {
    /// Connects to a server.
    ///
    /// # Errors
    ///
    /// Propagates the connect failure.
    pub fn connect(addr: SocketAddr) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client {
            stream,
            next_id: 0,
            max_frame: DEFAULT_MAX_FRAME,
        })
    }

    /// The id the next request will carry.
    pub fn peek_id(&self) -> i64 {
        self.next_id
    }

    fn fresh_id(&mut self) -> i64 {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    /// Sends one raw frame.
    ///
    /// # Errors
    ///
    /// Propagates socket failures.
    pub fn send(&mut self, doc: &Json) -> io::Result<()> {
        write_frame(&mut self.stream, doc)
    }

    /// Receives one raw frame.
    ///
    /// # Errors
    ///
    /// Fails on socket errors or unreadable framing.
    pub fn recv(&mut self) -> ClientResult<Json> {
        Ok(read_frame(&mut self.stream, self.max_frame)?)
    }

    fn request(&mut self, op: &str, extra: Vec<(String, Json)>) -> ClientResult<Json> {
        let id = self.fresh_id();
        let mut pairs = vec![
            ("op".to_owned(), Json::Str(op.to_owned())),
            ("id".to_owned(), Json::Int(id)),
        ];
        pairs.extend(extra);
        self.send(&Json::Obj(pairs))?;
        self.recv()
    }

    /// Liveness probe.
    ///
    /// # Errors
    ///
    /// Fails on socket or framing errors.
    pub fn ping(&mut self) -> ClientResult<Json> {
        self.request("ping", Vec::new())
    }

    /// Compiles (or fetches from the server's cache) a source text.
    /// The reply carries `program` (the cache key) and `cached`.
    ///
    /// # Errors
    ///
    /// Fails on socket or framing errors; compile failures come back as a
    /// well-formed error frame, not an `Err`.
    pub fn compile(&mut self, source: &str, verify: bool) -> ClientResult<Json> {
        self.request(
            "compile",
            vec![
                ("source".to_owned(), Json::Str(source.to_owned())),
                ("verify".to_owned(), Json::Bool(verify)),
            ],
        )
    }

    /// Compiles (or fetches from the server's cache) a source text and
    /// returns its plan-analysis lints. The reply carries `program` (the
    /// cache key, shared with [`Client::compile`]), `cached`, and `lints`.
    ///
    /// # Errors
    ///
    /// Fails on socket or framing errors; compile failures come back as a
    /// well-formed error frame, not an `Err`.
    pub fn lint(&mut self, source: &str, verify: bool) -> ClientResult<Json> {
        self.request(
            "lint",
            vec![
                ("source".to_owned(), Json::Str(source.to_owned())),
                ("verify".to_owned(), Json::Bool(verify)),
            ],
        )
    }

    /// Forward-mode call of a free method.
    ///
    /// # Errors
    ///
    /// Fails on socket or framing errors.
    pub fn call(
        &mut self,
        tenant: &str,
        program: &str,
        method: &str,
        args: &[Value],
    ) -> ClientResult<Json> {
        self.request(
            "call",
            vec![
                ("tenant".to_owned(), Json::Str(tenant.to_owned())),
                ("program".to_owned(), Json::Str(program.to_owned())),
                ("method".to_owned(), Json::Str(method.to_owned())),
                (
                    "args".to_owned(),
                    Json::Arr(args.iter().map(value_to_json).collect()),
                ),
            ],
        )
    }

    /// Collect-mode enumeration: every solution in one reply frame.
    ///
    /// # Errors
    ///
    /// Fails on socket or framing errors.
    pub fn query(&mut self, options: &QueryOptions) -> ClientResult<Json> {
        let mut extra = Vec::new();
        options.extend_doc(&mut extra);
        self.request("query", extra)
    }

    /// Streamed enumeration: sends one `stream` frame and collects every
    /// reply frame (batches plus the terminal frame) for this request id,
    /// in order.
    ///
    /// # Errors
    ///
    /// Fails on socket or framing errors.
    pub fn stream(&mut self, options: &QueryOptions, batch: usize) -> ClientResult<Vec<Json>> {
        let mut extra = vec![("batch".to_owned(), Json::Int(batch as i64))];
        options.extend_doc(&mut extra);
        let first = self.request("stream", extra)?;
        let mut frames = vec![first];
        while !is_terminal(frames.last().expect("non-empty")) {
            frames.push(self.recv()?);
        }
        Ok(frames)
    }

    /// Starts a stream without reading any reply frames (for cancel /
    /// disconnect tests). Returns the request id.
    ///
    /// # Errors
    ///
    /// Propagates socket failures.
    pub fn start_stream(&mut self, options: &QueryOptions, batch: usize) -> io::Result<i64> {
        let id = self.fresh_id();
        let mut pairs = vec![
            ("op".to_owned(), Json::Str("stream".to_owned())),
            ("id".to_owned(), Json::Int(id)),
            ("batch".to_owned(), Json::Int(batch as i64)),
        ];
        options.extend_doc(&mut pairs);
        self.send(&Json::Obj(pairs))?;
        Ok(id)
    }

    /// Cancels an in-flight stream on this connection.
    ///
    /// # Errors
    ///
    /// Propagates socket failures (no reply is read here — the ack
    /// interleaves with stream frames; use [`Client::recv`]).
    pub fn cancel(&mut self, target: i64) -> io::Result<i64> {
        let id = self.fresh_id();
        self.send(&Json::Obj(vec![
            ("op".to_owned(), Json::Str("cancel".to_owned())),
            ("id".to_owned(), Json::Int(id)),
            ("target".to_owned(), Json::Int(target)),
        ]))?;
        Ok(id)
    }

    /// Asks the server to shut down (honored only when the server enables
    /// remote shutdown).
    ///
    /// # Errors
    ///
    /// Fails on socket or framing errors.
    pub fn shutdown_server(&mut self) -> ClientResult<Json> {
        self.request("shutdown", Vec::new())
    }
}

/// Whether a reply frame ends its request (an error frame or `done:true`).
pub fn is_terminal(frame: &Json) -> bool {
    frame.get("ok").and_then(Json::as_bool) == Some(false)
        || frame.get("done").and_then(Json::as_bool) == Some(true)
}

/// Polls `addr` with ping until the server answers (CI boot handshake).
///
/// # Errors
///
/// Returns the last failure when `timeout` elapses without a pong.
pub fn wait_ready(addr: SocketAddr, timeout: Duration) -> ClientResult<()> {
    let deadline = Instant::now() + timeout;
    loop {
        let last = match Client::connect(addr) {
            Ok(mut client) => match client.ping() {
                Ok(frame) if frame.get("pong").and_then(Json::as_bool) == Some(true) => {
                    return Ok(());
                }
                Ok(frame) => ClientError::Frame(format!("unexpected pong reply: {frame}")),
                Err(e) => e,
            },
            Err(e) => ClientError::Io(e),
        };
        if Instant::now() >= deadline {
            return Err(last);
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}
