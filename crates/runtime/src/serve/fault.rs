//! Deterministic fault injection for the serve layer.
//!
//! Chaos testing only works when it can be replayed: every injection site
//! draws from its own seeded xorshift stream, so a given
//! `(seed, rates)` configuration produces the *same* fault schedule on
//! every run — a failing chaos test is reproducible with its seed, and CI
//! can assert exact properties (the server survived, every grant settled)
//! under a known storm.
//!
//! Faults are configured by a compact spec string — from the
//! `jmatch-serve --faults` flag or the `JMATCH_FAULTS` environment
//! variable — e.g.:
//!
//! ```text
//! seed=42,panic_request=0.05,panic_worker=0.01,slow_write=0.1:20,truncate=0.02,stall=0.05:50
//! ```
//!
//! The sites:
//!
//! * `panic_request` — panic inside request execution (caught by the
//!   worker's `catch_unwind`; the client sees `internal-error`).
//! * `panic_worker` — panic a worker *between* jobs (uncaught: the thread
//!   dies and the supervisor must respawn it; no request is lost because
//!   the job queue is untouched).
//! * `slow_write` — sleep `ms` in the connection writer thread before a
//!   frame goes out (exercises the bounded send queue / slow-consumer
//!   detection).
//! * `truncate` — write only the frame's length prefix, then hard-close
//!   the connection (the client sees a truncated frame).
//! * `stall` — sleep `ms` in the worker before running a request
//!   (simulates a stuck solver; exercises the deadline watchdog).

use std::sync::Mutex;

/// Fault-injection configuration: a seed plus per-site probabilities
/// (`0.0` = never, `1.0` = always) and durations.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultConfig {
    /// Base seed; every site derives its own deterministic stream from it.
    pub seed: u64,
    /// Probability a request execution panics mid-run.
    pub panic_request: f64,
    /// Probability a worker panics between jobs.
    pub panic_worker: f64,
    /// Probability a frame write is delayed by [`FaultConfig::slow_write_ms`].
    pub slow_write: f64,
    /// Delay per injected slow write, in milliseconds.
    pub slow_write_ms: u64,
    /// Probability a frame is truncated after its length prefix (the
    /// connection is then closed).
    pub truncate: f64,
    /// Probability a request stalls for [`FaultConfig::stall_ms`] before
    /// running.
    pub stall: f64,
    /// Stall duration, in milliseconds.
    pub stall_ms: u64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            seed: 0,
            panic_request: 0.0,
            panic_worker: 0.0,
            slow_write: 0.0,
            slow_write_ms: 10,
            truncate: 0.0,
            stall: 0.0,
            stall_ms: 20,
        }
    }
}

impl FaultConfig {
    /// Parses a `key=value,…` spec string (see the module docs). Rate
    /// entries accept an optional `:ms` suffix where a duration applies.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for unknown keys or unparseable
    /// numbers.
    pub fn parse(spec: &str) -> Result<FaultConfig, String> {
        let mut config = FaultConfig::default();
        for entry in spec.split(',').filter(|e| !e.trim().is_empty()) {
            let (key, value) = entry
                .split_once('=')
                .ok_or_else(|| format!("fault entry `{entry}` is not key=value"))?;
            let (rate_str, ms_str) = match value.split_once(':') {
                Some((r, m)) => (r, Some(m)),
                None => (value, None),
            };
            let rate = |s: &str| -> Result<f64, String> {
                let r: f64 = s
                    .parse()
                    .map_err(|_| format!("fault rate `{s}` is not a number"))?;
                if !(0.0..=1.0).contains(&r) {
                    return Err(format!("fault rate `{s}` is not in 0..=1"));
                }
                Ok(r)
            };
            let ms = |s: Option<&str>| -> Result<Option<u64>, String> {
                s.map(|m| {
                    m.parse()
                        .map_err(|_| format!("fault duration `{m}` is not a number"))
                })
                .transpose()
            };
            match key.trim() {
                "seed" => {
                    config.seed = rate_str
                        .parse()
                        .map_err(|_| format!("seed `{rate_str}` is not a number"))?;
                }
                "panic_request" => config.panic_request = rate(rate_str)?,
                "panic_worker" => config.panic_worker = rate(rate_str)?,
                "slow_write" => {
                    config.slow_write = rate(rate_str)?;
                    if let Some(m) = ms(ms_str)? {
                        config.slow_write_ms = m;
                    }
                }
                "truncate" => config.truncate = rate(rate_str)?,
                "stall" => {
                    config.stall = rate(rate_str)?;
                    if let Some(m) = ms(ms_str)? {
                        config.stall_ms = m;
                    }
                }
                other => return Err(format!("unknown fault key `{other}`")),
            }
        }
        Ok(config)
    }

    /// The configuration from the `JMATCH_FAULTS` environment variable,
    /// when set and parseable (a malformed spec is reported and ignored —
    /// fault injection must never take a production server down by
    /// itself).
    pub fn from_env() -> Option<FaultConfig> {
        let spec = std::env::var("JMATCH_FAULTS").ok()?;
        match FaultConfig::parse(&spec) {
            Ok(config) => Some(config),
            Err(m) => {
                eprintln!("jmatch-serve: ignoring JMATCH_FAULTS: {m}");
                None
            }
        }
    }

    /// Whether any site has a non-zero rate.
    pub fn is_active(&self) -> bool {
        self.panic_request > 0.0
            || self.panic_worker > 0.0
            || self.slow_write > 0.0
            || self.truncate > 0.0
            || self.stall > 0.0
    }
}

/// An injection site; each draws from its own deterministic stream so
/// adding traffic to one site never perturbs another's schedule.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Site {
    PanicRequest,
    PanicWorker,
    SlowWrite,
    Truncate,
    Stall,
}

/// The runtime half: seeded per-site xorshift streams behind mutexes
/// (contention is irrelevant — every draw is a fault-injection decision,
/// not a hot path).
#[derive(Debug)]
pub(crate) struct FaultInjector {
    config: FaultConfig,
    streams: [Mutex<Xorshift>; 5],
}

impl FaultInjector {
    pub(crate) fn new(config: FaultConfig) -> Self {
        let stream = |salt: u64| Mutex::new(Xorshift::new(config.seed ^ salt));
        FaultInjector {
            streams: [
                stream(0x9E37_79B9_7F4A_7C15),
                stream(0xBF58_476D_1CE4_E5B9),
                stream(0x94D0_49BB_1331_11EB),
                stream(0xD6E8_FEB8_6659_FD93),
                stream(0xA5A3_564E_4690_39BB),
            ],
            config,
        }
    }

    fn rate_of(&self, site: Site) -> f64 {
        match site {
            Site::PanicRequest => self.config.panic_request,
            Site::PanicWorker => self.config.panic_worker,
            Site::SlowWrite => self.config.slow_write,
            Site::Truncate => self.config.truncate,
            Site::Stall => self.config.stall,
        }
    }

    /// Draws the site's next decision: `true` = inject the fault here.
    pub(crate) fn fire(&self, site: Site) -> bool {
        let rate = self.rate_of(site);
        if rate <= 0.0 {
            return false;
        }
        let mut stream = self.streams[site as usize]
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        stream.next_unit() < rate
    }

    /// The configured slow-write delay.
    pub(crate) fn slow_write_ms(&self) -> u64 {
        self.config.slow_write_ms
    }

    /// The configured stall duration.
    pub(crate) fn stall_ms(&self) -> u64 {
        self.config.stall_ms
    }
}

/// xorshift64* — tiny, seedable, and good enough for fault scheduling
/// (this repo takes no external dependencies, so no `rand`).
#[derive(Debug)]
pub(crate) struct Xorshift {
    state: u64,
}

impl Xorshift {
    pub(crate) fn new(seed: u64) -> Self {
        // A zero state would be a fixed point; displace it determinately.
        Xorshift {
            state: seed | 0x0DDB_1A5E_5BAD_5EED,
        }
    }

    pub(crate) fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// A uniform draw in `[0, 1)`.
    pub(crate) fn next_unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_parse_round_trip() {
        let config = FaultConfig::parse(
            "seed=42,panic_request=0.05,panic_worker=0.01,slow_write=0.1:20,truncate=0.02,stall=0.5:50",
        )
        .expect("spec parses");
        assert_eq!(config.seed, 42);
        assert_eq!(config.panic_request, 0.05);
        assert_eq!(config.panic_worker, 0.01);
        assert_eq!(config.slow_write, 0.1);
        assert_eq!(config.slow_write_ms, 20);
        assert_eq!(config.truncate, 0.02);
        assert_eq!(config.stall, 0.5);
        assert_eq!(config.stall_ms, 50);
        assert!(config.is_active());
        assert!(!FaultConfig::default().is_active());
    }

    #[test]
    fn bad_specs_are_rejected() {
        assert!(FaultConfig::parse("panic_request").is_err());
        assert!(FaultConfig::parse("panic_request=2.0").is_err());
        assert!(FaultConfig::parse("panic_request=-0.5").is_err());
        assert!(FaultConfig::parse("warp_core_breach=0.5").is_err());
        assert!(FaultConfig::parse("stall=0.5:abc").is_err());
        assert!(FaultConfig::parse("").is_ok());
    }

    #[test]
    fn schedules_are_deterministic_per_seed() {
        let config = FaultConfig {
            seed: 7,
            panic_request: 0.3,
            stall: 0.3,
            ..FaultConfig::default()
        };
        let draw = |inj: &FaultInjector, site: Site| -> Vec<bool> {
            (0..64).map(|_| inj.fire(site)).collect()
        };
        let a = FaultInjector::new(config.clone());
        let b = FaultInjector::new(config.clone());
        assert_eq!(draw(&a, Site::PanicRequest), draw(&b, Site::PanicRequest));
        assert_eq!(draw(&a, Site::Stall), draw(&b, Site::Stall));
        // Distinct sites see distinct streams (same rate, different salt).
        let c = FaultInjector::new(config.clone());
        let d = FaultInjector::new(config);
        assert_ne!(draw(&c, Site::PanicRequest), draw(&d, Site::Stall));
        // A different seed reschedules.
        let e = FaultInjector::new(FaultConfig {
            seed: 8,
            panic_request: 0.3,
            ..FaultConfig::default()
        });
        assert_ne!(draw(&a, Site::PanicRequest), draw(&e, Site::PanicRequest));
    }

    #[test]
    fn zero_rate_sites_never_fire() {
        let inj = FaultInjector::new(FaultConfig {
            seed: 1,
            panic_request: 1.0,
            ..FaultConfig::default()
        });
        assert!((0..64).all(|_| !inj.fire(Site::Truncate)));
        assert!((0..64).all(|_| inj.fire(Site::PanicRequest)));
    }
}
