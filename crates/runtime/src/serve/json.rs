//! A minimal, dependency-free JSON value, parser and printer.
//!
//! The serve wire protocol ([`crate::serve::proto`]) is JSON over
//! length-prefixed frames, and the offline-deps constraint rules out
//! `serde`; this module is the whole JSON story: a [`Json`] tree, a
//! recursive-descent parser with a nesting cap, and a compact printer.
//!
//! Integers and floats are kept apart (`Int(i64)` / `Float(f64)`) so
//! [`crate::Value::Int`] round-trips without precision loss.

use std::fmt;

/// Maximum nesting depth the parser accepts — a hostile frame of
/// `[[[[…` must not overflow the connection thread's stack.
const MAX_DEPTH: usize = 128;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number without fraction or exponent, within `i64` range.
    Int(i64),
    /// Any other number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved (no hashing, stable output).
    Obj(Vec<(String, Json)>),
}

/// Where and why parsing failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Parses one JSON document; trailing non-whitespace is an error.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.error("trailing characters after the document"));
        }
        Ok(v)
    }

    /// Builds an object from key/value pairs — the protocol's frame shape.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
    }

    /// Member `key` of an object, if present.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer payload, if this is an integral number.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The members, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Int(n) => write!(f, "{n}"),
            Json::Float(x) => {
                if x.is_finite() {
                    write!(f, "{x}")
                } else {
                    // JSON has no NaN/Infinity; degrade to null like
                    // browsers' JSON.stringify.
                    f.write_str("null")
                }
            }
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Json::Obj(pairs) => {
                f.write_str("{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    write!(f, ":{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => f.write_fmt(format_args!("{c}"))?,
        }
    }
    f.write_str("\"")
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            at: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format!("expected `{}`", b as char)))
        }
    }

    fn eat_lit(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.error("nesting too deep"));
        }
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_lit("null") => Ok(Json::Null),
            Some(b't') if self.eat_lit("true") => Ok(Json::Bool(true)),
            Some(b'f') if self.eat_lit("false") => Ok(Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                loop {
                    items.push(self.value(depth + 1)?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Json::Arr(items));
                        }
                        _ => return Err(self.error("expected `,` or `]` in array")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut pairs = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let v = self.value(depth + 1)?;
                    pairs.push((key, v));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Json::Obj(pairs));
                        }
                        _ => return Err(self.error("expected `,` or `}` in object")),
                    }
                }
            }
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.error("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.error("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let first = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&first) {
                                // High surrogate: a low surrogate must follow.
                                if !(self.eat_lit("\\u")) {
                                    return Err(self.error("unpaired surrogate"));
                                }
                                let low = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(self.error("invalid low surrogate"));
                                }
                                0x10000 + ((first - 0xD800) << 10) + (low - 0xDC00)
                            } else {
                                first
                            };
                            match char::from_u32(code) {
                                Some(c) => out.push(c),
                                None => return Err(self.error("invalid \\u escape")),
                            }
                        }
                        _ => return Err(self.error("unknown escape")),
                    }
                }
                // The input is a &str, so multi-byte UTF-8 sequences are
                // valid; copy the raw bytes of this code point through.
                b if b < 0x20 => return Err(self.error("control character in string")),
                b if b < 0x80 => out.push(b as char),
                b => {
                    let len = match b {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    let start = self.pos - 1;
                    let end = start + len;
                    let chunk = self
                        .bytes
                        .get(start..end)
                        .and_then(|c| std::str::from_utf8(c).ok())
                        .ok_or_else(|| self.error("invalid UTF-8 in string"))?;
                    out.push_str(chunk);
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let chunk = self
            .bytes
            .get(self.pos..self.pos + 4)
            .and_then(|c| std::str::from_utf8(c).ok())
            .ok_or_else(|| self.error("truncated \\u escape"))?;
        let code = u32::from_str_radix(chunk, 16).map_err(|_| self.error("non-hex \\u escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut integral = true;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    integral = false;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        if integral {
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Json::Int(n));
            }
        }
        text.parse::<f64>()
            .map(Json::Float)
            .map_err(|_| self.error("malformed number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for text in ["null", "true", "false", "0", "-7", "9223372036854775807"] {
            let v = Json::parse(text).unwrap();
            assert_eq!(v.to_string(), text);
        }
        assert_eq!(Json::parse("1.5").unwrap(), Json::Float(1.5));
    }

    #[test]
    fn structures_round_trip() {
        let text = r#"{"op":"query","id":3,"known":{"n":4},"args":[1,"two",null,true]}"#;
        let v = Json::parse(text).unwrap();
        assert_eq!(v.to_string(), text);
        assert_eq!(v.get("op").and_then(Json::as_str), Some("query"));
        assert_eq!(v.get("id").and_then(Json::as_i64), Some(3));
        assert_eq!(
            v.get("known")
                .and_then(|k| k.get("n"))
                .and_then(Json::as_i64),
            Some(4)
        );
    }

    #[test]
    fn strings_escape_and_unescape() {
        let v = Json::Str("a\"b\\c\nd\u{1}é✓".into());
        let text = v.to_string();
        assert_eq!(Json::parse(&text).unwrap(), v);
        assert_eq!(
            Json::parse(r#""\u00e9\u2713 \ud83d\ude00""#).unwrap(),
            Json::Str("é✓ 😀".into())
        );
    }

    #[test]
    fn malformed_documents_are_errors() {
        for text in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "tru",
            "\"unterminated",
            "1 2",
            "{'a':1}",
            "nan",
            "\"\\u12\"",
            "\"\\ud800\"",
        ] {
            assert!(Json::parse(text).is_err(), "accepted {text:?}");
        }
    }

    #[test]
    fn nesting_is_capped() {
        let deep = "[".repeat(500) + &"]".repeat(500);
        assert!(Json::parse(&deep).is_err());
    }
}
