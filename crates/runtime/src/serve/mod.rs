//! Multi-tenant query serving over TCP — the `jmatch-serve` subsystem.
//!
//! The embedding API ([`crate::Workspace`] → [`crate::Program`] →
//! [`crate::Query`]) already separates the expensive one-time work
//! (parse + resolve + verify + lower) from cheap enumeration; this module
//! turns that separation into a service:
//!
//! * [`cache`] — a bounded, single-flight LRU [`cache::ProgramCache`]:
//!   compile once per distinct source, serve the shared
//!   `Arc<Program>` forever;
//! * [`quota`] — per-tenant [`quota::TenantQuotas`] over windowed step
//!   pools, with a reserve → run → settle grant lifecycle that refunds
//!   unused (or abandoned) work;
//! * [`server`] — the [`server::Server`]: bounded admission queues drained
//!   round-robin across tenants, workers that coalesce concurrent collect
//!   queries into one [`crate::Program::query_many`] batch, and streamed
//!   solution batches with cancellation;
//! * [`proto`] — the length-prefixed JSON wire protocol (see the
//!   repository's `PROTOCOL.md` for the normative spec);
//! * [`json`] — the std-only JSON document type the protocol rides on;
//! * [`client`] — a thin blocking client for tests, examples and the
//!   `jmatch-loadgen` bench driver, with jittered-backoff retries for
//!   retryable rejections;
//! * [`fault`] — deterministic, seeded fault injection (worker panics,
//!   slow writes, frame truncation, solver stalls) for the chaos suite
//!   and the `chaos-smoke` CI job.
//!
//! ```no_run
//! use jmatch_runtime::serve::{Client, QueryOptions, ServeConfig, Server};
//! use jmatch_runtime::serve::json::Json;
//!
//! let server = Server::start(ServeConfig::default())?;
//! let mut client = Client::connect(server.local_addr())?;
//! let reply = client.compile(
//!     "static boolean below(int n, int x) iterates(x) ( x = 0 || x = 1 )",
//!     false,
//! )?;
//! let key = reply.get("program").and_then(Json::as_str).unwrap().to_owned();
//! let frame = client.query(&QueryOptions::new(&key, "below"))?;
//! assert_eq!(frame.get("ok"), Some(&Json::Bool(true)));
//! server.shutdown();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod cache;
pub mod client;
pub mod fault;
pub mod json;
pub mod proto;
pub mod quota;
pub mod server;

pub use cache::{CacheOutcome, CacheStats, ProgramCache};
pub use client::{wait_ready, Client, ClientError, ClientResult, QueryOptions, RetryPolicy};
pub use fault::FaultConfig;
pub use quota::{Grant, QuotaConfig, QuotaDenied, TenantQuotas, TenantSnapshot};
pub use server::{Metrics, ServeConfig, Server};
