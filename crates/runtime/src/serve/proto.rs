//! The `jmatch-serve` wire protocol: length-prefixed JSON frames.
//!
//! Every frame is a 4-byte **big-endian** unsigned length followed by
//! exactly that many bytes of UTF-8 JSON (one document per frame). The
//! full frame vocabulary, error taxonomy and tenant semantics are
//! specified in the repository's `PROTOCOL.md`; this module is the
//! executable form: [`read_frame`] / [`write_frame`] for framing,
//! [`Request::parse`] for the client→server vocabulary, and the
//! `resp_*` builders for the server→client side.
//!
//! Design points the robustness tests pin down:
//!
//! * a declared length above the configured cap is answered with a
//!   structured `frame-too-large` error and the payload is *drained*, so
//!   the connection survives (up to [`skip_cap`]; beyond that the framing
//!   is considered hostile and the connection closes);
//! * malformed JSON inside a well-framed payload is answered with a
//!   `protocol` error frame and the connection survives;
//! * a frame truncated by EOF surfaces as [`FrameError::Truncated`]; only
//!   that connection dies, the server keeps serving.

use super::json::Json;
use crate::{Limits, RtError, RtErrorKind, Value};
use std::io::{self, Read, Write};

/// Default cap on a single frame's payload (1 MiB) — large enough for any
/// corpus program source, small enough that a hostile length prefix cannot
/// balloon server memory.
pub const DEFAULT_MAX_FRAME: usize = 1 << 20;

/// How many declared-but-oversized bytes the server is willing to drain to
/// keep a connection alive after a `frame-too-large` error. Beyond this the
/// framing is treated as hostile and the connection closes.
pub fn skip_cap(max_frame: usize) -> u64 {
    (max_frame as u64).saturating_mul(4)
}

/// Ceiling on a `stream` request's per-batch solution count. The batch
/// size pre-sizes a server-side buffer, so a client-supplied value must
/// never translate into an unbounded (or panicking) allocation.
pub const MAX_STREAM_BATCH: usize = 8192;

/// Why a frame could not be read.
#[derive(Debug)]
pub enum FrameError {
    /// Clean end of stream at a frame boundary.
    Eof,
    /// The stream ended (or errored) in the middle of a frame.
    Truncated(io::Error),
    /// The declared payload length exceeds the configured cap; the payload
    /// has **not** been consumed yet.
    TooLarge {
        /// The length the prefix declared.
        declared: u64,
    },
    /// The payload was not valid JSON.
    Malformed(String),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Eof => write!(f, "end of stream"),
            FrameError::Truncated(e) => write!(f, "truncated frame: {e}"),
            FrameError::TooLarge { declared } => {
                write!(f, "declared frame length {declared} exceeds the cap")
            }
            FrameError::Malformed(m) => write!(f, "malformed frame payload: {m}"),
        }
    }
}

/// Writes one frame: 4-byte big-endian length, then the JSON bytes.
/// Prefix and payload go out as **one** write, so a frame never straddles
/// two TCP segments at the sender (Nagle + delayed-ACK would otherwise
/// park every response for ~40ms).
pub fn write_frame(w: &mut impl Write, doc: &Json) -> io::Result<()> {
    w.write_all(&frame_bytes(doc)?)?;
    w.flush()
}

/// Serializes one frame — 4-byte big-endian length prefix plus the JSON
/// bytes — without writing it anywhere: the shape the server's bounded
/// per-connection send queues enqueue, so serialization happens on the
/// producing thread and the writer thread only does I/O.
pub fn frame_bytes(doc: &Json) -> io::Result<Vec<u8>> {
    let body = doc.to_string().into_bytes();
    let len = u32::try_from(body.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "frame over 4 GiB"))?;
    let mut framed = Vec::with_capacity(4 + body.len());
    framed.extend_from_slice(&len.to_be_bytes());
    framed.extend_from_slice(&body);
    Ok(framed)
}

/// Reads one frame, enforcing the payload cap. On [`FrameError::TooLarge`]
/// the caller decides whether to [`drain`] the declared payload (keeping
/// the connection) or drop the connection.
pub fn read_frame(r: &mut impl Read, max_frame: usize) -> Result<Json, FrameError> {
    let mut len_buf = [0u8; 4];
    // A clean EOF before any length byte is a normal close; anything
    // partial is a truncation.
    match r.read(&mut len_buf[..1]) {
        Ok(0) => return Err(FrameError::Eof),
        Ok(1) => {}
        Ok(_) => unreachable!("single-byte read"),
        Err(e) => return Err(FrameError::Truncated(e)),
    }
    r.read_exact(&mut len_buf[1..])
        .map_err(FrameError::Truncated)?;
    let declared = u32::from_be_bytes(len_buf) as u64;
    if declared > max_frame as u64 {
        return Err(FrameError::TooLarge { declared });
    }
    let mut body = vec![0u8; declared as usize];
    r.read_exact(&mut body).map_err(FrameError::Truncated)?;
    let text = String::from_utf8(body)
        .map_err(|_| FrameError::Malformed("payload is not UTF-8".into()))?;
    Json::parse(&text).map_err(|e| FrameError::Malformed(e.to_string()))
}

/// Consumes and discards `declared` payload bytes after a
/// [`FrameError::TooLarge`], so the next frame starts at a clean boundary.
pub fn drain(r: &mut impl Read, declared: u64) -> io::Result<()> {
    let copied = io::copy(&mut r.take(declared), &mut io::sink())?;
    if copied == declared {
        Ok(())
    } else {
        Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "stream ended while draining an oversized frame",
        ))
    }
}

// ---------------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------------

/// Work-ceiling overrides a request may carry (`{"limits":{"max_depth":…,
/// "max_steps":…}}`); each field only ever *lowers* the tenant's ceiling.
#[derive(Debug, Clone, Copy, Default)]
pub struct LimitsSpec {
    /// Requested depth ceiling.
    pub max_depth: Option<usize>,
    /// Requested step ceiling.
    pub max_steps: Option<u64>,
}

impl LimitsSpec {
    /// The effective limits: the tenant's, lowered by the request's.
    pub fn clamp(&self, tenant: Limits) -> Limits {
        Limits {
            max_depth: self
                .max_depth
                .map_or(tenant.max_depth, |d| d.min(tenant.max_depth)),
            max_steps: self
                .max_steps
                .map_or(tenant.max_steps, |s| s.min(tenant.max_steps)),
        }
    }
}

/// An enumeration target: which method to drive and with what inputs.
#[derive(Debug, Clone)]
pub struct QuerySpec {
    /// The cache key of the compiled program (`compile`'s `program` reply).
    pub program: String,
    /// The method to enumerate.
    pub method: String,
    /// The declaring class for instance methods (the server drives them on
    /// a bare [`crate::Program::instance`] receiver); `None` = free method.
    pub class: Option<String>,
    /// Known (input) bindings, as wire scalars.
    pub known: Vec<(String, Value)>,
    /// Work-ceiling overrides.
    pub limits: LimitsSpec,
    /// Wall-clock deadline for the whole request, in milliseconds from
    /// admission; past it the run is interrupted and answered with a
    /// retryable `deadline-exceeded` error frame.
    pub deadline_ms: Option<u64>,
}

/// A parsed client→server frame.
#[derive(Debug, Clone)]
pub enum Request {
    /// Liveness probe; answered inline with `{"ok":true,"pong":true}`.
    Ping {
        /// Request id, echoed in the reply.
        id: i64,
    },
    /// Compile (or fetch from the program cache) a source text.
    Compile {
        /// Request id, echoed in the reply.
        id: i64,
        /// Tenant the work is accounted to.
        tenant: String,
        /// JMatch source text.
        source: String,
        /// Whether to run the static verification passes.
        verify: bool,
    },
    /// Compile (or fetch from the program cache) a source text and report
    /// the plan-analysis lints (`jmatch_core::analysis`) of the result.
    Lint {
        /// Request id, echoed in the reply.
        id: i64,
        /// Tenant the work is accounted to.
        tenant: String,
        /// JMatch source text.
        source: String,
        /// Whether to also run the static verification passes (their
        /// warnings ride along in the reply).
        verify: bool,
        /// Wall-clock deadline in milliseconds; checked before the compile
        /// starts (compilation itself is not interruptible).
        deadline_ms: Option<u64>,
    },
    /// Forward-mode call of a free method with scalar arguments.
    Call {
        /// Request id, echoed in the reply.
        id: i64,
        /// Tenant the work is accounted to.
        tenant: String,
        /// Program cache key.
        program: String,
        /// Free method name.
        method: String,
        /// Scalar arguments.
        args: Vec<Value>,
        /// Work-ceiling overrides.
        limits: LimitsSpec,
        /// Wall-clock deadline for the whole request, in milliseconds from
        /// admission.
        deadline_ms: Option<u64>,
    },
    /// Iterative-mode enumeration, collected into one response frame.
    Query {
        /// Request id, echoed in the reply.
        id: i64,
        /// Tenant the work is accounted to.
        tenant: String,
        /// What to enumerate.
        spec: QuerySpec,
    },
    /// Iterative-mode enumeration, streamed in solution batches.
    Stream {
        /// Request id, echoed in every batch frame.
        id: i64,
        /// Tenant the work is accounted to.
        tenant: String,
        /// What to enumerate.
        spec: QuerySpec,
        /// Solutions per batch frame (server-clamped to
        /// `1..=`[`MAX_STREAM_BATCH`]).
        batch: usize,
    },
    /// Edit a resident program: recompile `source` incrementally through
    /// the retained workspace of the base program (`program` is the PR 6
    /// cache key the client got from `compile`). Answered with
    /// `status:"unchanged"` / `status:"recompiled"` (listing the
    /// re-lowered methods) or a `reload-rejected` error carrying the
    /// diagnostics, with the base entry staying resident.
    Reload {
        /// Request id, echoed in the reply.
        id: i64,
        /// Tenant the work is accounted to.
        tenant: String,
        /// Cache key of the base program the edit applies to.
        program: String,
        /// The full new source text.
        source: String,
        /// Wall-clock deadline in milliseconds; checked before the
        /// recompile starts (compilation itself is not interruptible).
        deadline_ms: Option<u64>,
    },
    /// Cancel an in-flight `Stream` on the same connection.
    Cancel {
        /// Request id, echoed in the reply.
        id: i64,
        /// The id of the stream to cancel.
        target: i64,
    },
    /// Ask the server to shut down (only honored when the server was
    /// started with remote shutdown enabled — CI harnesses).
    Shutdown {
        /// Request id, echoed in the reply.
        id: i64,
    },
}

impl Request {
    /// The request id, for error replies.
    pub fn id(&self) -> i64 {
        match self {
            Request::Ping { id }
            | Request::Compile { id, .. }
            | Request::Lint { id, .. }
            | Request::Call { id, .. }
            | Request::Query { id, .. }
            | Request::Stream { id, .. }
            | Request::Reload { id, .. }
            | Request::Cancel { id, .. }
            | Request::Shutdown { id } => *id,
        }
    }

    /// Parses a frame document into a request. `Err` carries a
    /// human-readable protocol violation plus the frame's id when one was
    /// readable (so the error reply can still be correlated).
    pub fn parse(doc: &Json) -> Result<Request, (Option<i64>, String)> {
        let id = doc.get("id").and_then(Json::as_i64);
        let fail = |m: &str| Err((id, m.to_owned()));
        let Some(op) = doc.get("op").and_then(Json::as_str) else {
            return fail("missing string member `op`");
        };
        let Some(id) = id else {
            return fail("missing integer member `id`");
        };
        let tenant = || {
            doc.get("tenant")
                .and_then(Json::as_str)
                .unwrap_or("default")
                .to_owned()
        };
        let limits = parse_limits(doc).map_err(|m| (Some(id), m))?;
        let deadline_ms = match doc.get("deadline_ms").and_then(Json::as_i64) {
            Some(ms) if ms < 0 => {
                return Err((Some(id), "deadline_ms must be non-negative".into()))
            }
            other => other.map(|ms| ms as u64),
        };
        match op {
            "ping" => Ok(Request::Ping { id }),
            "shutdown" => Ok(Request::Shutdown { id }),
            "compile" => {
                let Some(source) = doc.get("source").and_then(Json::as_str) else {
                    return Err((Some(id), "compile needs a string `source`".into()));
                };
                Ok(Request::Compile {
                    id,
                    tenant: tenant(),
                    source: source.to_owned(),
                    verify: doc.get("verify").and_then(Json::as_bool).unwrap_or(true),
                })
            }
            "lint" => {
                let Some(source) = doc.get("source").and_then(Json::as_str) else {
                    return Err((Some(id), "lint needs a string `source`".into()));
                };
                Ok(Request::Lint {
                    id,
                    tenant: tenant(),
                    source: source.to_owned(),
                    verify: doc.get("verify").and_then(Json::as_bool).unwrap_or(false),
                    deadline_ms,
                })
            }
            "call" => {
                let (program, method) = program_and_method(doc).map_err(|m| (Some(id), m))?;
                let mut args = Vec::new();
                if let Some(items) = doc.get("args").and_then(Json::as_arr) {
                    for item in items {
                        args.push(json_to_value(item).map_err(|m| (Some(id), m))?);
                    }
                }
                Ok(Request::Call {
                    id,
                    tenant: tenant(),
                    program,
                    method,
                    args,
                    limits,
                    deadline_ms,
                })
            }
            "query" | "stream" => {
                let (program, method) = program_and_method(doc).map_err(|m| (Some(id), m))?;
                let mut known = Vec::new();
                if let Some(pairs) = doc.get("known").and_then(Json::as_obj) {
                    for (name, v) in pairs {
                        known.push((name.clone(), json_to_value(v).map_err(|m| (Some(id), m))?));
                    }
                }
                let spec = QuerySpec {
                    program,
                    method,
                    class: doc.get("class").and_then(Json::as_str).map(str::to_owned),
                    known,
                    limits,
                    deadline_ms,
                };
                if op == "query" {
                    Ok(Request::Query {
                        id,
                        tenant: tenant(),
                        spec,
                    })
                } else {
                    // Clamp before the value ever sizes a buffer: a huge
                    // (or negative) batch must not panic the worker.
                    let batch = doc
                        .get("batch")
                        .and_then(Json::as_i64)
                        .map_or(64, |b| b.clamp(1, MAX_STREAM_BATCH as i64) as usize);
                    Ok(Request::Stream {
                        id,
                        tenant: tenant(),
                        spec,
                        batch,
                    })
                }
            }
            "reload" => {
                let Some(program) = doc.get("program").and_then(Json::as_str) else {
                    return Err((Some(id), "reload needs a string `program`".into()));
                };
                let Some(source) = doc.get("source").and_then(Json::as_str) else {
                    return Err((Some(id), "reload needs a string `source`".into()));
                };
                Ok(Request::Reload {
                    id,
                    tenant: tenant(),
                    program: program.to_owned(),
                    source: source.to_owned(),
                    deadline_ms,
                })
            }
            "cancel" => {
                let Some(target) = doc.get("target").and_then(Json::as_i64) else {
                    return Err((Some(id), "cancel needs an integer `target`".into()));
                };
                Ok(Request::Cancel { id, target })
            }
            other => Err((Some(id), format!("unknown op `{other}`"))),
        }
    }
}

fn program_and_method(doc: &Json) -> Result<(String, String), String> {
    let program = doc
        .get("program")
        .and_then(Json::as_str)
        .ok_or("missing string member `program`")?;
    let method = doc
        .get("method")
        .and_then(Json::as_str)
        .ok_or("missing string member `method`")?;
    Ok((program.to_owned(), method.to_owned()))
}

fn parse_limits(doc: &Json) -> Result<LimitsSpec, String> {
    let Some(spec) = doc.get("limits") else {
        return Ok(LimitsSpec::default());
    };
    let depth = spec.get("max_depth").and_then(Json::as_i64);
    let steps = spec.get("max_steps").and_then(Json::as_i64);
    if depth.is_some_and(|d| d < 0) || steps.is_some_and(|s| s < 0) {
        return Err("limits must be non-negative".into());
    }
    Ok(LimitsSpec {
        max_depth: depth.map(|d| d as usize),
        max_steps: steps.map(|s| s as u64),
    })
}

// ---------------------------------------------------------------------------
// Values on the wire
// ---------------------------------------------------------------------------

/// Encodes a runtime value as wire JSON. Scalars map to JSON natively;
/// objects encode structurally as `{"$class":…,"fields":{…}}` (one-way:
/// the server never needs to reconstruct an object from its wire form).
pub fn value_to_json(v: &Value) -> Json {
    match v {
        Value::Int(n) => Json::Int(*n),
        Value::Bool(b) => Json::Bool(*b),
        Value::Str(s) => Json::Str(s.clone()),
        Value::Null => Json::Null,
        Value::Obj(o) => Json::obj(vec![
            ("$class", Json::Str(o.class().to_owned())),
            (
                "fields",
                Json::Obj(
                    o.layout()
                        .field_names()
                        .iter()
                        .zip(o.fields())
                        .map(|(name, v)| (name.clone(), value_to_json(v)))
                        .collect(),
                ),
            ),
        ]),
        // `Value` is non-exhaustive only outside its crate: adding a
        // variant makes this match fail to compile, forcing a wire form.
    }
}

/// Decodes a wire scalar into a runtime value. Objects are rejected:
/// clients build structured values inside the program (constructors run
/// server-side), not on the wire.
pub fn json_to_value(j: &Json) -> Result<Value, String> {
    match j {
        Json::Null => Ok(Value::Null),
        Json::Bool(b) => Ok(Value::Bool(*b)),
        Json::Int(n) => Ok(Value::Int(*n)),
        Json::Str(s) => Ok(Value::Str(s.clone())),
        Json::Float(_) => Err("floats have no jmatch value form".into()),
        Json::Arr(_) | Json::Obj(_) => {
            Err("arguments and bindings must be scalars (int/bool/string/null)".into())
        }
    }
}

/// Encodes one solution (bindings, sorted by name for deterministic wire
/// bytes) as a JSON object.
pub fn bindings_to_json(b: &crate::Bindings) -> Json {
    let mut pairs: Vec<(String, Json)> = b
        .iter()
        .map(|(name, v)| (name.clone(), value_to_json(v)))
        .collect();
    pairs.sort_by(|a, b| a.0.cmp(&b.0));
    Json::Obj(pairs)
}

// ---------------------------------------------------------------------------
// Responses
// ---------------------------------------------------------------------------

/// The `error.kind` of a server-level failure (runtime failures reuse the
/// [`RtErrorKind`] vocabulary).
pub mod error_kind {
    /// The frame violated the protocol (bad JSON, missing members, …).
    pub const PROTOCOL: &str = "protocol";
    /// The declared frame length exceeded the server's cap.
    pub const FRAME_TOO_LARGE: &str = "frame-too-large";
    /// The admission queue is full; retry after `retry_after_ms`.
    pub const OVER_CAPACITY: &str = "over-capacity";
    /// The tenant's step pool for this window is exhausted; retry after
    /// `retry_after_ms`.
    pub const QUOTA_EXHAUSTED: &str = "quota-exhausted";
    /// The referenced program is not in the cache (evicted or never
    /// compiled here); re-`compile` and retry.
    pub const UNKNOWN_PROGRAM: &str = "unknown-program";
    /// The source failed to compile; `errors` lists the diagnostics.
    pub const COMPILE_FAILED: &str = "compile-failed";
    /// A `reload` edit does not compile; `errors` lists the diagnostics
    /// and the base program stays resident and current.
    pub const RELOAD_REJECTED: &str = "reload-rejected";
    /// The server is shutting down.
    pub const SHUTTING_DOWN: &str = "shutting-down";
    /// The request's `deadline_ms` elapsed before it finished; retry after
    /// `retry_after_ms` (the work is admission-bounded, so a retry sees a
    /// fresh deadline).
    pub const DEADLINE_EXCEEDED: &str = "deadline-exceeded";
    /// The request was cancelled (a `cancel` frame, or its connection
    /// closed).
    pub const CANCELLED: &str = "cancelled";
    /// The request crashed inside the server (a worker panic). The worker
    /// survives (or is respawned); the request's quota reservation is
    /// refunded. Not retryable by default — the same input likely crashes
    /// again.
    pub const INTERNAL: &str = "internal-error";
    /// The connection's bounded send queue stayed full past the high-water
    /// timeout (a slow consumer); the server disconnects instead of
    /// blocking workers. Only ever observed as a closed connection — kept
    /// here to name the metric.
    pub const SLOW_CONSUMER: &str = "slow-consumer";
}

/// A structured server→client error, carried in `{"ok":false,"error":…}`.
#[derive(Debug, Clone)]
pub struct ErrorFrame {
    /// Stable machine-readable kind (see [`error_kind`] and
    /// [`RtErrorKind`]).
    pub kind: String,
    /// Human-readable description.
    pub message: String,
    /// When to retry, for backpressure/quota rejections.
    pub retry_after_ms: Option<u64>,
    /// Extra structured members (e.g. `method`, `expected`, `limit`).
    pub detail: Vec<(String, Json)>,
}

impl ErrorFrame {
    /// A server-level error.
    pub fn new(kind: &str, message: impl Into<String>) -> Self {
        ErrorFrame {
            kind: kind.to_owned(),
            message: message.into(),
            retry_after_ms: None,
            detail: Vec::new(),
        }
    }

    /// Attaches a retry hint.
    pub fn retry_after(mut self, ms: u64) -> Self {
        self.retry_after_ms = Some(ms);
        self
    }

    /// Attaches a structured detail member.
    pub fn with(mut self, key: &str, value: Json) -> Self {
        self.detail.push((key.to_owned(), value));
        self
    }

    /// Maps a runtime error onto the wire, keeping the structured
    /// [`RtErrorKind`] payload machine-readable.
    pub fn from_rt(e: &RtError) -> Self {
        let mut frame = ErrorFrame::new(&e.kind.to_string(), &e.message);
        match &e.kind {
            RtErrorKind::MethodNotFound { scope, name } => {
                frame.kind = "method-not-found".into();
                frame = frame
                    .with("scope", Json::Str(scope.clone()))
                    .with("name", Json::Str(name.clone()));
            }
            RtErrorKind::ArityMismatch {
                method,
                expected,
                actual,
            } => {
                frame.kind = "arity-mismatch".into();
                frame = frame
                    .with("method", Json::Str(method.clone()))
                    .with("expected", Json::Int(*expected as i64))
                    .with("actual", Json::Int(*actual as i64));
            }
            RtErrorKind::ModeMismatch { method, requested } => {
                frame.kind = "mode-mismatch".into();
                frame = frame
                    .with("method", Json::Str(method.clone()))
                    .with("requested", Json::Str(requested.clone()));
            }
            RtErrorKind::LimitExceeded { resource, limit } => {
                frame.kind = "limit-exceeded".into();
                frame = frame
                    .with("resource", Json::Str(resource.clone()))
                    .with("limit", Json::Int(*limit as i64));
            }
            // The server classifies a fired interrupt into
            // `deadline-exceeded` vs `cancelled` itself (it knows the
            // deadline); this mapping is the fallback for direct callers.
            RtErrorKind::Interrupted => {
                frame.kind = error_kind::CANCELLED.into();
            }
            _ => {
                frame.kind = "runtime".into();
            }
        }
        frame
    }

    /// The full error reply frame.
    pub fn into_frame(self, id: Option<i64>) -> Json {
        let mut err = vec![
            ("kind".to_owned(), Json::Str(self.kind)),
            ("message".to_owned(), Json::Str(self.message)),
        ];
        if let Some(ms) = self.retry_after_ms {
            err.push(("retry_after_ms".to_owned(), Json::Int(ms as i64)));
        }
        err.extend(self.detail);
        Json::obj(vec![
            ("ok", Json::Bool(false)),
            ("id", id.map_or(Json::Null, Json::Int)),
            ("error", Json::Obj(err)),
        ])
    }
}

/// `ping` reply.
pub fn resp_pong(id: i64) -> Json {
    Json::obj(vec![
        ("ok", Json::Bool(true)),
        ("id", Json::Int(id)),
        ("pong", Json::Bool(true)),
    ])
}

/// `compile` reply: the cache key, whether it was served from cache, and
/// the verifier's warnings.
pub fn resp_compiled(id: i64, key: &str, cached: bool, warnings: &[String]) -> Json {
    Json::obj(vec![
        ("ok", Json::Bool(true)),
        ("id", Json::Int(id)),
        ("program", Json::Str(key.to_owned())),
        ("cached", Json::Bool(cached)),
        (
            "warnings",
            Json::Arr(warnings.iter().map(|w| Json::Str(w.clone())).collect()),
        ),
    ])
}

/// `lint` reply: the cache key, whether it was served from cache, and the
/// plan-analysis lints as structured `{kind, context, message}` objects.
pub fn resp_lints(id: i64, key: &str, cached: bool, lints: &[jmatch_core::Warning]) -> Json {
    Json::obj(vec![
        ("ok", Json::Bool(true)),
        ("id", Json::Int(id)),
        ("program", Json::Str(key.to_owned())),
        ("cached", Json::Bool(cached)),
        (
            "lints",
            Json::Arr(
                lints
                    .iter()
                    .map(|w| {
                        Json::obj(vec![
                            ("kind", Json::Str(w.kind.to_string())),
                            ("context", Json::Str(w.context.clone())),
                            ("message", Json::Str(w.message.clone())),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// `call` reply: the returned value.
pub fn resp_value(id: i64, v: &Value) -> Json {
    Json::obj(vec![
        ("ok", Json::Bool(true)),
        ("id", Json::Int(id)),
        ("value", value_to_json(v)),
    ])
}

/// `query` reply: every solution in one frame.
pub fn resp_solutions(id: i64, solutions: &[crate::Bindings], steps: Option<u64>) -> Json {
    let mut pairs = vec![
        ("ok", Json::Bool(true)),
        ("id", Json::Int(id)),
        (
            "solutions",
            Json::Arr(solutions.iter().map(bindings_to_json).collect()),
        ),
        ("done", Json::Bool(true)),
    ];
    if let Some(steps) = steps {
        pairs.push(("steps", Json::Int(steps as i64)));
    }
    Json::obj(pairs)
}

/// One `stream` batch (`done:false`): `seq` numbers batches from 0 so the
/// client can detect gaps.
pub fn resp_batch(id: i64, seq: u64, solutions: &[crate::Bindings]) -> Json {
    Json::obj(vec![
        ("ok", Json::Bool(true)),
        ("id", Json::Int(id)),
        ("seq", Json::Int(seq as i64)),
        (
            "solutions",
            Json::Arr(solutions.iter().map(bindings_to_json).collect()),
        ),
        ("done", Json::Bool(false)),
    ])
}

/// The terminal `stream` frame: total solution count, whether the stream
/// was cancelled, and the steps spent (when countable).
pub fn resp_stream_done(id: i64, count: u64, cancelled: bool, steps: Option<u64>) -> Json {
    let mut pairs = vec![
        ("ok", Json::Bool(true)),
        ("id", Json::Int(id)),
        ("count", Json::Int(count as i64)),
        ("cancelled", Json::Bool(cancelled)),
        ("done", Json::Bool(true)),
    ];
    if let Some(steps) = steps {
        pairs.push(("steps", Json::Int(steps as i64)));
    }
    Json::obj(pairs)
}

/// `cancel` / `shutdown` acknowledgement.
pub fn resp_ack(id: i64) -> Json {
    Json::obj(vec![("ok", Json::Bool(true)), ("id", Json::Int(id))])
}

/// `reload` reply for the `unchanged` case: the edit was byte-identical
/// to the resident source, nothing ran.
pub fn resp_reload_unchanged(id: i64, key: &str) -> Json {
    Json::obj(vec![
        ("ok", Json::Bool(true)),
        ("id", Json::Int(id)),
        ("status", Json::Str("unchanged".into())),
        ("program", Json::Str(key.to_owned())),
    ])
}

/// `reload` reply for the `recompiled` case: the new generation's key,
/// which methods were re-lowered / re-verified, and the new generation's
/// warnings.
pub fn resp_reloaded(
    id: i64,
    key: &str,
    methods: &[String],
    reverified: &[String],
    warnings: &[String],
) -> Json {
    let strs = |xs: &[String]| Json::Arr(xs.iter().map(|s| Json::Str(s.clone())).collect());
    Json::obj(vec![
        ("ok", Json::Bool(true)),
        ("id", Json::Int(id)),
        ("status", Json::Str("recompiled".into())),
        ("program", Json::Str(key.to_owned())),
        ("methods", strs(methods)),
        ("reverified", strs(reverified)),
        ("warnings", strs(warnings)),
    ])
}

/// `reload` rejection, listing the diagnostics (the base program stays
/// resident and current).
pub fn resp_reload_rejected(id: i64, errors: &[String]) -> Json {
    ErrorFrame::new(
        error_kind::RELOAD_REJECTED,
        "the edit does not compile; the previous program stays active",
    )
    .with(
        "errors",
        Json::Arr(errors.iter().map(|e| Json::Str(e.clone())).collect()),
    )
    .into_frame(Some(id))
}

/// Compile-failure reply, listing the diagnostics.
pub fn resp_compile_failed(id: i64, errors: &[String]) -> Json {
    ErrorFrame::new(error_kind::COMPILE_FAILED, "the source failed to compile")
        .with(
            "errors",
            Json::Arr(errors.iter().map(|e| Json::Str(e.clone())).collect()),
        )
        .into_frame(Some(id))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn frames_round_trip() {
        let doc = Json::obj(vec![("op", Json::Str("ping".into())), ("id", Json::Int(1))]);
        let mut buf = Vec::new();
        write_frame(&mut buf, &doc).unwrap();
        assert_eq!(&buf[..4], &(buf.len() as u32 - 4).to_be_bytes());
        let mut cur = Cursor::new(buf);
        assert_eq!(read_frame(&mut cur, DEFAULT_MAX_FRAME).unwrap(), doc);
        assert!(matches!(
            read_frame(&mut cur, DEFAULT_MAX_FRAME),
            Err(FrameError::Eof)
        ));
    }

    #[test]
    fn oversized_and_truncated_frames_are_distinguished() {
        let mut big = Vec::new();
        big.extend_from_slice(&(10_000u32).to_be_bytes());
        big.extend_from_slice(&[b'x'; 10_000]);
        let mut cur = Cursor::new(big);
        match read_frame(&mut cur, 1_000) {
            Err(FrameError::TooLarge { declared }) => assert_eq!(declared, 10_000),
            other => panic!("expected TooLarge, got {other:?}"),
        }
        drain(&mut cur, 10_000).unwrap();
        assert!(matches!(read_frame(&mut cur, 1_000), Err(FrameError::Eof)));

        let mut cut = Vec::new();
        cut.extend_from_slice(&(100u32).to_be_bytes());
        cut.extend_from_slice(b"only a little");
        assert!(matches!(
            read_frame(&mut Cursor::new(cut), 1_000),
            Err(FrameError::Truncated(_))
        ));
    }

    #[test]
    fn requests_parse_and_reject() {
        let q = Json::parse(
            r#"{"op":"stream","id":7,"tenant":"t1","program":"p:1","method":"below",
                "class":"Gen","known":{"n":3},"batch":2,"limits":{"max_steps":100}}"#,
        )
        .unwrap();
        match Request::parse(&q).unwrap() {
            Request::Stream {
                id,
                tenant,
                spec,
                batch,
            } => {
                assert_eq!((id, batch), (7, 2));
                assert_eq!(tenant, "t1");
                assert_eq!(spec.class.as_deref(), Some("Gen"));
                assert_eq!(spec.known, vec![("n".into(), Value::Int(3))]);
                assert_eq!(spec.limits.max_steps, Some(100));
                assert_eq!(spec.limits.max_depth, None);
            }
            other => panic!("parsed as {other:?}"),
        }
        for bad in [
            r#"{"id":1}"#,
            r#"{"op":"ping"}"#,
            r#"{"op":"nosuch","id":1}"#,
            r#"{"op":"compile","id":1}"#,
            r#"{"op":"query","id":1,"method":"m"}"#,
            r#"{"op":"query","id":1,"program":"p","method":"m","known":{"x":[1]}}"#,
            r#"{"op":"query","id":1,"program":"p","method":"m","limits":{"max_steps":-1}}"#,
        ] {
            let doc = Json::parse(bad).unwrap();
            assert!(Request::parse(&doc).is_err(), "accepted {bad}");
        }
    }

    #[test]
    fn stream_batch_is_clamped_to_a_sane_range() {
        let parse_batch = |raw: &str| {
            let doc = Json::parse(raw).unwrap();
            match Request::parse(&doc).unwrap() {
                Request::Stream { batch, .. } => batch,
                other => panic!("parsed as {other:?}"),
            }
        };
        // A hostile batch value must clamp, not size a huge allocation.
        let huge = parse_batch(
            r#"{"op":"stream","id":1,"program":"p:1","method":"m","batch":4000000000000}"#,
        );
        assert_eq!(huge, MAX_STREAM_BATCH);
        let negative =
            parse_batch(r#"{"op":"stream","id":1,"program":"p:1","method":"m","batch":-5}"#);
        assert_eq!(negative, 1);
        let absent = parse_batch(r#"{"op":"stream","id":1,"program":"p:1","method":"m"}"#);
        assert_eq!(absent, 64);
    }

    #[test]
    fn rt_errors_map_to_structured_frames() {
        let e = RtError::arity_mismatch("Gen.below", 2, 1);
        let frame = ErrorFrame::from_rt(&e).into_frame(Some(9));
        assert_eq!(frame.get("ok"), Some(&Json::Bool(false)));
        let err = frame.get("error").unwrap();
        assert_eq!(
            err.get("kind").and_then(Json::as_str),
            Some("arity-mismatch")
        );
        assert_eq!(err.get("expected").and_then(Json::as_i64), Some(2));
        let e = RtError::limit("steps", 64, "budget exceeded");
        let err = ErrorFrame::from_rt(&e).into_frame(None);
        let err = err.get("error").unwrap();
        assert_eq!(
            err.get("kind").and_then(Json::as_str),
            Some("limit-exceeded")
        );
        assert_eq!(err.get("limit").and_then(Json::as_i64), Some(64));
    }
}
