//! Per-tenant work quotas.
//!
//! Every tenant id maps to a [`Limits`] profile plus a windowed step pool
//! backed by the same atomic [`SharedBudget`](crate::eval) the OR-parallel
//! workers meter themselves with: admission **reserves** a request's whole
//! step ceiling from the tenant's pool up front, execution runs under that
//! grant, and settlement returns whatever the enumeration did not use —
//! including when a client disconnects mid-stream, so an abandoned query
//! cannot strand its tenant's budget. Pools refill to their ceiling once
//! per configured window.
//!
//! Fairness across tenants is the scheduler's job (round-robin draining in
//! [`crate::serve::server`]); the quota layer's job is that one tenant's
//! spend can never draw down another's pool.

use crate::eval::SharedBudget;
use crate::Limits;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// A tenant's quota profile.
#[derive(Debug, Clone, Copy)]
pub struct QuotaConfig {
    /// Per-request work ceilings (requests may lower, never raise them).
    pub limits: Limits,
    /// Solver steps the tenant may spend per window.
    pub steps_per_window: u64,
    /// How often the step pool refills to its ceiling.
    pub window: Duration,
    /// Step-equivalent price of one compile drawn from the same pool
    /// (charged only when the source actually compiles; cache hits
    /// refund). `0` leaves compiles unmetered.
    pub compile_steps: u64,
}

impl Default for QuotaConfig {
    /// One million steps a second per tenant, default engine limits —
    /// roomy for interactive use, finite for runaways. Compiles are
    /// unmetered by default (they run inline on connection readers, which
    /// the server's connection cap bounds); set `compile_steps` to price
    /// them into the tenant pool.
    fn default() -> Self {
        QuotaConfig {
            limits: Limits {
                max_depth: Limits::default().max_depth,
                max_steps: 1_000_000,
            },
            steps_per_window: 10_000_000,
            window: Duration::from_secs(1),
            compile_steps: 0,
        }
    }
}

/// One tenant's live accounting.
#[derive(Debug)]
struct TenantState {
    config: QuotaConfig,
    pool: SharedBudget,
    window_start: Mutex<Instant>,
    /// Steps reserved by grants that have not settled or dropped yet.
    /// Window refills subtract this from the ceiling, so a grant held
    /// across a window boundary cannot refund on top of a full pool and
    /// bank budget beyond the per-window quota.
    outstanding: AtomicU64,
    /// Steps actually consumed over the tenant's lifetime (metrics).
    spent: AtomicU64,
    /// Steps ever reserved by admission, cumulatively. With `refunded`
    /// this pins the conservation invariant the chaos suite checks:
    /// `reserved == spent + refunded` whenever `outstanding == 0` — every
    /// grant settles or refunds exactly once, panics and disconnects
    /// included.
    reserved: AtomicU64,
    /// Steps ever handed back — settlement remainders plus whole dropped
    /// grants — cumulatively.
    refunded: AtomicU64,
}

/// Why admission failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuotaDenied {
    /// Milliseconds until the tenant's pool refills.
    pub retry_after_ms: u64,
}

/// An admitted request's step reservation. Settle it with the steps the
/// enumeration actually spent; dropping it unsettled refunds the whole
/// grant (the disconnect/cancel path).
#[derive(Debug)]
pub struct Grant {
    state: Arc<TenantStateHandle>,
    granted: u64,
    settled: bool,
}

/// Newtype so [`Grant`] can hold the tenant state without exposing it.
#[derive(Debug)]
pub struct TenantStateHandle(TenantState);

impl Grant {
    /// The steps this grant reserved.
    pub fn granted(&self) -> u64 {
        self.granted
    }

    /// Returns the unused part of the reservation to the tenant pool and
    /// records the spend. `used` is clamped to the grant.
    pub fn settle(mut self, used: u64) {
        let used = used.min(self.granted);
        // Refund before releasing the reservation: a window refill that
        // interleaves sees either the refund (and overwrites it) or the
        // still-held reservation (and discounts it) — never a pool above
        // its ceiling.
        self.state.0.pool.give(self.granted - used);
        self.state
            .0
            .outstanding
            .fetch_sub(self.granted, Ordering::Relaxed);
        self.state.0.spent.fetch_add(used, Ordering::Relaxed);
        self.state
            .0
            .refunded
            .fetch_add(self.granted - used, Ordering::Relaxed);
        self.settled = true;
    }
}

impl Drop for Grant {
    fn drop(&mut self) {
        if !self.settled {
            // Never settled: the request died before (or instead of)
            // running — a disconnect, a cancel at pickup, or a panic
            // unwinding through the worker — hand the whole reservation
            // back.
            self.state.0.pool.give(self.granted);
            self.state
                .0
                .outstanding
                .fetch_sub(self.granted, Ordering::Relaxed);
            self.state
                .0
                .refunded
                .fetch_add(self.granted, Ordering::Relaxed);
        }
    }
}

/// Point-in-time view of one tenant, for metrics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantSnapshot {
    /// The tenant id.
    pub tenant: String,
    /// Steps left in the current window's pool.
    pub pool_remaining: u64,
    /// The pool's per-window ceiling.
    pub pool_ceiling: u64,
    /// Steps consumed over the tenant's lifetime.
    pub spent: u64,
    /// Steps ever reserved by admission, cumulatively.
    pub reserved: u64,
    /// Steps ever handed back (settlement remainders + dropped grants),
    /// cumulatively.
    pub refunded: u64,
    /// Steps reserved by grants still in flight. When this is zero,
    /// `reserved == spent + refunded` — the settle-or-refund-exactly-once
    /// conservation invariant.
    pub outstanding: u64,
}

/// The tenant registry: id → quota state, created on first sight.
#[derive(Debug)]
pub struct TenantQuotas {
    default_config: QuotaConfig,
    overrides: Mutex<HashMap<String, QuotaConfig>>,
    tenants: Mutex<HashMap<String, Arc<TenantStateHandle>>>,
}

impl TenantQuotas {
    /// A registry handing every new tenant `default_config`.
    pub fn new(default_config: QuotaConfig) -> Self {
        TenantQuotas {
            default_config,
            overrides: Mutex::new(HashMap::new()),
            tenants: Mutex::new(HashMap::new()),
        }
    }

    /// Pins a per-tenant profile (takes effect when the tenant is next
    /// created; existing state is replaced).
    pub fn set_tenant_config(&self, tenant: &str, config: QuotaConfig) {
        self.overrides
            .lock()
            .expect("quota overrides poisoned")
            .insert(tenant.to_owned(), config);
        self.tenants
            .lock()
            .expect("quota registry poisoned")
            .remove(tenant);
    }

    fn state(&self, tenant: &str) -> Arc<TenantStateHandle> {
        let mut tenants = self.tenants.lock().expect("quota registry poisoned");
        if let Some(state) = tenants.get(tenant) {
            return Arc::clone(state);
        }
        let config = self
            .overrides
            .lock()
            .expect("quota overrides poisoned")
            .get(tenant)
            .copied()
            .unwrap_or(self.default_config);
        let state = Arc::new(TenantStateHandle(TenantState {
            config,
            pool: SharedBudget::new(config.steps_per_window),
            window_start: Mutex::new(Instant::now()),
            outstanding: AtomicU64::new(0),
            spent: AtomicU64::new(0),
            reserved: AtomicU64::new(0),
            refunded: AtomicU64::new(0),
        }));
        tenants.insert(tenant.to_owned(), Arc::clone(&state));
        state
    }

    /// The tenant's per-request limits profile.
    pub fn limits_of(&self, tenant: &str) -> Limits {
        self.state(tenant).0.config.limits
    }

    /// Admits a request that wants to reserve `want` steps. Refills the
    /// window first when it has elapsed; partial grants are returned
    /// whole-or-nothing is deliberately *not* the policy — a nearly-empty
    /// pool still admits a (smaller) grant, and the enumeration hits
    /// `limit-exceeded` if it outruns it.
    pub fn admit(&self, tenant: &str, want: u64) -> Result<Grant, QuotaDenied> {
        let state = self.state(tenant);
        let inner = &state.0;
        let granted = {
            let mut start = inner.window_start.lock().expect("quota window poisoned");
            if start.elapsed() >= inner.config.window {
                *start = Instant::now();
                // Refill to the ceiling *minus* reservations still in
                // flight: their later refunds land on top of whatever we
                // store here, so refilling to the full ceiling would let
                // a grant held across the boundary bank budget beyond
                // the per-window quota.
                let outstanding = inner.outstanding.load(Ordering::Relaxed);
                inner
                    .pool
                    .refill_to(inner.pool.ceiling().saturating_sub(outstanding));
            }
            // Take and reserve under the window lock, so a concurrent
            // refill always sees a consistent (pool, outstanding) pair.
            let granted = inner.pool.take(want.max(1));
            inner.outstanding.fetch_add(granted, Ordering::Relaxed);
            inner.reserved.fetch_add(granted, Ordering::Relaxed);
            granted
        };
        if granted == 0 {
            let start = inner.window_start.lock().expect("quota window poisoned");
            let elapsed = start.elapsed();
            let retry = inner.config.window.saturating_sub(elapsed);
            return Err(QuotaDenied {
                retry_after_ms: (retry.as_millis() as u64).max(1),
            });
        }
        Ok(Grant {
            state,
            granted,
            settled: false,
        })
    }

    /// Admits a compile for `tenant` under its `compile_steps` price.
    /// Returns `Ok(None)` when the tenant's profile leaves compiles
    /// unmetered; otherwise reserves the price from the step pool like
    /// any other request (the caller settles the grant at zero on a
    /// cache hit, refunding it).
    pub fn admit_compile(&self, tenant: &str) -> Result<Option<Grant>, QuotaDenied> {
        let cost = self.state(tenant).0.config.compile_steps;
        if cost == 0 {
            return Ok(None);
        }
        self.admit(tenant, cost).map(Some)
    }

    /// Snapshots every tenant seen so far, sorted by id.
    pub fn snapshot(&self) -> Vec<TenantSnapshot> {
        let tenants = self.tenants.lock().expect("quota registry poisoned");
        let mut out: Vec<TenantSnapshot> = tenants
            .iter()
            .map(|(id, state)| TenantSnapshot {
                tenant: id.clone(),
                pool_remaining: state.0.pool.remaining(),
                pool_ceiling: state.0.pool.ceiling(),
                spent: state.0.spent.load(Ordering::Relaxed),
                reserved: state.0.reserved.load(Ordering::Relaxed),
                refunded: state.0.refunded.load(Ordering::Relaxed),
                outstanding: state.0.outstanding.load(Ordering::Relaxed),
            })
            .collect();
        out.sort_by(|a, b| a.tenant.cmp(&b.tenant));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(steps: u64, window_ms: u64) -> QuotaConfig {
        QuotaConfig {
            steps_per_window: steps,
            window: Duration::from_millis(window_ms),
            ..QuotaConfig::default()
        }
    }

    #[test]
    fn grants_reserve_and_settlement_refunds() {
        let quotas = TenantQuotas::new(config(1_000, 60_000));
        let grant = quotas.admit("t1", 600).unwrap();
        assert_eq!(grant.granted(), 600);
        assert_eq!(quotas.snapshot()[0].pool_remaining, 400);
        grant.settle(100);
        let snap = &quotas.snapshot()[0];
        assert_eq!(snap.pool_remaining, 900);
        assert_eq!(snap.spent, 100);
    }

    #[test]
    fn dropped_grants_refund_everything() {
        let quotas = TenantQuotas::new(config(1_000, 60_000));
        drop(quotas.admit("t1", 750).unwrap());
        assert_eq!(quotas.snapshot()[0].pool_remaining, 1_000);
        assert_eq!(quotas.snapshot()[0].spent, 0);
    }

    #[test]
    fn exhaustion_denies_with_retry_and_is_per_tenant() {
        let quotas = TenantQuotas::new(config(100, 60_000));
        let g = quotas.admit("hot", 100).unwrap();
        let denied = quotas.admit("hot", 1).unwrap_err();
        assert!(denied.retry_after_ms > 0);
        // Another tenant's pool is untouched.
        assert!(quotas.admit("cold", 50).is_ok());
        g.settle(100);
        assert_eq!(quotas.snapshot()[1].pool_remaining, 0);
    }

    #[test]
    fn windows_refill_the_pool() {
        let quotas = TenantQuotas::new(config(100, 30));
        quotas.admit("t", 100).unwrap().settle(100);
        assert!(quotas.admit("t", 1).is_err());
        std::thread::sleep(Duration::from_millis(40));
        let grant = quotas.admit("t", 100).unwrap();
        assert_eq!(grant.granted(), 100);
    }

    #[test]
    fn refills_discount_outstanding_grants() {
        let quotas = TenantQuotas::new(config(1_000, 30));
        // Reserve 600, hold the grant across the window boundary.
        let held = quotas.admit("t", 600).unwrap();
        assert_eq!(quotas.snapshot()[0].pool_remaining, 400);
        std::thread::sleep(Duration::from_millis(40));
        // The rolled-over window refills to ceiling − outstanding (400),
        // of which this admission takes 1.
        let fresh = quotas.admit("t", 1).unwrap();
        assert_eq!(quotas.snapshot()[0].pool_remaining, 399);
        // The held grant's refund lands on top of the discounted pool —
        // never past the ceiling.
        held.settle(0);
        drop(fresh);
        let snap = &quotas.snapshot()[0];
        assert_eq!(snap.pool_remaining, 1_000);
        assert!(snap.pool_remaining <= snap.pool_ceiling);
    }

    #[test]
    fn compile_admission_prices_compiles_when_configured() {
        // Unmetered by default.
        let free = TenantQuotas::new(config(1_000, 60_000));
        assert!(free.admit_compile("t").unwrap().is_none());

        let quotas = TenantQuotas::new(QuotaConfig {
            compile_steps: 100,
            ..config(150, 60_000)
        });
        // First compile reserves the full price...
        let g1 = quotas.admit_compile("t").unwrap().expect("metered");
        assert_eq!(g1.granted(), 100);
        g1.settle(100);
        // ...the second gets the partial remainder...
        let g2 = quotas.admit_compile("t").unwrap().expect("metered");
        assert_eq!(g2.granted(), 50);
        // ...a cache hit settles at zero and refunds...
        g2.settle(0);
        assert_eq!(quotas.snapshot()[0].pool_remaining, 50);
        // ...and an empty pool denies with a retry hint.
        quotas
            .admit_compile("t")
            .unwrap()
            .expect("metered")
            .settle(50);
        let denied = quotas.admit_compile("t").unwrap_err();
        assert!(denied.retry_after_ms > 0);
    }

    #[test]
    fn partial_grants_drain_the_tail_of_a_pool() {
        let quotas = TenantQuotas::new(config(100, 60_000));
        let g1 = quotas.admit("t", 80).unwrap();
        let g2 = quotas.admit("t", 80).unwrap();
        assert_eq!((g1.granted(), g2.granted()), (80, 20));
    }

    #[test]
    fn conservation_holds_across_settle_drop_and_panic() {
        let quotas = TenantQuotas::new(config(10_000, 60_000));
        // Settled grants: remainder counts as refund.
        quotas.admit("t", 600).unwrap().settle(100);
        // Dropped grants: the whole reservation counts as refund.
        drop(quotas.admit("t", 300).unwrap());
        // Grants dropped by a panic's unwind count the same way.
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _grant = quotas.admit("t", 200).unwrap();
            panic!("request died mid-run");
        }));
        let snap = &quotas.snapshot()[0];
        assert_eq!(snap.outstanding, 0);
        assert_eq!(snap.reserved, 1_100);
        assert_eq!(snap.spent, 100);
        assert_eq!(snap.refunded, 1_000);
        assert_eq!(snap.reserved, snap.spent + snap.refunded);
    }

    #[test]
    fn snapshots_expose_in_flight_reservations() {
        let quotas = TenantQuotas::new(config(1_000, 60_000));
        let held = quotas.admit("t", 400).unwrap();
        let snap = &quotas.snapshot()[0];
        assert_eq!(snap.outstanding, 400);
        assert_eq!(snap.reserved, 400);
        assert_eq!(snap.spent + snap.refunded, 0);
        held.settle(400);
        let snap = &quotas.snapshot()[0];
        assert_eq!(snap.outstanding, 0);
        assert_eq!(snap.reserved, snap.spent + snap.refunded);
    }

    #[test]
    fn per_tenant_overrides_apply() {
        let quotas = TenantQuotas::new(config(1_000, 60_000));
        quotas.set_tenant_config("small", config(10, 60_000));
        let g = quotas.admit("small", 500).unwrap();
        assert_eq!(g.granted(), 10);
        assert_eq!(quotas.limits_of("small").max_steps, 1_000_000);
    }
}
