//! The multi-tenant query server.
//!
//! ```text
//!                    ┌───────────────────────────── Server ──────────────────────────────┐
//! TCP clients ──────▶ accept loop ──▶ per-connection reader threads                       │
//!                   │                   │ ping/compile: answered inline (single-flight    │
//!                   │                   │               ProgramCache)                     │
//!                   │                   │ call/query/stream: admission                    │
//!                   │                   ▼                                                 │
//!                   │            TenantQuotas (reserve step grant)                        │
//!                   │                   ▼                                                 │
//!                   │            Scheduler: bounded per-tenant FIFOs,                     │
//!                   │            round-robin draining ──▶ worker threads                  │
//!                   │                                      │ coalesce ready queries      │
//!                   │                                      ▼                             │
//!                   │                         Program::query_many_counted                │
//!                   └───────────────────────────────────────────────────────────────────┘
//! ```
//!
//! The shape is compile-once/serve-forever: compilation (parse + resolve +
//! verify + lower) happens exactly once per distinct source in the
//! [`ProgramCache`], and every query runs over the shared, immutable
//! [`Arc<Program>`]. Admission is **bounded** end to end — connections
//! beyond `max_connections` are refused with `over-capacity` (each one
//! holds a reader thread), a full tenant queue rejects with
//! `over-capacity` + `retry_after_ms` instead of queueing unboundedly,
//! and an exhausted tenant step pool rejects with `quota-exhausted` — so
//! neither a hot tenant nor a flood of connections can grow server
//! memory or starve other tenants (the scheduler drains tenant queues
//! round-robin, one job per turn).

use super::cache::{CacheOutcome, CacheStats, ProgramCache};
use super::json::Json;
use super::proto::{
    self, drain, error_kind, read_frame, write_frame, ErrorFrame, FrameError, LimitsSpec,
    QuerySpec, Request,
};
use super::quota::{Grant, QuotaConfig, TenantQuotas, TenantSnapshot};
use crate::{Bindings, Engine, Limits, MethodRef, Program, Query, RtResult, Value};
use std::collections::{HashMap, VecDeque};
use std::io;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// How long a client should wait before retrying after an `over-capacity`
/// rejection — long enough for a queue slot to drain, short enough that
/// the retry loop converges quickly.
const CAPACITY_RETRY_MS: u64 = 25;

/// A collected enumeration plus the steps it spent (when countable) —
/// the per-query shape `Program::query_many_counted` returns.
type QueryOutcome = (RtResult<Vec<Bindings>>, Option<u64>);

/// Stack size for reader and worker threads. Compilation runs inline on
/// reader threads and query lowering on workers; both recurse over ASTs
/// whose depth is client-controlled (e.g. a wide `||` chain), so these
/// threads get a main-thread-sized stack instead of the spawn default.
const SERVE_THREAD_STACK: usize = 8 << 20;

/// Everything the server's behavior is parameterized on.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Listen address (`127.0.0.1:0` = ephemeral loopback port).
    pub addr: String,
    /// Query worker threads draining the admission queue. `0` is a
    /// test-only mode: jobs are admitted and queued but never drained.
    pub workers: usize,
    /// Threads each coalesced [`Program::query_many`] batch fans out to.
    pub inner_threads: usize,
    /// Most queries one worker coalesces into a single batch.
    pub batch_max: usize,
    /// Bound on each tenant's admission queue; the (workers × batch)
    /// in-flight work rides on top of this.
    pub queue_depth: usize,
    /// Most concurrent connections the server accepts. Each connection
    /// holds a reader thread, so an uncapped flood would exhaust
    /// threads/memory despite the bounded admission queues; beyond the
    /// cap, new connections get an `over-capacity` error frame and are
    /// closed immediately.
    pub max_connections: usize,
    /// Most compiled programs the cache keeps (LRU beyond that).
    pub cache_capacity: usize,
    /// Cap on a single frame's payload bytes.
    pub max_frame: usize,
    /// The engine cached programs run on.
    pub engine: Engine,
    /// The quota profile handed to tenants without an override.
    pub quota: QuotaConfig,
    /// Per-tenant quota overrides, applied at startup.
    pub tenant_overrides: Vec<(String, QuotaConfig)>,
    /// Whether a `shutdown` frame may stop the server (CI harnesses; keep
    /// off for real deployments).
    pub allow_remote_shutdown: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: 4,
            inner_threads: 2,
            batch_max: 16,
            queue_depth: 64,
            max_connections: 256,
            cache_capacity: 64,
            max_frame: proto::DEFAULT_MAX_FRAME,
            engine: Engine::Plan,
            quota: QuotaConfig::default(),
            tenant_overrides: Vec::new(),
            allow_remote_shutdown: false,
        }
    }
}

// ---------------------------------------------------------------------------
// Jobs and the scheduler
// ---------------------------------------------------------------------------

enum JobKind {
    Call { method: String, args: Vec<Value> },
    Query { spec: QuerySpec },
    Stream { spec: QuerySpec, batch: usize },
}

struct Job {
    id: i64,
    tenant: String,
    conn: Arc<ConnShared>,
    program: Arc<Program>,
    limits: Limits,
    grant: Grant,
    cancel: Arc<AtomicBool>,
    kind: JobKind,
}

#[derive(Default)]
struct SchedState {
    queues: HashMap<String, VecDeque<Job>>,
    /// Round-robin order over tenants with live queues.
    order: Vec<String>,
    cursor: usize,
    queued: usize,
}

impl SchedState {
    /// Enqueues under the tenant's bound; a full queue hands the job back.
    fn push(&mut self, job: Job, depth: usize) -> Option<Job> {
        let queue = self.queues.entry(job.tenant.clone()).or_default();
        if queue.len() >= depth {
            return Some(job);
        }
        if queue.is_empty() && !self.order.contains(&job.tenant) {
            self.order.push(job.tenant.clone());
        }
        queue.push_back(job);
        self.queued += 1;
        None
    }

    /// Pops the next job **round-robin across tenants**: each turn serves
    /// the next tenant in rotation that has queued work, so a tenant
    /// keeping its queue full cannot starve the others.
    fn pop(&mut self) -> Option<Job> {
        if self.order.is_empty() {
            return None;
        }
        for _ in 0..self.order.len() {
            if self.cursor >= self.order.len() {
                self.cursor = 0;
            }
            let tenant = self.order[self.cursor].clone();
            if let Some(queue) = self.queues.get_mut(&tenant) {
                if let Some(job) = queue.pop_front() {
                    self.queued -= 1;
                    if queue.is_empty() {
                        self.queues.remove(&tenant);
                        self.order.remove(self.cursor);
                        // cursor now points at the next tenant already.
                    } else {
                        self.cursor += 1;
                    }
                    return Some(job);
                }
            }
            self.order.remove(self.cursor);
        }
        None
    }

    /// Pops another *collect-type query* job for batching, continuing the
    /// same round-robin rotation (fairness extends into the batch).
    fn pop_query(&mut self) -> Option<Job> {
        let before = self.queued;
        if before == 0 {
            return None;
        }
        // Only take a job when the head of some tenant's rotation turn is
        // a collect query; peeking without popping keeps this simple:
        // scan tenants in rotation order for a query at the front.
        for _ in 0..self.order.len() {
            if self.cursor >= self.order.len() {
                self.cursor = 0;
            }
            let tenant = self.order[self.cursor].clone();
            let is_query = self
                .queues
                .get(&tenant)
                .and_then(|q| q.front())
                .is_some_and(|j| matches!(j.kind, JobKind::Query { .. }));
            if is_query {
                return self.pop();
            }
            self.cursor += 1;
        }
        None
    }
}

struct Sched {
    state: Mutex<SchedState>,
    ready: Condvar,
}

// ---------------------------------------------------------------------------
// Connections
// ---------------------------------------------------------------------------

/// The half of a connection shared between its reader thread and the
/// workers writing responses: a mutex-serialized writer over a cloned
/// socket handle, the open flag, and the in-flight cancel tokens.
struct ConnShared {
    writer: Mutex<TcpStream>,
    open: AtomicBool,
    cancels: Mutex<HashMap<i64, Arc<AtomicBool>>>,
}

impl ConnShared {
    /// Writes one frame; `false` means the connection is gone (and every
    /// in-flight request on it has been cancelled).
    fn send(&self, doc: &Json) -> bool {
        if !self.open.load(Ordering::Acquire) {
            return false;
        }
        let mut writer = self.writer.lock().expect("connection writer poisoned");
        match write_frame(&mut *writer, doc) {
            Ok(()) => true,
            Err(_) => {
                drop(writer);
                self.close();
                false
            }
        }
    }

    /// Marks the connection dead, cancels everything in flight on it, and
    /// shuts the socket down (which also unblocks a reader parked in
    /// `read`).
    fn close(&self) {
        if self.open.swap(false, Ordering::AcqRel) {
            for token in self
                .cancels
                .lock()
                .expect("cancel registry poisoned")
                .values()
            {
                token.store(true, Ordering::Release);
            }
            let writer = self.writer.lock().expect("connection writer poisoned");
            let _ = writer.shutdown(Shutdown::Both);
        }
    }

    fn register_cancel(&self, id: i64) -> Arc<AtomicBool> {
        let token = Arc::new(AtomicBool::new(false));
        self.cancels
            .lock()
            .expect("cancel registry poisoned")
            .insert(id, Arc::clone(&token));
        token
    }

    fn forget_cancel(&self, id: i64) {
        self.cancels
            .lock()
            .expect("cancel registry poisoned")
            .remove(&id);
    }
}

// ---------------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------------

#[derive(Default)]
struct Counters {
    connections: AtomicU64,
    frames: AtomicU64,
    protocol_errors: AtomicU64,
    calls: AtomicU64,
    queries: AtomicU64,
    streams: AtomicU64,
    rejected_capacity: AtomicU64,
    rejected_quota: AtomicU64,
    rejected_connections: AtomicU64,
    cancelled: AtomicU64,
}

/// A point-in-time view of the server's counters, cache and tenants.
#[derive(Debug, Clone)]
pub struct Metrics {
    /// Connections accepted since start.
    pub connections: u64,
    /// Frames successfully read.
    pub frames: u64,
    /// Frames rejected as protocol violations.
    pub protocol_errors: u64,
    /// Forward calls executed.
    pub calls: u64,
    /// Collect queries executed.
    pub queries: u64,
    /// Streams started.
    pub streams: u64,
    /// Admissions rejected for a full queue.
    pub rejected_capacity: u64,
    /// Admissions rejected for an exhausted tenant pool.
    pub rejected_quota: u64,
    /// Connections refused at the `max_connections` cap.
    pub rejected_connections: u64,
    /// Streams that ended by cancellation (explicit or disconnect).
    pub cancelled: u64,
    /// Jobs currently queued (not yet picked up by a worker).
    pub queued: usize,
    /// Program-cache counters.
    pub cache: CacheStats,
    /// Per-tenant pool accounting.
    pub tenants: Vec<TenantSnapshot>,
}

// ---------------------------------------------------------------------------
// Server
// ---------------------------------------------------------------------------

struct Shared {
    config: ServeConfig,
    cache: ProgramCache,
    quotas: TenantQuotas,
    sched: Sched,
    shutdown: AtomicBool,
    counters: Counters,
    conns: Mutex<HashMap<u64, ConnEntry>>,
    next_conn: AtomicU64,
}

struct ConnEntry {
    shared: Arc<ConnShared>,
    reader: Option<JoinHandle<()>>,
}

/// A running `jmatch-serve` instance. Dropping (or [`Server::shutdown`])
/// stops accepting, closes every connection, and joins every thread the
/// server spawned — the no-leaked-threads guarantee `tests/serve.rs` pins.
pub struct Server {
    shared: Arc<Shared>,
    addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds, spawns the accept loop and the worker pool, and returns.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn start(config: ServeConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let quotas = TenantQuotas::new(config.quota);
        for (tenant, quota) in &config.tenant_overrides {
            quotas.set_tenant_config(tenant, *quota);
        }
        let shared = Arc::new(Shared {
            cache: ProgramCache::new(config.cache_capacity, config.engine),
            quotas,
            sched: Sched {
                state: Mutex::new(SchedState::default()),
                ready: Condvar::new(),
            },
            shutdown: AtomicBool::new(false),
            counters: Counters::default(),
            conns: Mutex::new(HashMap::new()),
            next_conn: AtomicU64::new(0),
            config,
        });
        let workers = (0..shared.config.workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("jmatch-serve-worker-{i}"))
                    .stack_size(SERVE_THREAD_STACK)
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn worker")
            })
            .collect();
        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("jmatch-serve-accept".into())
                .spawn(move || accept_loop(&listener, &shared))
                .expect("spawn accept loop")
        };
        Ok(Server {
            shared,
            addr,
            accept: Some(accept),
            workers,
        })
    }

    /// The bound address (resolve the ephemeral port here).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Point-in-time metrics.
    pub fn metrics(&self) -> Metrics {
        let c = &self.shared.counters;
        Metrics {
            connections: c.connections.load(Ordering::Relaxed),
            frames: c.frames.load(Ordering::Relaxed),
            protocol_errors: c.protocol_errors.load(Ordering::Relaxed),
            calls: c.calls.load(Ordering::Relaxed),
            queries: c.queries.load(Ordering::Relaxed),
            streams: c.streams.load(Ordering::Relaxed),
            rejected_capacity: c.rejected_capacity.load(Ordering::Relaxed),
            rejected_quota: c.rejected_quota.load(Ordering::Relaxed),
            rejected_connections: c.rejected_connections.load(Ordering::Relaxed),
            cancelled: c.cancelled.load(Ordering::Relaxed),
            queued: self
                .shared
                .sched
                .state
                .lock()
                .expect("scheduler poisoned")
                .queued,
            cache: self.shared.cache.stats(),
            tenants: self.shared.quotas.snapshot(),
        }
    }

    /// The tenant quota registry (pin per-tenant profiles at runtime).
    pub fn quotas(&self) -> &TenantQuotas {
        &self.shared.quotas
    }

    /// Whether a `shutdown` frame (or a prior [`Server::shutdown`]) has
    /// stopped the server.
    pub fn is_shut_down(&self) -> bool {
        self.shared.shutdown.load(Ordering::Acquire)
    }

    /// Blocks until something requests shutdown (a `shutdown` frame with
    /// remote shutdown enabled, or another thread calling
    /// [`Server::shutdown`] via a clone — the bin's main-thread wait).
    pub fn wait_for_shutdown(&self) {
        while !self.is_shut_down() {
            std::thread::sleep(Duration::from_millis(50));
        }
    }

    /// Stops accepting, closes every connection, joins every thread.
    /// Queued-but-unstarted jobs refund their tenant step grants.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.sched.ready.notify_all();
        // Closing the sockets unblocks readers parked in `read`.
        let entries: Vec<ConnEntry> = {
            let mut conns = self.shared.conns.lock().expect("connection table poisoned");
            conns.drain().map(|(_, e)| e).collect()
        };
        for entry in &entries {
            entry.shared.close();
        }
        for mut entry in entries {
            if let Some(handle) = entry.reader.take() {
                let _ = handle.join();
            }
        }
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        // Drop whatever never ran; each Job's Grant refunds on drop.
        self.shared
            .sched
            .state
            .lock()
            .expect("scheduler poisoned")
            .queues
            .clear();
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
    }
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server").field("addr", &self.addr).finish()
    }
}

// ---------------------------------------------------------------------------
// Accept loop and connection readers
// ---------------------------------------------------------------------------

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    while !shared.shutdown.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((mut stream, _peer)) => {
                if stream.set_nonblocking(false).is_err() {
                    continue;
                }
                // Responses are single small frames; waiting for ACKs
                // (Nagle) would serialize the whole protocol at ~40ms RTT.
                let _ = stream.set_nodelay(true);
                // Every connection holds an 8 MiB-stack reader thread, so
                // the count must be bounded: at the cap, answer with a
                // structured rejection and close instead of spawning.
                let live = shared
                    .conns
                    .lock()
                    .expect("connection table poisoned")
                    .len();
                if live >= shared.config.max_connections {
                    shared
                        .counters
                        .rejected_connections
                        .fetch_add(1, Ordering::Relaxed);
                    let frame = ErrorFrame::new(
                        error_kind::OVER_CAPACITY,
                        format!(
                            "server is at its {}-connection limit; retry shortly",
                            shared.config.max_connections
                        ),
                    )
                    .retry_after(CAPACITY_RETRY_MS)
                    .into_frame(None);
                    let _ = write_frame(&mut stream, &frame);
                    let _ = stream.shutdown(Shutdown::Both);
                    continue;
                }
                let Ok(write_half) = stream.try_clone() else {
                    continue;
                };
                shared.counters.connections.fetch_add(1, Ordering::Relaxed);
                let conn_id = shared.next_conn.fetch_add(1, Ordering::Relaxed);
                let conn = Arc::new(ConnShared {
                    writer: Mutex::new(write_half),
                    open: AtomicBool::new(true),
                    cancels: Mutex::new(HashMap::new()),
                });
                let reader = {
                    let shared = Arc::clone(shared);
                    let conn = Arc::clone(&conn);
                    std::thread::Builder::new()
                        .name(format!("jmatch-serve-conn-{conn_id}"))
                        .stack_size(SERVE_THREAD_STACK)
                        .spawn(move || {
                            reader_loop(stream, &conn, &shared);
                            conn.close();
                            // Detach ourselves from the table (drop of our
                            // own JoinHandle just detaches).
                            shared
                                .conns
                                .lock()
                                .expect("connection table poisoned")
                                .remove(&conn_id);
                        })
                };
                let Ok(reader) = reader else {
                    conn.close();
                    continue;
                };
                let mut conns = shared.conns.lock().expect("connection table poisoned");
                if conn.open.load(Ordering::Acquire) {
                    conns.insert(
                        conn_id,
                        ConnEntry {
                            shared: conn,
                            reader: Some(reader),
                        },
                    );
                } else {
                    // The reader already finished and removed itself; join
                    // it here so nothing dangles.
                    drop(conns);
                    let _ = reader.join();
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
}

fn reader_loop(mut stream: TcpStream, conn: &Arc<ConnShared>, shared: &Arc<Shared>) {
    loop {
        if shared.shutdown.load(Ordering::Acquire) || !conn.open.load(Ordering::Acquire) {
            return;
        }
        match read_frame(&mut stream, shared.config.max_frame) {
            Ok(doc) => {
                shared.counters.frames.fetch_add(1, Ordering::Relaxed);
                handle_frame(&doc, conn, shared);
            }
            Err(FrameError::Eof) => return,
            Err(FrameError::Truncated(_)) => return,
            Err(FrameError::TooLarge { declared }) => {
                shared
                    .counters
                    .protocol_errors
                    .fetch_add(1, Ordering::Relaxed);
                let frame = ErrorFrame::new(
                    error_kind::FRAME_TOO_LARGE,
                    format!(
                        "declared frame length {declared} exceeds the {}-byte cap",
                        shared.config.max_frame
                    ),
                )
                .with("max_frame", Json::Int(shared.config.max_frame as i64))
                .into_frame(None);
                conn.send(&frame);
                // Keep the connection when the payload is drainable;
                // beyond the skip cap the framing is hostile.
                if declared <= proto::skip_cap(shared.config.max_frame) {
                    if drain(&mut stream, declared).is_err() {
                        return;
                    }
                } else {
                    return;
                }
            }
            Err(FrameError::Malformed(message)) => {
                shared
                    .counters
                    .protocol_errors
                    .fetch_add(1, Ordering::Relaxed);
                let frame = ErrorFrame::new(error_kind::PROTOCOL, message).into_frame(None);
                if !conn.send(&frame) {
                    return;
                }
            }
        }
    }
}

fn handle_frame(doc: &Json, conn: &Arc<ConnShared>, shared: &Arc<Shared>) {
    let request = match Request::parse(doc) {
        Ok(request) => request,
        Err((id, message)) => {
            shared
                .counters
                .protocol_errors
                .fetch_add(1, Ordering::Relaxed);
            conn.send(&ErrorFrame::new(error_kind::PROTOCOL, message).into_frame(id));
            return;
        }
    };
    match request {
        Request::Ping { id } => {
            conn.send(&proto::resp_pong(id));
        }
        Request::Shutdown { id } => {
            if shared.config.allow_remote_shutdown {
                conn.send(&proto::resp_ack(id));
                shared.shutdown.store(true, Ordering::Release);
                shared.sched.ready.notify_all();
            } else {
                conn.send(
                    &ErrorFrame::new(
                        error_kind::PROTOCOL,
                        "remote shutdown is not enabled on this server",
                    )
                    .into_frame(Some(id)),
                );
            }
        }
        Request::Compile {
            id,
            tenant,
            source,
            verify,
        } => {
            // When the tenant profile prices compiles, reserve the price
            // up front like any other request (compiles run inline on
            // reader threads, bypassing the admission queue).
            let grant = match shared.quotas.admit_compile(&tenant) {
                Ok(grant) => grant,
                Err(denied) => {
                    shared
                        .counters
                        .rejected_quota
                        .fetch_add(1, Ordering::Relaxed);
                    conn.send(
                        &ErrorFrame::new(
                            error_kind::QUOTA_EXHAUSTED,
                            format!(
                                "tenant `{tenant}` has exhausted its step pool for this window"
                            ),
                        )
                        .retry_after(denied.retry_after_ms)
                        .into_frame(Some(id)),
                    );
                    return;
                }
            };
            match shared.cache.get_or_compile(&source, verify) {
                CacheOutcome::Ready {
                    program,
                    key,
                    cached,
                } => {
                    if let Some(grant) = grant {
                        // A cache hit did no compile work: refund.
                        let used = if cached { 0 } else { grant.granted() };
                        grant.settle(used);
                    }
                    let warnings: Vec<String> =
                        program.warnings().iter().map(|w| w.to_string()).collect();
                    conn.send(&proto::resp_compiled(id, &key, cached, &warnings));
                }
                CacheOutcome::Failed(errors) => {
                    if let Some(grant) = grant {
                        // Failed compiles did the work; charge them.
                        let used = grant.granted();
                        grant.settle(used);
                    }
                    conn.send(&proto::resp_compile_failed(id, &errors));
                }
            }
        }
        Request::Lint {
            id,
            tenant,
            source,
            verify,
        } => {
            // Linting is compile-shaped work: same inline path, same
            // compile pricing, same cache (a prior `compile` of the same
            // source is a free hit).
            let grant = match shared.quotas.admit_compile(&tenant) {
                Ok(grant) => grant,
                Err(denied) => {
                    shared
                        .counters
                        .rejected_quota
                        .fetch_add(1, Ordering::Relaxed);
                    conn.send(
                        &ErrorFrame::new(
                            error_kind::QUOTA_EXHAUSTED,
                            format!(
                                "tenant `{tenant}` has exhausted its step pool for this window"
                            ),
                        )
                        .retry_after(denied.retry_after_ms)
                        .into_frame(Some(id)),
                    );
                    return;
                }
            };
            match shared.cache.get_or_compile(&source, verify) {
                CacheOutcome::Ready {
                    program,
                    key,
                    cached,
                } => {
                    if let Some(grant) = grant {
                        let used = if cached { 0 } else { grant.granted() };
                        grant.settle(used);
                    }
                    conn.send(&proto::resp_lints(id, &key, cached, program.lints()));
                }
                CacheOutcome::Failed(errors) => {
                    if let Some(grant) = grant {
                        let used = grant.granted();
                        grant.settle(used);
                    }
                    conn.send(&proto::resp_compile_failed(id, &errors));
                }
            }
        }
        Request::Cancel { id, target } => {
            if let Some(token) = conn
                .cancels
                .lock()
                .expect("cancel registry poisoned")
                .get(&target)
            {
                token.store(true, Ordering::Release);
            }
            conn.send(&proto::resp_ack(id));
        }
        Request::Call {
            id,
            tenant,
            program,
            method,
            args,
            limits,
        } => admit(
            shared,
            conn,
            id,
            tenant,
            &program,
            limits,
            JobKind::Call { method, args },
        ),
        Request::Query { id, tenant, spec } => {
            let program = spec.program.clone();
            let limits = spec.limits;
            admit(
                shared,
                conn,
                id,
                tenant,
                &program,
                limits,
                JobKind::Query { spec },
            )
        }
        Request::Stream {
            id,
            tenant,
            spec,
            batch,
        } => {
            let program = spec.program.clone();
            let limits = spec.limits;
            admit(
                shared,
                conn,
                id,
                tenant,
                &program,
                limits,
                JobKind::Stream { spec, batch },
            )
        }
    }
}

/// The admission path every unit of query work goes through: resolve the
/// cached program, clamp limits to the tenant profile, reserve the step
/// grant, and enqueue under the tenant's queue bound.
fn admit(
    shared: &Arc<Shared>,
    conn: &Arc<ConnShared>,
    id: i64,
    tenant: String,
    program_key: &str,
    limits: LimitsSpec,
    kind: JobKind,
) {
    let Some(program) = shared.cache.lookup(program_key) else {
        conn.send(
            &ErrorFrame::new(
                error_kind::UNKNOWN_PROGRAM,
                format!("program `{program_key}` is not resident; re-compile and retry"),
            )
            .with("program", Json::Str(program_key.to_owned()))
            .into_frame(Some(id)),
        );
        return;
    };
    let effective = limits.clamp(shared.quotas.limits_of(&tenant));
    let grant = match shared.quotas.admit(&tenant, effective.max_steps) {
        Ok(grant) => grant,
        Err(denied) => {
            shared
                .counters
                .rejected_quota
                .fetch_add(1, Ordering::Relaxed);
            conn.send(
                &ErrorFrame::new(
                    error_kind::QUOTA_EXHAUSTED,
                    format!("tenant `{tenant}` has exhausted its step pool for this window"),
                )
                .retry_after(denied.retry_after_ms)
                .into_frame(Some(id)),
            );
            return;
        }
    };
    let job = Job {
        id,
        tenant,
        conn: Arc::clone(conn),
        program,
        limits: Limits {
            max_depth: effective.max_depth,
            // The grant may be smaller than asked when the pool is nearly
            // dry; the enumeration then trips `limit-exceeded` honestly.
            max_steps: grant.granted(),
        },
        grant,
        cancel: conn.register_cancel(id),
        kind,
    };
    let mut state = shared.sched.state.lock().expect("scheduler poisoned");
    match state.push(job, shared.config.queue_depth) {
        None => {
            drop(state);
            shared.sched.ready.notify_one();
        }
        Some(job) => {
            drop(state);
            shared
                .counters
                .rejected_capacity
                .fetch_add(1, Ordering::Relaxed);
            job.conn.forget_cancel(job.id);
            let frame = ErrorFrame::new(
                error_kind::OVER_CAPACITY,
                format!(
                    "tenant `{}` has {} requests queued; retry shortly",
                    job.tenant, shared.config.queue_depth
                ),
            )
            .retry_after(CAPACITY_RETRY_MS)
            .into_frame(Some(job.id));
            job.conn.send(&frame);
            // Dropping the job refunds its grant.
        }
    }
}

// ---------------------------------------------------------------------------
// Workers
// ---------------------------------------------------------------------------

fn worker_loop(shared: &Arc<Shared>) {
    loop {
        let job = {
            let mut state = shared.sched.state.lock().expect("scheduler poisoned");
            loop {
                if shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
                if let Some(job) = state.pop() {
                    break job;
                }
                state = shared.sched.ready.wait(state).expect("scheduler poisoned");
            }
        };
        match job.kind {
            JobKind::Call { .. } => run_call(shared, job),
            JobKind::Stream { .. } => run_stream(shared, job),
            JobKind::Query { .. } => {
                // Coalesce whatever collect queries are ready *right now*
                // into one batch on the shared pool (no waiting: batching
                // must never add latency to a lone query).
                let mut batch = vec![job];
                if shared.config.batch_max > 1 {
                    let mut state = shared.sched.state.lock().expect("scheduler poisoned");
                    while batch.len() < shared.config.batch_max {
                        match state.pop_query() {
                            Some(next) => batch.push(next),
                            None => break,
                        }
                    }
                }
                run_query_batch(shared, batch);
            }
        }
    }
}

/// Resolves the method a spec names, plus the receiver it runs on (a bare
/// instance for class methods — the serve surface's documented receiver
/// model).
fn resolve_target(program: &Program, spec: &QuerySpec) -> RtResult<(MethodRef, Option<Value>)> {
    match &spec.class {
        Some(class) => Ok((
            program.method(class, &spec.method)?,
            Some(program.instance(class)?),
        )),
        None => Ok((program.free_method(&spec.method)?, None)),
    }
}

fn known_bindings(spec: &QuerySpec) -> Bindings {
    spec.known.iter().cloned().collect()
}

fn run_call(shared: &Arc<Shared>, job: Job) {
    let Job {
        id,
        conn,
        program,
        limits,
        grant,
        cancel,
        kind,
        ..
    } = job;
    let JobKind::Call { method, args } = kind else {
        unreachable!("run_call on a non-call job");
    };
    conn.forget_cancel(id);
    if cancel.load(Ordering::Acquire) {
        drop(grant);
        return;
    }
    shared.counters.calls.fetch_add(1, Ordering::Relaxed);
    match program.free_method(&method) {
        Err(e) => {
            drop(grant);
            conn.send(&ErrorFrame::from_rt(&e).into_frame(Some(id)));
        }
        Ok(mref) => {
            let (outcome, steps) = mref.call_counted(None, args, limits);
            // steps=None (tree engine) settles the whole grant, matching
            // the query/stream paths: unmeterable work is charged at its
            // ceiling, never given away free.
            grant.settle(steps.unwrap_or(limits.max_steps));
            match outcome {
                Ok(value) => conn.send(&proto::resp_value(id, &value)),
                Err(e) => conn.send(&ErrorFrame::from_rt(&e).into_frame(Some(id))),
            };
        }
    }
}

/// Runs a coalesced batch of collect queries as one
/// [`Program::query_many_counted`] call over the configured inner pool.
fn run_query_batch(shared: &Arc<Shared>, batch: Vec<Job>) {
    shared
        .counters
        .queries
        .fetch_add(batch.len() as u64, Ordering::Relaxed);
    // Build every query target first; jobs whose resolution fails answer
    // immediately and drop out of the batch.
    struct Ready {
        id: i64,
        conn: Arc<ConnShared>,
        grant: Grant,
        program: Arc<Program>,
        mref: MethodRef,
        receiver: Option<Value>,
        known: Bindings,
        limits: Limits,
    }
    let mut ready: Vec<Ready> = Vec::with_capacity(batch.len());
    for job in batch {
        let Job {
            id,
            conn,
            program,
            limits,
            grant,
            cancel,
            kind,
            ..
        } = job;
        let JobKind::Query { spec } = kind else {
            unreachable!("non-query job in a query batch");
        };
        conn.forget_cancel(id);
        if cancel.load(Ordering::Acquire) {
            drop(grant);
            continue;
        }
        match resolve_target(&program, &spec) {
            Err(e) => {
                drop(grant);
                conn.send(&ErrorFrame::from_rt(&e).into_frame(Some(id)));
            }
            Ok((mref, receiver)) => ready.push(Ready {
                id,
                conn,
                grant,
                program,
                mref,
                receiver,
                known: known_bindings(&spec),
                limits,
            }),
        }
    }
    if ready.is_empty() {
        return;
    }
    // One result slot per ready job, filled either by a build failure or
    // by the batch run.
    let mut results: Vec<Option<QueryOutcome>> = (0..ready.len()).map(|_| None).collect();
    {
        let mut queries: Vec<Query<'_>> = Vec::with_capacity(ready.len());
        let mut slots: Vec<usize> = Vec::with_capacity(ready.len());
        for (i, r) in ready.iter().enumerate() {
            match r.mref.iterate(r.receiver.as_ref(), &r.known) {
                Ok(q) => {
                    queries.push(q.limits(r.limits));
                    slots.push(i);
                }
                // A build failure (e.g. mode mismatch) did no solver work.
                Err(e) => results[i] = Some((Err(e), Some(0))),
            }
        }
        // One scoped pool for the whole coalesced batch — each query
        // carries its own program reference, so N tenants' queries over
        // different programs ride the same workers.
        let host = Arc::clone(&ready[0].program);
        let outcomes = host.query_many_counted(&queries, shared.config.inner_threads);
        for (i, outcome) in slots.into_iter().zip(outcomes) {
            results[i] = Some(outcome);
        }
    }
    for (r, result) in ready.into_iter().zip(results) {
        let (outcome, steps) = result.expect("every ready slot is filled");
        // steps=None (tree engine) settles the whole grant: unmeterable
        // work is charged at its ceiling, never given away free.
        r.grant.settle(steps.unwrap_or(r.limits.max_steps));
        match outcome {
            Ok(solutions) => {
                r.conn.send(&proto::resp_solutions(r.id, &solutions, steps));
            }
            Err(e) => {
                r.conn.send(&ErrorFrame::from_rt(&e).into_frame(Some(r.id)));
            }
        }
    }
}

fn run_stream(shared: &Arc<Shared>, job: Job) {
    let Job {
        id,
        conn,
        program,
        limits,
        grant,
        cancel,
        kind,
        ..
    } = job;
    let JobKind::Stream { spec, batch } = kind else {
        unreachable!("run_stream on a non-stream job");
    };
    shared.counters.streams.fetch_add(1, Ordering::Relaxed);
    if cancel.load(Ordering::Acquire) {
        conn.forget_cancel(id);
        drop(grant);
        return;
    }
    let (mref, receiver) = match resolve_target(&program, &spec) {
        Ok(pair) => pair,
        Err(e) => {
            conn.forget_cancel(id);
            drop(grant);
            conn.send(&ErrorFrame::from_rt(&e).into_frame(Some(id)));
            return;
        }
    };
    let known = known_bindings(&spec);
    let query = match mref.iterate(receiver.as_ref(), &known) {
        Ok(q) => q.limits(limits),
        Err(e) => {
            conn.forget_cancel(id);
            drop(grant);
            conn.send(&ErrorFrame::from_rt(&e).into_frame(Some(id)));
            return;
        }
    };
    let mut solutions = query.solutions();
    let mut count: u64 = 0;
    let mut seq: u64 = 0;
    let mut cancelled = false;
    let mut pending: Vec<Bindings> = Vec::with_capacity(batch);
    loop {
        if cancel.load(Ordering::Acquire) || !conn.open.load(Ordering::Acquire) {
            cancelled = true;
            break;
        }
        match solutions.next() {
            Some(b) => {
                pending.push(b);
                count += 1;
                if pending.len() >= batch {
                    if !conn.send(&proto::resp_batch(id, seq, &pending)) {
                        cancelled = true;
                        break;
                    }
                    seq += 1;
                    pending.clear();
                }
            }
            None => break,
        }
    }
    let steps = solutions.steps();
    let error = solutions.take_error();
    drop(solutions);
    // Whatever the stream actually consumed is charged; the rest of the
    // reservation goes back to the tenant pool — including on disconnect,
    // which is the "return the unused SharedBudget grant" guarantee.
    grant.settle(steps.unwrap_or(limits.max_steps));
    conn.forget_cancel(id);
    if cancelled {
        shared.counters.cancelled.fetch_add(1, Ordering::Relaxed);
        conn.send(&proto::resp_stream_done(id, count, true, steps));
        return;
    }
    if !pending.is_empty() && !conn.send(&proto::resp_batch(id, seq, &pending)) {
        shared.counters.cancelled.fetch_add(1, Ordering::Relaxed);
        return;
    }
    match error {
        Some(e) => {
            conn.send(&ErrorFrame::from_rt(&e).into_frame(Some(id)));
        }
        None => {
            conn.send(&proto::resp_stream_done(id, count, false, steps));
        }
    }
}
