//! The multi-tenant query server.
//!
//! ```text
//!                    ┌───────────────────────────── Server ──────────────────────────────┐
//! TCP clients ──────▶ accept loop ──▶ per-connection reader threads                       │
//!                   │                   │ ping/compile: answered inline (single-flight    │
//!                   │                   │               ProgramCache)                     │
//!                   │                   │ call/query/stream: admission                    │
//!                   │                   ▼                                                 │
//!                   │            TenantQuotas (reserve step grant)                        │
//!                   │                   ▼                                                 │
//!                   │            Scheduler: bounded per-tenant FIFOs,                     │
//!                   │            round-robin draining ──▶ worker threads                  │
//!                   │                                      │ coalesce ready queries      │
//!                   │                                      ▼                             │
//!                   │                         Program::query_many_counted                │
//!                   └───────────────────────────────────────────────────────────────────┘
//! ```
//!
//! The shape is compile-once/serve-forever: compilation (parse + resolve +
//! verify + lower) happens exactly once per distinct source in the
//! [`ProgramCache`], and every query runs over the shared, immutable
//! [`Arc<Program>`]. Admission is **bounded** end to end — connections
//! beyond `max_connections` are refused with `over-capacity` (each one
//! holds a reader thread), a full tenant queue rejects with
//! `over-capacity` + `retry_after_ms` instead of queueing unboundedly,
//! and an exhausted tenant step pool rejects with `quota-exhausted` — so
//! neither a hot tenant nor a flood of connections can grow server
//! memory or starve other tenants (the scheduler drains tenant queues
//! round-robin, one job per turn).
//!
//! The server is fault-tolerant by construction:
//!
//! * **Panic isolation** — each job dispatch runs under `catch_unwind`, so
//!   a panicking request becomes an `internal-error` frame (the quota
//!   grant refunds through the unwind) instead of a dead worker; a
//!   supervisor thread respawns any worker that dies anyway (e.g. an
//!   injected between-jobs panic).
//! * **Deadlines** — requests may carry `deadline_ms`; a watchdog thread
//!   fires the request's cancel token past its deadline and the engines'
//!   256-step fuel polling surfaces it as a retryable `deadline-exceeded`
//!   frame.
//! * **Backpressure** — responses go through a bounded per-connection send
//!   queue drained by a dedicated writer thread; a queue that stays full
//!   past the high-water timeout marks the client a slow consumer and the
//!   connection is dropped, so a worker never blocks on a client socket.

use super::cache::{CacheOutcome, CacheStats, ProgramCache, ReloadOutcome};
use super::fault::{FaultConfig, FaultInjector, Site};
use super::json::Json;
use super::proto::{
    self, drain, error_kind, read_frame, write_frame, ErrorFrame, FrameError, LimitsSpec,
    QuerySpec, Request,
};
use super::quota::{Grant, QuotaConfig, TenantQuotas, TenantSnapshot};
use crate::{Bindings, Engine, Limits, MethodRef, Program, Query, RtErrorKind, RtResult, Value};
use std::collections::{HashMap, VecDeque};
use std::io::{self, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, Weak};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How long a client should wait before retrying after an `over-capacity`
/// rejection — long enough for a queue slot to drain, short enough that
/// the retry loop converges quickly.
const CAPACITY_RETRY_MS: u64 = 25;

/// Locks a mutex, recovering the data on poison: a request panic is an
/// isolated event (caught, answered with `internal-error`), so a lock it
/// happened to hold must not take the rest of the server down with it.
/// Every structure guarded this way is valid after any partial update
/// (counters, queues of owned jobs, token maps).
fn lock_ok<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// A collected enumeration plus the steps it spent (when countable) —
/// the per-query shape `Program::query_many_counted` returns.
type QueryOutcome = (RtResult<Vec<Bindings>>, Option<u64>);

/// Stack size for reader and worker threads. Compilation runs inline on
/// reader threads and query lowering on workers; both recurse over ASTs
/// whose depth is client-controlled (e.g. a wide `||` chain), so these
/// threads get a main-thread-sized stack instead of the spawn default.
const SERVE_THREAD_STACK: usize = 8 << 20;

/// Everything the server's behavior is parameterized on.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Listen address (`127.0.0.1:0` = ephemeral loopback port).
    pub addr: String,
    /// Query worker threads draining the admission queue. `0` is a
    /// test-only mode: jobs are admitted and queued but never drained.
    pub workers: usize,
    /// Threads each coalesced [`Program::query_many`] batch fans out to.
    pub inner_threads: usize,
    /// Most queries one worker coalesces into a single batch.
    pub batch_max: usize,
    /// Bound on each tenant's admission queue; the (workers × batch)
    /// in-flight work rides on top of this.
    pub queue_depth: usize,
    /// Most concurrent connections the server accepts. Each connection
    /// holds a reader thread, so an uncapped flood would exhaust
    /// threads/memory despite the bounded admission queues; beyond the
    /// cap, new connections get an `over-capacity` error frame and are
    /// closed immediately.
    pub max_connections: usize,
    /// Most compiled programs the cache keeps (LRU beyond that).
    pub cache_capacity: usize,
    /// Cap on a single frame's payload bytes.
    pub max_frame: usize,
    /// The engine cached programs run on.
    pub engine: Engine,
    /// The quota profile handed to tenants without an override.
    pub quota: QuotaConfig,
    /// Per-tenant quota overrides, applied at startup.
    pub tenant_overrides: Vec<(String, QuotaConfig)>,
    /// Whether a `shutdown` frame may stop the server (CI harnesses; keep
    /// off for real deployments).
    pub allow_remote_shutdown: bool,
    /// Bound on each connection's response send queue (frames). Workers
    /// enqueue; a dedicated writer thread drains.
    pub send_queue_depth: usize,
    /// High-water timeout: how long a sender waits on a full send queue
    /// before declaring the client a slow consumer and dropping the
    /// connection. Also bounds each socket write (the writer thread's
    /// write timeout).
    pub send_queue_wait_ms: u64,
    /// Deterministic fault injection (chaos testing); `None` in
    /// production.
    pub faults: Option<FaultConfig>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: 4,
            inner_threads: 2,
            batch_max: 16,
            queue_depth: 64,
            max_connections: 256,
            cache_capacity: 64,
            max_frame: proto::DEFAULT_MAX_FRAME,
            engine: Engine::Plan,
            quota: QuotaConfig::default(),
            tenant_overrides: Vec::new(),
            allow_remote_shutdown: false,
            send_queue_depth: 64,
            send_queue_wait_ms: 2_000,
            faults: None,
        }
    }
}

// ---------------------------------------------------------------------------
// Jobs and the scheduler
// ---------------------------------------------------------------------------

enum JobKind {
    Call { method: String, args: Vec<Value> },
    Query { spec: QuerySpec },
    Stream { spec: QuerySpec, batch: usize },
}

struct Job {
    id: i64,
    tenant: String,
    conn: Arc<ConnShared>,
    program: Arc<Program>,
    limits: Limits,
    grant: Grant,
    cancel: Arc<AtomicBool>,
    /// Absolute wall-clock deadline (from the request's `deadline_ms`);
    /// the watchdog fires `cancel` past it.
    deadline: Option<Instant>,
    kind: JobKind,
}

#[derive(Default)]
struct SchedState {
    queues: HashMap<String, VecDeque<Job>>,
    /// Round-robin order over tenants with live queues.
    order: Vec<String>,
    cursor: usize,
    queued: usize,
}

impl SchedState {
    /// Enqueues under the tenant's bound; a full queue hands the job back.
    fn push(&mut self, job: Job, depth: usize) -> Option<Job> {
        let queue = self.queues.entry(job.tenant.clone()).or_default();
        if queue.len() >= depth {
            return Some(job);
        }
        if queue.is_empty() && !self.order.contains(&job.tenant) {
            self.order.push(job.tenant.clone());
        }
        queue.push_back(job);
        self.queued += 1;
        None
    }

    /// Pops the next job **round-robin across tenants**: each turn serves
    /// the next tenant in rotation that has queued work, so a tenant
    /// keeping its queue full cannot starve the others.
    fn pop(&mut self) -> Option<Job> {
        if self.order.is_empty() {
            return None;
        }
        for _ in 0..self.order.len() {
            if self.cursor >= self.order.len() {
                self.cursor = 0;
            }
            let tenant = self.order[self.cursor].clone();
            if let Some(queue) = self.queues.get_mut(&tenant) {
                if let Some(job) = queue.pop_front() {
                    self.queued -= 1;
                    if queue.is_empty() {
                        self.queues.remove(&tenant);
                        self.order.remove(self.cursor);
                        // cursor now points at the next tenant already.
                    } else {
                        self.cursor += 1;
                    }
                    return Some(job);
                }
            }
            self.order.remove(self.cursor);
        }
        None
    }

    /// Pops another *collect-type query* job for batching, continuing the
    /// same round-robin rotation (fairness extends into the batch).
    fn pop_query(&mut self) -> Option<Job> {
        let before = self.queued;
        if before == 0 {
            return None;
        }
        // Only take a job when the head of some tenant's rotation turn is
        // a collect query; peeking without popping keeps this simple:
        // scan tenants in rotation order for a query at the front.
        for _ in 0..self.order.len() {
            if self.cursor >= self.order.len() {
                self.cursor = 0;
            }
            let tenant = self.order[self.cursor].clone();
            let is_query = self
                .queues
                .get(&tenant)
                .and_then(|q| q.front())
                .is_some_and(|j| matches!(j.kind, JobKind::Query { .. }));
            if is_query {
                return self.pop();
            }
            self.cursor += 1;
        }
        None
    }
}

struct Sched {
    state: Mutex<SchedState>,
    ready: Condvar,
}

// ---------------------------------------------------------------------------
// Connections
// ---------------------------------------------------------------------------

/// The bounded response queue between producers (workers, the reader's
/// inline replies) and the connection's dedicated writer thread.
struct SendQueue {
    /// Pre-framed (length-prefixed) response bytes, oldest first.
    frames: VecDeque<Vec<u8>>,
    /// The reader finished: flush what is queued, then close. New sends
    /// are refused.
    draining: bool,
    /// Hard close: the writer discards everything and exits now.
    dead: bool,
}

/// The half of a connection shared between its reader thread, the workers
/// producing responses, and its writer thread: the bounded send queue,
/// the open flag, and the in-flight cancel tokens.
///
/// Workers never write to the socket. They serialize the frame and
/// enqueue it; the writer thread does the blocking I/O. A full queue
/// makes the producer wait at most `high_water`; past that the client is
/// a slow consumer and the connection is dropped — the worker moves on
/// either way.
struct ConnShared {
    /// The socket (write half). The writer thread writes through it
    /// (`&TcpStream` is `Write`); everyone else only uses it to
    /// `shutdown`, which is what unblocks a reader parked in `read`.
    sock: TcpStream,
    sendq: Mutex<SendQueue>,
    /// Writer waits here for frames (or a drain/close verdict).
    frames_ready: Condvar,
    /// Producers wait here for queue space.
    space_ready: Condvar,
    open: AtomicBool,
    cancels: Mutex<HashMap<i64, Arc<AtomicBool>>>,
    /// Queue bound, in frames.
    depth: usize,
    /// How long a producer waits on a full queue before the slow-consumer
    /// verdict.
    high_water: Duration,
    /// Server counters (slow-consumer disconnects are detected here,
    /// inside `send`).
    counters: Arc<Counters>,
}

impl ConnShared {
    fn new(sock: TcpStream, config: &ServeConfig, counters: Arc<Counters>) -> Self {
        ConnShared {
            sock,
            sendq: Mutex::new(SendQueue {
                frames: VecDeque::new(),
                draining: false,
                dead: false,
            }),
            frames_ready: Condvar::new(),
            space_ready: Condvar::new(),
            open: AtomicBool::new(true),
            cancels: Mutex::new(HashMap::new()),
            depth: config.send_queue_depth.max(1),
            high_water: Duration::from_millis(config.send_queue_wait_ms.max(1)),
            counters,
        }
    }

    /// Serializes and enqueues one frame; `false` means the connection is
    /// gone (closed, draining, or just now convicted as a slow consumer —
    /// in every case the in-flight requests on it are cancelled).
    fn send(&self, doc: &Json) -> bool {
        if !self.open.load(Ordering::Acquire) {
            return false;
        }
        let Ok(bytes) = proto::frame_bytes(doc) else {
            // A >4 GiB response frame; nothing sane to do but drop the
            // connection.
            self.close();
            return false;
        };
        let give_up_at = Instant::now() + self.high_water;
        let mut q = lock_ok(&self.sendq);
        while q.frames.len() >= self.depth {
            if q.dead || q.draining {
                return false;
            }
            let now = Instant::now();
            if now >= give_up_at {
                // Slow consumer: the queue stayed full for the whole
                // high-water window. Drop the connection rather than
                // stall this worker (or buffer without bound).
                drop(q);
                self.counters
                    .slow_consumer_disconnects
                    .fetch_add(1, Ordering::Relaxed);
                self.close();
                return false;
            }
            let (guard, _timeout) =
                self.sendq
                    .wait_timeout_on(&self.space_ready, q, give_up_at - now);
            q = guard;
        }
        if q.dead || q.draining {
            return false;
        }
        q.frames.push_back(bytes);
        drop(q);
        self.frames_ready.notify_one();
        true
    }

    /// Marks the connection dead, cancels everything in flight on it,
    /// tells the writer to discard and exit, and shuts the socket down
    /// (which also unblocks a reader parked in `read` and a writer parked
    /// in `write`).
    fn close(&self) {
        if self.open.swap(false, Ordering::AcqRel) {
            self.fire_cancels();
        }
        // Past the first close the verdict only hardens (a graceful drain
        // can be upgraded to a hard close, never the reverse), so this
        // part runs unconditionally.
        {
            let mut q = lock_ok(&self.sendq);
            q.dead = true;
            q.draining = true;
        }
        self.frames_ready.notify_all();
        self.space_ready.notify_all();
        let _ = self.sock.shutdown(Shutdown::Both);
    }

    /// The graceful end of a connection (reader saw EOF / a hostile
    /// frame): refuse new work, cancel what is in flight, but let the
    /// writer *flush* the queued frames — a protocol-error reply must
    /// still reach the client — before it closes the socket.
    fn finish(&self) {
        if self.open.swap(false, Ordering::AcqRel) {
            self.fire_cancels();
        }
        lock_ok(&self.sendq).draining = true;
        self.frames_ready.notify_all();
        self.space_ready.notify_all();
    }

    fn fire_cancels(&self) {
        for token in lock_ok(&self.cancels).values() {
            token.store(true, Ordering::Release);
        }
    }

    fn register_cancel(&self, id: i64) -> Arc<AtomicBool> {
        let token = Arc::new(AtomicBool::new(false));
        lock_ok(&self.cancels).insert(id, Arc::clone(&token));
        token
    }

    fn forget_cancel(&self, id: i64) {
        lock_ok(&self.cancels).remove(&id);
    }
}

/// `Condvar::wait_timeout` with the lock/condvar pairing inverted so the
/// call site reads naturally; also poison-tolerant like [`lock_ok`].
trait WaitTimeoutOn<T> {
    fn wait_timeout_on<'a>(
        &'a self,
        cv: &Condvar,
        guard: MutexGuard<'a, T>,
        dur: Duration,
    ) -> (MutexGuard<'a, T>, bool);
}

impl<T> WaitTimeoutOn<T> for Mutex<T> {
    fn wait_timeout_on<'a>(
        &'a self,
        cv: &Condvar,
        guard: MutexGuard<'a, T>,
        dur: Duration,
    ) -> (MutexGuard<'a, T>, bool) {
        match cv.wait_timeout(guard, dur) {
            Ok((g, t)) => (g, t.timed_out()),
            Err(poisoned) => {
                let (g, t) = poisoned.into_inner();
                (g, t.timed_out())
            }
        }
    }
}

/// The per-connection writer thread: drains the send queue to the socket
/// so producers never block on client I/O. Exits when the queue is hard
/// closed, when draining finishes, or when a write fails / times out
/// (a never-reading client counts as a slow consumer here too).
fn writer_loop(conn: &Arc<ConnShared>, shared: &Arc<Shared>) {
    // Bound every socket write: a client that stops reading eventually
    // zeroes its receive window and `write` would park forever.
    let _ = conn.sock.set_write_timeout(Some(conn.high_water));
    loop {
        let frame = {
            let mut q = lock_ok(&conn.sendq);
            loop {
                if q.dead {
                    return;
                }
                if let Some(frame) = q.frames.pop_front() {
                    conn.space_ready.notify_all();
                    break frame;
                }
                if q.draining {
                    // Flushed everything the reader's lifetime produced.
                    let _ = conn.sock.shutdown(Shutdown::Both);
                    return;
                }
                q = conn
                    .sendq
                    .wait_timeout_on(&conn.frames_ready, q, conn.high_water)
                    .0;
            }
        };
        if let Some(faults) = &shared.faults {
            if faults.fire(Site::SlowWrite) {
                std::thread::sleep(Duration::from_millis(faults.slow_write_ms()));
            }
            if faults.fire(Site::Truncate) {
                // Write only the length prefix, then kill the connection:
                // the client sees a truncated frame.
                let _ = (&conn.sock).write_all(&frame[..4.min(frame.len())]);
                conn.close();
                return;
            }
        }
        match (&conn.sock).write_all(&frame) {
            Ok(()) => {
                let _ = (&conn.sock).flush();
            }
            Err(e) => {
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) {
                    shared
                        .counters
                        .slow_consumer_disconnects
                        .fetch_add(1, Ordering::Relaxed);
                }
                conn.close();
                return;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------------

#[derive(Default)]
struct Counters {
    connections: AtomicU64,
    frames: AtomicU64,
    protocol_errors: AtomicU64,
    calls: AtomicU64,
    queries: AtomicU64,
    streams: AtomicU64,
    rejected_capacity: AtomicU64,
    rejected_quota: AtomicU64,
    rejected_connections: AtomicU64,
    cancelled: AtomicU64,
    /// Request executions that panicked (caught; answered `internal-error`).
    panics: AtomicU64,
    /// Worker threads the supervisor found dead and respawned.
    worker_respawns: AtomicU64,
    /// Requests answered `deadline-exceeded`.
    deadline_exceeded: AtomicU64,
    /// Connections dropped because their send queue stayed full past the
    /// high-water timeout (or a socket write timed out).
    slow_consumer_disconnects: AtomicU64,
}

/// A point-in-time view of the server's counters, cache and tenants.
#[derive(Debug, Clone)]
pub struct Metrics {
    /// Connections accepted since start.
    pub connections: u64,
    /// Frames successfully read.
    pub frames: u64,
    /// Frames rejected as protocol violations.
    pub protocol_errors: u64,
    /// Forward calls executed.
    pub calls: u64,
    /// Collect queries executed.
    pub queries: u64,
    /// Streams started.
    pub streams: u64,
    /// Admissions rejected for a full queue.
    pub rejected_capacity: u64,
    /// Admissions rejected for an exhausted tenant pool.
    pub rejected_quota: u64,
    /// Connections refused at the `max_connections` cap.
    pub rejected_connections: u64,
    /// Streams that ended by cancellation (explicit or disconnect).
    pub cancelled: u64,
    /// Request executions that panicked; each was caught, answered with an
    /// `internal-error` frame, and its grant refunded.
    pub panics: u64,
    /// Worker threads the supervisor found dead and respawned.
    pub worker_respawns: u64,
    /// Requests answered `deadline-exceeded` (their `deadline_ms` elapsed
    /// in queue or mid-run).
    pub deadline_exceeded: u64,
    /// Connections dropped as slow consumers (send queue full past the
    /// high-water timeout, or a socket write timed out).
    pub slow_consumer_disconnects: u64,
    /// Jobs currently queued (not yet picked up by a worker).
    pub queued: usize,
    /// Program-cache counters.
    pub cache: CacheStats,
    /// Per-tenant pool accounting.
    pub tenants: Vec<TenantSnapshot>,
}

// ---------------------------------------------------------------------------
// Server
// ---------------------------------------------------------------------------

struct Shared {
    config: ServeConfig,
    cache: ProgramCache,
    quotas: TenantQuotas,
    sched: Sched,
    shutdown: AtomicBool,
    counters: Arc<Counters>,
    conns: Mutex<HashMap<u64, ConnEntry>>,
    next_conn: AtomicU64,
    /// The worker pool; behind a mutex so the supervisor can swap a dead
    /// worker's handle for its respawn.
    workers: Mutex<Vec<JoinHandle<()>>>,
    /// `(fire_at, cancel_token)` registrations the watchdog scans; `Weak`
    /// so a finished request leaves nothing to collect but a dead pointer.
    deadlines: Mutex<Vec<(Instant, Weak<AtomicBool>)>>,
    /// Seeded fault injection, when chaos-testing; `None` in production.
    faults: Option<FaultInjector>,
}

struct ConnEntry {
    shared: Arc<ConnShared>,
    reader: Option<JoinHandle<()>>,
    writer: Option<JoinHandle<()>>,
}

/// A running `jmatch-serve` instance. Dropping (or [`Server::shutdown`])
/// stops accepting, closes every connection, and joins every thread the
/// server spawned — the no-leaked-threads guarantee `tests/serve.rs` pins.
pub struct Server {
    shared: Arc<Shared>,
    addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
    supervisor: Option<JoinHandle<()>>,
    watchdog: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds, spawns the accept loop and the worker pool, and returns.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn start(config: ServeConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let quotas = TenantQuotas::new(config.quota);
        for (tenant, quota) in &config.tenant_overrides {
            quotas.set_tenant_config(tenant, *quota);
        }
        let faults = config
            .faults
            .as_ref()
            .filter(|f| f.is_active())
            .map(|f| FaultInjector::new(f.clone()));
        let shared = Arc::new(Shared {
            cache: ProgramCache::new(config.cache_capacity, config.engine),
            quotas,
            sched: Sched {
                state: Mutex::new(SchedState::default()),
                ready: Condvar::new(),
            },
            shutdown: AtomicBool::new(false),
            counters: Arc::new(Counters::default()),
            conns: Mutex::new(HashMap::new()),
            next_conn: AtomicU64::new(0),
            workers: Mutex::new(Vec::new()),
            deadlines: Mutex::new(Vec::new()),
            faults,
            config,
        });
        {
            let mut workers = lock_ok(&shared.workers);
            for i in 0..shared.config.workers {
                workers.push(spawn_worker(&shared, i)?);
            }
        }
        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("jmatch-serve-accept".into())
                .spawn(move || accept_loop(&listener, &shared))?
        };
        let supervisor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("jmatch-serve-supervisor".into())
                .spawn(move || supervisor_loop(&shared))?
        };
        let watchdog = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("jmatch-serve-watchdog".into())
                .spawn(move || watchdog_loop(&shared))?
        };
        Ok(Server {
            shared,
            addr,
            accept: Some(accept),
            supervisor: Some(supervisor),
            watchdog: Some(watchdog),
        })
    }

    /// The bound address (resolve the ephemeral port here).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Point-in-time metrics.
    pub fn metrics(&self) -> Metrics {
        let c = &self.shared.counters;
        Metrics {
            connections: c.connections.load(Ordering::Relaxed),
            frames: c.frames.load(Ordering::Relaxed),
            protocol_errors: c.protocol_errors.load(Ordering::Relaxed),
            calls: c.calls.load(Ordering::Relaxed),
            queries: c.queries.load(Ordering::Relaxed),
            streams: c.streams.load(Ordering::Relaxed),
            rejected_capacity: c.rejected_capacity.load(Ordering::Relaxed),
            rejected_quota: c.rejected_quota.load(Ordering::Relaxed),
            rejected_connections: c.rejected_connections.load(Ordering::Relaxed),
            cancelled: c.cancelled.load(Ordering::Relaxed),
            panics: c.panics.load(Ordering::Relaxed),
            worker_respawns: c.worker_respawns.load(Ordering::Relaxed),
            deadline_exceeded: c.deadline_exceeded.load(Ordering::Relaxed),
            slow_consumer_disconnects: c.slow_consumer_disconnects.load(Ordering::Relaxed),
            queued: lock_ok(&self.shared.sched.state).queued,
            cache: self.shared.cache.stats(),
            tenants: self.shared.quotas.snapshot(),
        }
    }

    /// The tenant quota registry (pin per-tenant profiles at runtime).
    pub fn quotas(&self) -> &TenantQuotas {
        &self.shared.quotas
    }

    /// Whether a `shutdown` frame (or a prior [`Server::shutdown`]) has
    /// stopped the server.
    pub fn is_shut_down(&self) -> bool {
        self.shared.shutdown.load(Ordering::Acquire)
    }

    /// Blocks until something requests shutdown (a `shutdown` frame with
    /// remote shutdown enabled, or another thread calling
    /// [`Server::shutdown`] via a clone — the bin's main-thread wait).
    pub fn wait_for_shutdown(&self) {
        while !self.is_shut_down() {
            std::thread::sleep(Duration::from_millis(50));
        }
    }

    /// Stops accepting, closes every connection, joins every thread.
    /// Queued-but-unstarted jobs refund their tenant step grants.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.sched.ready.notify_all();
        // Supervisor and watchdog first: once shutdown is set neither will
        // respawn or cancel anything, and stopping them here means the
        // worker set is stable for the joins below.
        if let Some(supervisor) = self.supervisor.take() {
            let _ = supervisor.join();
        }
        if let Some(watchdog) = self.watchdog.take() {
            let _ = watchdog.join();
        }
        // Closing the sockets unblocks readers parked in `read` and
        // writers parked in `write`.
        let entries: Vec<ConnEntry> = {
            let mut conns = lock_ok(&self.shared.conns);
            conns.drain().map(|(_, e)| e).collect()
        };
        for entry in &entries {
            entry.shared.close();
        }
        for mut entry in entries {
            if let Some(handle) = entry.reader.take() {
                let _ = handle.join();
            }
            if let Some(handle) = entry.writer.take() {
                let _ = handle.join();
            }
        }
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        let workers: Vec<JoinHandle<()>> = lock_ok(&self.shared.workers).drain(..).collect();
        for worker in workers {
            let _ = worker.join();
        }
        // Drop whatever never ran; each Job's Grant refunds on drop.
        lock_ok(&self.shared.sched.state).queues.clear();
        lock_ok(&self.shared.deadlines).clear();
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
    }
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server").field("addr", &self.addr).finish()
    }
}

fn spawn_worker(shared: &Arc<Shared>, index: usize) -> io::Result<JoinHandle<()>> {
    let shared = Arc::clone(shared);
    std::thread::Builder::new()
        .name(format!("jmatch-serve-worker-{index}"))
        .stack_size(SERVE_THREAD_STACK)
        .spawn(move || worker_loop(&shared))
}

/// The supervisor: polls the worker pool and respawns any thread that
/// died. Request panics are caught inside the worker, so in practice only
/// an *uncaught* panic (an injected between-jobs fault, or a bug in the
/// worker loop itself) gets here — but the server must outlive those too.
fn supervisor_loop(shared: &Arc<Shared>) {
    while !shared.shutdown.load(Ordering::Acquire) {
        {
            let mut workers = lock_ok(&shared.workers);
            for i in 0..workers.len() {
                if !workers[i].is_finished() || shared.shutdown.load(Ordering::Acquire) {
                    continue;
                }
                match spawn_worker(shared, i) {
                    Ok(fresh) => {
                        let dead = std::mem::replace(&mut workers[i], fresh);
                        let _ = dead.join();
                        shared
                            .counters
                            .worker_respawns
                            .fetch_add(1, Ordering::Relaxed);
                    }
                    // Spawn failure (thread exhaustion): leave the dead
                    // handle in place and retry next tick.
                    Err(_) => continue,
                }
            }
        }
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// The deadline watchdog: scans the registry and fires the cancel token
/// of every request past its deadline. The engines poll the token every
/// 256 steps, so enforcement lag is bounded by poll granularity plus the
/// scan interval.
fn watchdog_loop(shared: &Arc<Shared>) {
    while !shared.shutdown.load(Ordering::Acquire) {
        {
            let now = Instant::now();
            let mut deadlines = lock_ok(&shared.deadlines);
            deadlines.retain(|(fire_at, token)| match token.upgrade() {
                // The request finished; its registration is garbage.
                None => false,
                Some(token) => {
                    if now >= *fire_at {
                        token.store(true, Ordering::Release);
                        false
                    } else {
                        true
                    }
                }
            });
        }
        std::thread::sleep(Duration::from_millis(5));
    }
}

// ---------------------------------------------------------------------------
// Accept loop and connection readers
// ---------------------------------------------------------------------------

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    while !shared.shutdown.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((mut stream, _peer)) => {
                if stream.set_nonblocking(false).is_err() {
                    continue;
                }
                // Responses are single small frames; waiting for ACKs
                // (Nagle) would serialize the whole protocol at ~40ms RTT.
                let _ = stream.set_nodelay(true);
                // Every connection holds an 8 MiB-stack reader thread (and
                // a writer thread), so the count must be bounded: at the
                // cap, answer with a structured rejection and close
                // instead of spawning.
                let live = lock_ok(&shared.conns).len();
                if live >= shared.config.max_connections {
                    shared
                        .counters
                        .rejected_connections
                        .fetch_add(1, Ordering::Relaxed);
                    let frame = ErrorFrame::new(
                        error_kind::OVER_CAPACITY,
                        format!(
                            "server is at its {}-connection limit; retry shortly",
                            shared.config.max_connections
                        ),
                    )
                    .retry_after(CAPACITY_RETRY_MS)
                    .into_frame(None);
                    let _ = write_frame(&mut stream, &frame);
                    let _ = stream.shutdown(Shutdown::Both);
                    continue;
                }
                let Ok(write_half) = stream.try_clone() else {
                    continue;
                };
                shared.counters.connections.fetch_add(1, Ordering::Relaxed);
                let conn_id = shared.next_conn.fetch_add(1, Ordering::Relaxed);
                let conn = Arc::new(ConnShared::new(
                    write_half,
                    &shared.config,
                    Arc::clone(&shared.counters),
                ));
                let writer = {
                    let shared = Arc::clone(shared);
                    let conn = Arc::clone(&conn);
                    std::thread::Builder::new()
                        .name(format!("jmatch-serve-writer-{conn_id}"))
                        .spawn(move || writer_loop(&conn, &shared))
                };
                let Ok(writer) = writer else {
                    conn.close();
                    continue;
                };
                let reader = {
                    let shared = Arc::clone(shared);
                    let conn = Arc::clone(&conn);
                    std::thread::Builder::new()
                        .name(format!("jmatch-serve-conn-{conn_id}"))
                        .stack_size(SERVE_THREAD_STACK)
                        .spawn(move || {
                            reader_loop(stream, &conn, &shared);
                            // Graceful end: queued replies (e.g. the
                            // protocol-error frame for a hostile request)
                            // still flush before the socket closes.
                            conn.finish();
                            // Detach ourselves from the table (drop of our
                            // own JoinHandle just detaches) and reap our
                            // writer.
                            let entry = lock_ok(&shared.conns).remove(&conn_id);
                            if let Some(mut entry) = entry {
                                if let Some(writer) = entry.writer.take() {
                                    let _ = writer.join();
                                }
                            }
                        })
                };
                let Ok(reader) = reader else {
                    conn.close();
                    let _ = writer.join();
                    continue;
                };
                let mut conns = lock_ok(&shared.conns);
                if conn.open.load(Ordering::Acquire) {
                    conns.insert(
                        conn_id,
                        ConnEntry {
                            shared: conn,
                            reader: Some(reader),
                            writer: Some(writer),
                        },
                    );
                } else {
                    // The reader already finished (and found no table
                    // entry to reap); join both threads here so nothing
                    // dangles.
                    drop(conns);
                    let _ = reader.join();
                    let _ = writer.join();
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
}

fn reader_loop(mut stream: TcpStream, conn: &Arc<ConnShared>, shared: &Arc<Shared>) {
    loop {
        if shared.shutdown.load(Ordering::Acquire) || !conn.open.load(Ordering::Acquire) {
            return;
        }
        match read_frame(&mut stream, shared.config.max_frame) {
            Ok(doc) => {
                shared.counters.frames.fetch_add(1, Ordering::Relaxed);
                // Inline work (compiles, admission) panicking must not
                // take the reader down: the client gets `internal-error`
                // and keeps its connection.
                let id = doc.get("id").and_then(Json::as_i64);
                if catch_unwind(AssertUnwindSafe(|| handle_frame(&doc, conn, shared))).is_err() {
                    shared.counters.panics.fetch_add(1, Ordering::Relaxed);
                    conn.send(
                        &ErrorFrame::new(
                            error_kind::INTERNAL,
                            "the server hit an internal error handling this request",
                        )
                        .into_frame(id),
                    );
                }
            }
            Err(FrameError::Eof) => return,
            Err(FrameError::Truncated(_)) => return,
            Err(FrameError::TooLarge { declared }) => {
                shared
                    .counters
                    .protocol_errors
                    .fetch_add(1, Ordering::Relaxed);
                let frame = ErrorFrame::new(
                    error_kind::FRAME_TOO_LARGE,
                    format!(
                        "declared frame length {declared} exceeds the {}-byte cap",
                        shared.config.max_frame
                    ),
                )
                .with("max_frame", Json::Int(shared.config.max_frame as i64))
                .into_frame(None);
                conn.send(&frame);
                // Keep the connection when the payload is drainable;
                // beyond the skip cap the framing is hostile.
                if declared <= proto::skip_cap(shared.config.max_frame) {
                    if drain(&mut stream, declared).is_err() {
                        return;
                    }
                } else {
                    return;
                }
            }
            Err(FrameError::Malformed(message)) => {
                shared
                    .counters
                    .protocol_errors
                    .fetch_add(1, Ordering::Relaxed);
                let frame = ErrorFrame::new(error_kind::PROTOCOL, message).into_frame(None);
                if !conn.send(&frame) {
                    return;
                }
            }
        }
    }
}

fn handle_frame(doc: &Json, conn: &Arc<ConnShared>, shared: &Arc<Shared>) {
    let request = match Request::parse(doc) {
        Ok(request) => request,
        Err((id, message)) => {
            shared
                .counters
                .protocol_errors
                .fetch_add(1, Ordering::Relaxed);
            conn.send(&ErrorFrame::new(error_kind::PROTOCOL, message).into_frame(id));
            return;
        }
    };
    match request {
        Request::Ping { id } => {
            conn.send(&proto::resp_pong(id));
        }
        Request::Shutdown { id } => {
            if shared.config.allow_remote_shutdown {
                conn.send(&proto::resp_ack(id));
                shared.shutdown.store(true, Ordering::Release);
                shared.sched.ready.notify_all();
            } else {
                conn.send(
                    &ErrorFrame::new(
                        error_kind::PROTOCOL,
                        "remote shutdown is not enabled on this server",
                    )
                    .into_frame(Some(id)),
                );
            }
        }
        Request::Compile {
            id,
            tenant,
            source,
            verify,
        } => {
            // When the tenant profile prices compiles, reserve the price
            // up front like any other request (compiles run inline on
            // reader threads, bypassing the admission queue).
            let grant = match shared.quotas.admit_compile(&tenant) {
                Ok(grant) => grant,
                Err(denied) => {
                    shared
                        .counters
                        .rejected_quota
                        .fetch_add(1, Ordering::Relaxed);
                    conn.send(
                        &ErrorFrame::new(
                            error_kind::QUOTA_EXHAUSTED,
                            format!(
                                "tenant `{tenant}` has exhausted its step pool for this window"
                            ),
                        )
                        .retry_after(denied.retry_after_ms)
                        .into_frame(Some(id)),
                    );
                    return;
                }
            };
            match shared.cache.get_or_compile(&source, verify) {
                CacheOutcome::Ready {
                    program,
                    key,
                    cached,
                } => {
                    if let Some(grant) = grant {
                        // A cache hit did no compile work: refund.
                        let used = if cached { 0 } else { grant.granted() };
                        grant.settle(used);
                    }
                    let warnings: Vec<String> =
                        program.warnings().iter().map(|w| w.to_string()).collect();
                    conn.send(&proto::resp_compiled(id, &key, cached, &warnings));
                }
                CacheOutcome::Failed(errors) => {
                    if let Some(grant) = grant {
                        // Failed compiles did the work; charge them.
                        let used = grant.granted();
                        grant.settle(used);
                    }
                    conn.send(&proto::resp_compile_failed(id, &errors));
                }
            }
        }
        Request::Lint {
            id,
            tenant,
            source,
            verify,
            deadline_ms,
        } => {
            // Compilation is not interruptible, so the deadline is checked
            // at the only point it can be: before the work starts. A lint
            // that arrives already expired (client-side queueing) is
            // answered without paying for a compile.
            if deadline_ms == Some(0) {
                shared
                    .counters
                    .deadline_exceeded
                    .fetch_add(1, Ordering::Relaxed);
                conn.send(
                    &ErrorFrame::new(error_kind::DEADLINE_EXCEEDED, "request deadline exceeded")
                        .retry_after(CAPACITY_RETRY_MS)
                        .into_frame(Some(id)),
                );
                return;
            }
            // Linting is compile-shaped work: same inline path, same
            // compile pricing, same cache (a prior `compile` of the same
            // source is a free hit).
            let grant = match shared.quotas.admit_compile(&tenant) {
                Ok(grant) => grant,
                Err(denied) => {
                    shared
                        .counters
                        .rejected_quota
                        .fetch_add(1, Ordering::Relaxed);
                    conn.send(
                        &ErrorFrame::new(
                            error_kind::QUOTA_EXHAUSTED,
                            format!(
                                "tenant `{tenant}` has exhausted its step pool for this window"
                            ),
                        )
                        .retry_after(denied.retry_after_ms)
                        .into_frame(Some(id)),
                    );
                    return;
                }
            };
            match shared.cache.get_or_compile(&source, verify) {
                CacheOutcome::Ready {
                    program,
                    key,
                    cached,
                } => {
                    if let Some(grant) = grant {
                        let used = if cached { 0 } else { grant.granted() };
                        grant.settle(used);
                    }
                    conn.send(&proto::resp_lints(id, &key, cached, program.lints()));
                }
                CacheOutcome::Failed(errors) => {
                    if let Some(grant) = grant {
                        let used = grant.granted();
                        grant.settle(used);
                    }
                    conn.send(&proto::resp_compile_failed(id, &errors));
                }
            }
        }
        Request::Reload {
            id,
            tenant,
            program,
            source,
            deadline_ms,
        } => {
            // Like `lint`, reloads are compile-shaped inline work: the
            // deadline is checked before the (uninterruptible) recompile
            // starts, and the work is priced as a compile. Unlike a full
            // compile, the recompile itself is incremental — the cache
            // keeps each entry's workspace, so only the methods the edit
            // touched are re-lowered and re-verified.
            if deadline_ms == Some(0) {
                shared
                    .counters
                    .deadline_exceeded
                    .fetch_add(1, Ordering::Relaxed);
                conn.send(
                    &ErrorFrame::new(error_kind::DEADLINE_EXCEEDED, "request deadline exceeded")
                        .retry_after(CAPACITY_RETRY_MS)
                        .into_frame(Some(id)),
                );
                return;
            }
            let grant = match shared.quotas.admit_compile(&tenant) {
                Ok(grant) => grant,
                Err(denied) => {
                    shared
                        .counters
                        .rejected_quota
                        .fetch_add(1, Ordering::Relaxed);
                    conn.send(
                        &ErrorFrame::new(
                            error_kind::QUOTA_EXHAUSTED,
                            format!(
                                "tenant `{tenant}` has exhausted its step pool for this window"
                            ),
                        )
                        .retry_after(denied.retry_after_ms)
                        .into_frame(Some(id)),
                    );
                    return;
                }
            };
            match shared.cache.reload(&program, &source) {
                None => {
                    if let Some(grant) = grant {
                        grant.settle(0);
                    }
                    conn.send(
                        &ErrorFrame::new(
                            error_kind::UNKNOWN_PROGRAM,
                            format!("program `{program}` is not resident; re-compile and retry"),
                        )
                        .with("program", Json::Str(program.clone()))
                        .into_frame(Some(id)),
                    );
                }
                Some(ReloadOutcome::Unchanged { key }) => {
                    if let Some(grant) = grant {
                        // No compile work ran: refund.
                        grant.settle(0);
                    }
                    conn.send(&proto::resp_reload_unchanged(id, &key));
                }
                Some(ReloadOutcome::Recompiled {
                    key,
                    program,
                    methods,
                    reverified,
                }) => {
                    if let Some(grant) = grant {
                        let used = grant.granted();
                        grant.settle(used);
                    }
                    let warnings: Vec<String> =
                        program.warnings().iter().map(|w| w.to_string()).collect();
                    conn.send(&proto::resp_reloaded(
                        id,
                        &key,
                        &methods,
                        &reverified,
                        &warnings,
                    ));
                }
                Some(ReloadOutcome::Rejected { diagnostics }) => {
                    if let Some(grant) = grant {
                        // Rejected edits did the compile work; charge them.
                        let used = grant.granted();
                        grant.settle(used);
                    }
                    conn.send(&proto::resp_reload_rejected(id, &diagnostics));
                }
            }
        }
        Request::Cancel { id, target } => {
            if let Some(token) = lock_ok(&conn.cancels).get(&target) {
                token.store(true, Ordering::Release);
            }
            conn.send(&proto::resp_ack(id));
        }
        Request::Call {
            id,
            tenant,
            program,
            method,
            args,
            limits,
            deadline_ms,
        } => admit(
            shared,
            conn,
            id,
            tenant,
            &program,
            limits,
            deadline_ms,
            JobKind::Call { method, args },
        ),
        Request::Query { id, tenant, spec } => {
            let program = spec.program.clone();
            let limits = spec.limits;
            let deadline_ms = spec.deadline_ms;
            admit(
                shared,
                conn,
                id,
                tenant,
                &program,
                limits,
                deadline_ms,
                JobKind::Query { spec },
            )
        }
        Request::Stream {
            id,
            tenant,
            spec,
            batch,
        } => {
            let program = spec.program.clone();
            let limits = spec.limits;
            let deadline_ms = spec.deadline_ms;
            admit(
                shared,
                conn,
                id,
                tenant,
                &program,
                limits,
                deadline_ms,
                JobKind::Stream { spec, batch },
            )
        }
    }
}

/// The admission path every unit of query work goes through: resolve the
/// cached program, clamp limits to the tenant profile, reserve the step
/// grant, register the deadline, and enqueue under the tenant's queue
/// bound.
#[allow(clippy::too_many_arguments)]
fn admit(
    shared: &Arc<Shared>,
    conn: &Arc<ConnShared>,
    id: i64,
    tenant: String,
    program_key: &str,
    limits: LimitsSpec,
    deadline_ms: Option<u64>,
    kind: JobKind,
) {
    let Some(program) = shared.cache.lookup(program_key) else {
        conn.send(
            &ErrorFrame::new(
                error_kind::UNKNOWN_PROGRAM,
                format!("program `{program_key}` is not resident; re-compile and retry"),
            )
            .with("program", Json::Str(program_key.to_owned()))
            .into_frame(Some(id)),
        );
        return;
    };
    let effective = limits.clamp(shared.quotas.limits_of(&tenant));
    let grant = match shared.quotas.admit(&tenant, effective.max_steps) {
        Ok(grant) => grant,
        Err(denied) => {
            shared
                .counters
                .rejected_quota
                .fetch_add(1, Ordering::Relaxed);
            conn.send(
                &ErrorFrame::new(
                    error_kind::QUOTA_EXHAUSTED,
                    format!("tenant `{tenant}` has exhausted its step pool for this window"),
                )
                .retry_after(denied.retry_after_ms)
                .into_frame(Some(id)),
            );
            return;
        }
    };
    let cancel = conn.register_cancel(id);
    // The deadline clock starts at admission and covers queue time: a
    // request stuck behind a backlog expires in place (the watchdog fires
    // its cancel token, and workers check again at pickup).
    let deadline = deadline_ms.map(|ms| Instant::now() + Duration::from_millis(ms));
    if let Some(deadline) = deadline {
        lock_ok(&shared.deadlines).push((deadline, Arc::downgrade(&cancel)));
    }
    let job = Job {
        id,
        tenant,
        conn: Arc::clone(conn),
        program,
        limits: Limits {
            max_depth: effective.max_depth,
            // The grant may be smaller than asked when the pool is nearly
            // dry; the enumeration then trips `limit-exceeded` honestly.
            max_steps: grant.granted(),
        },
        grant,
        cancel,
        deadline,
        kind,
    };
    let mut state = lock_ok(&shared.sched.state);
    match state.push(job, shared.config.queue_depth) {
        None => {
            drop(state);
            shared.sched.ready.notify_one();
        }
        Some(job) => {
            drop(state);
            shared
                .counters
                .rejected_capacity
                .fetch_add(1, Ordering::Relaxed);
            job.conn.forget_cancel(job.id);
            let frame = ErrorFrame::new(
                error_kind::OVER_CAPACITY,
                format!(
                    "tenant `{}` has {} requests queued; retry shortly",
                    job.tenant, shared.config.queue_depth
                ),
            )
            .retry_after(CAPACITY_RETRY_MS)
            .into_frame(Some(job.id));
            job.conn.send(&frame);
            // Dropping the job refunds its grant.
        }
    }
}

// ---------------------------------------------------------------------------
// Workers
// ---------------------------------------------------------------------------

fn worker_loop(shared: &Arc<Shared>) {
    loop {
        // The injected between-jobs panic deliberately runs *outside* the
        // dispatch `catch_unwind`: the thread dies with no job in hand
        // (the queue is untouched, no request is lost) and the supervisor
        // must respawn it.
        if let Some(faults) = &shared.faults {
            if faults.fire(Site::PanicWorker) {
                panic!("injected fault: worker panic between jobs");
            }
        }
        let job = {
            let mut state = lock_ok(&shared.sched.state);
            loop {
                if shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
                if let Some(job) = state.pop() {
                    break job;
                }
                state = match shared.sched.ready.wait(state) {
                    Ok(guard) => guard,
                    Err(poisoned) => poisoned.into_inner(),
                };
            }
        };
        if let Some(faults) = &shared.faults {
            if faults.fire(Site::Stall) {
                // A stuck solver: sleep with the job in hand, so deadlines
                // and cancellation race real elapsed time.
                std::thread::sleep(Duration::from_millis(faults.stall_ms()));
            }
        }
        let batch = match job.kind {
            JobKind::Query { .. } => {
                // Coalesce whatever collect queries are ready *right now*
                // into one batch on the shared pool (no waiting: batching
                // must never add latency to a lone query).
                let mut batch = vec![job];
                if shared.config.batch_max > 1 {
                    let mut state = lock_ok(&shared.sched.state);
                    while batch.len() < shared.config.batch_max {
                        match state.pop_query() {
                            Some(next) => batch.push(next),
                            None => break,
                        }
                    }
                }
                batch
            }
            _ => vec![job],
        };
        dispatch(shared, batch);
    }
}

/// Runs one popped unit of work — a call, a stream, or a coalesced query
/// batch — under `catch_unwind`: a panicking request answers
/// `internal-error` instead of killing the worker. Grants held by the
/// panicking scope refund through the unwind (`Grant::drop` runs), so
/// quota conservation survives the panic.
fn dispatch(shared: &Arc<Shared>, batch: Vec<Job>) {
    let ctx: Vec<(i64, Arc<ConnShared>)> = batch
        .iter()
        .map(|job| (job.id, Arc::clone(&job.conn)))
        .collect();
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        let mut batch = batch;
        if matches!(batch[0].kind, JobKind::Query { .. }) {
            run_query_batch(shared, batch);
        } else {
            let job = batch.pop().expect("dispatch batch is never empty");
            match job.kind {
                JobKind::Call { .. } => run_call(shared, job),
                JobKind::Stream { .. } => run_stream(shared, job),
                JobKind::Query { .. } => unreachable!("query handled above"),
            }
        }
    }));
    if outcome.is_err() {
        shared.counters.panics.fetch_add(1, Ordering::Relaxed);
        for (id, conn) in ctx {
            conn.forget_cancel(id);
            // A panic mid-batch answers every member: at worst a client
            // whose reply already went out sees a duplicate id and drops
            // it; a client still waiting must not hang forever.
            conn.send(
                &ErrorFrame::new(
                    error_kind::INTERNAL,
                    "the request hit an internal error; its work was abandoned",
                )
                .into_frame(Some(id)),
            );
        }
    }
}

/// The injected mid-request panic: fires *inside* the worker's
/// `catch_unwind`, exercising panic isolation end to end.
fn fire_panic_request(shared: &Arc<Shared>) {
    if let Some(faults) = &shared.faults {
        if faults.fire(Site::PanicRequest) {
            panic!("injected fault: request execution panic");
        }
    }
}

/// Answers a request whose cancel token had already fired when a worker
/// picked it up: past its deadline that is a retryable
/// `deadline-exceeded`; an explicit cancel or a disconnect gets no reply
/// (the client stopped waiting for one).
fn report_expired_pickup(
    shared: &Arc<Shared>,
    conn: &Arc<ConnShared>,
    id: i64,
    deadline: Option<Instant>,
) {
    if deadline.is_some_and(|d| Instant::now() >= d) {
        shared
            .counters
            .deadline_exceeded
            .fetch_add(1, Ordering::Relaxed);
        conn.send(
            &ErrorFrame::new(
                error_kind::DEADLINE_EXCEEDED,
                "request deadline exceeded while queued",
            )
            .retry_after(CAPACITY_RETRY_MS)
            .into_frame(Some(id)),
        );
    }
}

/// Maps a failed run onto the wire, classifying an engine `Interrupted`
/// by *why* the token fired: past the request's deadline it is a
/// retryable `deadline-exceeded`; otherwise an explicit `cancel` frame or
/// a disconnect, reported as `cancelled`.
fn rt_error_frame(
    shared: &Arc<Shared>,
    e: &crate::RtError,
    deadline: Option<Instant>,
) -> ErrorFrame {
    if matches!(e.kind, RtErrorKind::Interrupted) {
        if deadline.is_some_and(|d| Instant::now() >= d) {
            shared
                .counters
                .deadline_exceeded
                .fetch_add(1, Ordering::Relaxed);
            return ErrorFrame::new(error_kind::DEADLINE_EXCEEDED, "request deadline exceeded")
                .retry_after(CAPACITY_RETRY_MS);
        }
        shared.counters.cancelled.fetch_add(1, Ordering::Relaxed);
        return ErrorFrame::new(error_kind::CANCELLED, "the request was cancelled");
    }
    ErrorFrame::from_rt(e)
}

/// Resolves the method a spec names, plus the receiver it runs on (a bare
/// instance for class methods — the serve surface's documented receiver
/// model).
fn resolve_target(program: &Program, spec: &QuerySpec) -> RtResult<(MethodRef, Option<Value>)> {
    match &spec.class {
        Some(class) => Ok((
            program.method(class, &spec.method)?,
            Some(program.instance(class)?),
        )),
        None => Ok((program.free_method(&spec.method)?, None)),
    }
}

fn known_bindings(spec: &QuerySpec) -> Bindings {
    spec.known.iter().cloned().collect()
}

fn run_call(shared: &Arc<Shared>, job: Job) {
    let Job {
        id,
        conn,
        program,
        limits,
        grant,
        cancel,
        deadline,
        kind,
        ..
    } = job;
    let JobKind::Call { method, args } = kind else {
        unreachable!("run_call on a non-call job");
    };
    if cancel.load(Ordering::Acquire) {
        conn.forget_cancel(id);
        report_expired_pickup(shared, &conn, id, deadline);
        drop(grant);
        return;
    }
    shared.counters.calls.fetch_add(1, Ordering::Relaxed);
    fire_panic_request(shared);
    match program.free_method(&method) {
        Err(e) => {
            conn.forget_cancel(id);
            drop(grant);
            conn.send(&ErrorFrame::from_rt(&e).into_frame(Some(id)));
        }
        Ok(mref) => {
            // The cancel token rides into the engine's fuel polling, so a
            // fired deadline (or an explicit cancel) interrupts the run
            // within ~256 steps.
            let (outcome, steps) =
                mref.call_counted_interruptible(None, args, limits, Some(Arc::clone(&cancel)));
            conn.forget_cancel(id);
            // steps=None (tree engine) settles the whole grant, matching
            // the query/stream paths: unmeterable work is charged at its
            // ceiling, never given away free.
            grant.settle(steps.unwrap_or(limits.max_steps));
            match outcome {
                Ok(value) => conn.send(&proto::resp_value(id, &value)),
                Err(e) => conn.send(&rt_error_frame(shared, &e, deadline).into_frame(Some(id))),
            };
        }
    }
}

/// Runs a coalesced batch of collect queries as one
/// [`Program::query_many_counted`] call over the configured inner pool.
fn run_query_batch(shared: &Arc<Shared>, batch: Vec<Job>) {
    shared
        .counters
        .queries
        .fetch_add(batch.len() as u64, Ordering::Relaxed);
    fire_panic_request(shared);
    // Build every query target first; jobs whose resolution fails answer
    // immediately and drop out of the batch.
    struct Ready {
        id: i64,
        conn: Arc<ConnShared>,
        grant: Grant,
        program: Arc<Program>,
        mref: MethodRef,
        receiver: Option<Value>,
        known: Bindings,
        limits: Limits,
        cancel: Arc<AtomicBool>,
        deadline: Option<Instant>,
    }
    let mut ready: Vec<Ready> = Vec::with_capacity(batch.len());
    for job in batch {
        let Job {
            id,
            conn,
            program,
            limits,
            grant,
            cancel,
            deadline,
            kind,
            ..
        } = job;
        let JobKind::Query { spec } = kind else {
            unreachable!("non-query job in a query batch");
        };
        if cancel.load(Ordering::Acquire) {
            conn.forget_cancel(id);
            report_expired_pickup(shared, &conn, id, deadline);
            drop(grant);
            continue;
        }
        match resolve_target(&program, &spec) {
            Err(e) => {
                conn.forget_cancel(id);
                drop(grant);
                conn.send(&ErrorFrame::from_rt(&e).into_frame(Some(id)));
            }
            Ok((mref, receiver)) => ready.push(Ready {
                id,
                conn,
                grant,
                program,
                mref,
                receiver,
                known: known_bindings(&spec),
                limits,
                cancel,
                deadline,
            }),
        }
    }
    if ready.is_empty() {
        return;
    }
    // One result slot per ready job, filled either by a build failure or
    // by the batch run.
    let mut results: Vec<Option<QueryOutcome>> = (0..ready.len()).map(|_| None).collect();
    {
        let mut queries: Vec<Query<'_>> = Vec::with_capacity(ready.len());
        let mut slots: Vec<usize> = Vec::with_capacity(ready.len());
        for (i, r) in ready.iter().enumerate() {
            match r.mref.iterate(r.receiver.as_ref(), &r.known) {
                Ok(q) => {
                    queries.push(q.limits(r.limits).interrupt(Arc::clone(&r.cancel)));
                    slots.push(i);
                }
                // A build failure (e.g. mode mismatch) did no solver work.
                Err(e) => results[i] = Some((Err(e), Some(0))),
            }
        }
        // One scoped pool for the whole coalesced batch — each query
        // carries its own program reference, so N tenants' queries over
        // different programs ride the same workers.
        let host = Arc::clone(&ready[0].program);
        let outcomes = host.query_many_counted(&queries, shared.config.inner_threads);
        for (i, outcome) in slots.into_iter().zip(outcomes) {
            results[i] = Some(outcome);
        }
    }
    for (r, result) in ready.into_iter().zip(results) {
        let (outcome, steps) = result.expect("every ready slot is filled");
        r.conn.forget_cancel(r.id);
        // steps=None (tree engine) settles the whole grant: unmeterable
        // work is charged at its ceiling, never given away free.
        r.grant.settle(steps.unwrap_or(r.limits.max_steps));
        match outcome {
            Ok(solutions) => {
                r.conn.send(&proto::resp_solutions(r.id, &solutions, steps));
            }
            Err(e) => {
                r.conn
                    .send(&rt_error_frame(shared, &e, r.deadline).into_frame(Some(r.id)));
            }
        }
    }
}

fn run_stream(shared: &Arc<Shared>, job: Job) {
    let Job {
        id,
        conn,
        program,
        limits,
        grant,
        cancel,
        deadline,
        kind,
        ..
    } = job;
    let JobKind::Stream { spec, batch } = kind else {
        unreachable!("run_stream on a non-stream job");
    };
    shared.counters.streams.fetch_add(1, Ordering::Relaxed);
    if cancel.load(Ordering::Acquire) {
        conn.forget_cancel(id);
        report_expired_pickup(shared, &conn, id, deadline);
        drop(grant);
        return;
    }
    fire_panic_request(shared);
    let (mref, receiver) = match resolve_target(&program, &spec) {
        Ok(pair) => pair,
        Err(e) => {
            conn.forget_cancel(id);
            drop(grant);
            conn.send(&ErrorFrame::from_rt(&e).into_frame(Some(id)));
            return;
        }
    };
    let known = known_bindings(&spec);
    let query = match mref.iterate(receiver.as_ref(), &known) {
        Ok(q) => q.limits(limits).interrupt(Arc::clone(&cancel)),
        Err(e) => {
            conn.forget_cancel(id);
            drop(grant);
            conn.send(&ErrorFrame::from_rt(&e).into_frame(Some(id)));
            return;
        }
    };
    let mut solutions = query.solutions();
    let mut count: u64 = 0;
    let mut seq: u64 = 0;
    let mut cancelled = false;
    let mut pending: Vec<Bindings> = Vec::with_capacity(batch);
    loop {
        if cancel.load(Ordering::Acquire) || !conn.open.load(Ordering::Acquire) {
            cancelled = true;
            break;
        }
        match solutions.next() {
            Some(b) => {
                pending.push(b);
                count += 1;
                if pending.len() >= batch {
                    if !conn.send(&proto::resp_batch(id, seq, &pending)) {
                        cancelled = true;
                        break;
                    }
                    seq += 1;
                    pending.clear();
                }
            }
            None => break,
        }
    }
    let steps = solutions.steps();
    let error = solutions.take_error();
    drop(solutions);
    // Whatever the stream actually consumed is charged; the rest of the
    // reservation goes back to the tenant pool — including on disconnect,
    // which is the "return the unused SharedBudget grant" guarantee.
    grant.settle(steps.unwrap_or(limits.max_steps));
    conn.forget_cancel(id);
    // The enumeration can notice the fired token itself (an engine
    // `Interrupted` error) or the loop above can (flag/connection check);
    // both mean the same thing and classify the same way.
    let interrupted =
        cancelled || matches!(&error, Some(e) if matches!(e.kind, RtErrorKind::Interrupted));
    if interrupted {
        if deadline.is_some_and(|d| Instant::now() >= d) {
            shared
                .counters
                .deadline_exceeded
                .fetch_add(1, Ordering::Relaxed);
            conn.send(
                &ErrorFrame::new(error_kind::DEADLINE_EXCEEDED, "request deadline exceeded")
                    .retry_after(CAPACITY_RETRY_MS)
                    .into_frame(Some(id)),
            );
        } else {
            shared.counters.cancelled.fetch_add(1, Ordering::Relaxed);
            conn.send(&proto::resp_stream_done(id, count, true, steps));
        }
        return;
    }
    if !pending.is_empty() && !conn.send(&proto::resp_batch(id, seq, &pending)) {
        shared.counters.cancelled.fetch_add(1, Ordering::Relaxed);
        return;
    }
    match error {
        Some(e) => {
            conn.send(&ErrorFrame::from_rt(&e).into_frame(Some(id)));
        }
        None => {
            conn.send(&proto::resp_stream_done(id, count, false, steps));
        }
    }
}
