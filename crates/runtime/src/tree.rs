//! The legacy tree-walking interpreter.
//!
//! This is the original runtime of the reproduction: it re-discovers the
//! solving order of every declarative formula at every call by walking the
//! AST with cloned `HashMap` environments. Since the lowering layer
//! ([`jmatch_core::lower`]) landed, the plan evaluator ([`crate::eval`]) is
//! the default engine; the walker is kept callable behind
//! [`Engine::TreeWalk`](crate::Engine::TreeWalk) as a differential-testing
//! oracle — its behavior (values, bindings, enumeration order, failures) is
//! the reference the plan evaluator is tested against.

use crate::{Bindings, Flow, Object, RtError, RtResult, Value};
use jmatch_core::table::{ClassTable, MethodInfo};
use jmatch_syntax::ast::*;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// The tree-walking interpreter (the legacy engine).
#[derive(Debug)]
pub struct TreeWalker {
    table: Arc<ClassTable>,
    /// Safety valve against runaway recursion in declarative solving.
    max_depth: usize,
    /// Ceiling on the number of solver steps (`solve` recursions).
    max_steps: u64,
    /// Solver steps spent so far across this walker's queries.
    steps: AtomicU64,
    /// External interrupt token (cancellation / request deadline), polled
    /// every 256 solver steps like the plan engines' fuel quantum.
    interrupt: Option<Arc<AtomicBool>>,
}

impl Clone for TreeWalker {
    fn clone(&self) -> Self {
        TreeWalker {
            table: Arc::clone(&self.table),
            max_depth: self.max_depth,
            max_steps: self.max_steps,
            steps: AtomicU64::new(self.steps.load(Ordering::Relaxed)),
            interrupt: self.interrupt.clone(),
        }
    }
}

impl TreeWalker {
    /// Creates a tree-walking interpreter over a resolved program.
    pub fn new(table: Arc<ClassTable>) -> Self {
        TreeWalker {
            table,
            max_depth: 10_000,
            max_steps: u64::MAX,
            steps: AtomicU64::new(0),
            interrupt: None,
        }
    }

    /// Attaches an external interrupt token; a fired token surfaces as an
    /// [`RtErrorKind::Interrupted`](crate::RtErrorKind::Interrupted) error
    /// at the next poll boundary.
    pub(crate) fn set_interrupt(&mut self, token: Option<Arc<AtomicBool>>) {
        self.interrupt = token;
    }

    /// A walker with explicit depth / step ceilings (the [`crate::Limits`]
    /// of a [`crate::Query`]).
    pub(crate) fn with_limits(table: Arc<ClassTable>, max_depth: usize, max_steps: u64) -> Self {
        TreeWalker {
            table,
            max_depth,
            max_steps,
            steps: AtomicU64::new(0),
            interrupt: None,
        }
    }

    /// The class table the interpreter runs against.
    pub fn table(&self) -> &ClassTable {
        &self.table
    }

    // ------------------------------------------------------------------
    // Public entry points
    // ------------------------------------------------------------------

    /// Invokes a named or class constructor of `class` in the forward mode.
    pub fn construct(&self, class: &str, ctor: &str, args: Vec<Value>) -> RtResult<Value> {
        let minfo = self
            .table
            .lookup_method(class, ctor)
            .or_else(|| self.table.lookup_class_constructor(class))
            .cloned()
            .ok_or_else(|| RtError::method_not_found(class, ctor))?;
        // Resolve to the concrete implementation declared on `class` itself if
        // the interface only declares the signature.
        let impl_info = if matches!(minfo.decl.body, MethodBody::Absent) {
            self.find_impl(class, ctor)
                .ok_or_else(|| RtError::new(format!("`{class}.{ctor}` has no implementation")))?
        } else {
            minfo
        };
        self.run_forward(&impl_info, None, args)
    }

    /// Calls a free-standing (top-level) method.
    pub fn call_free(&self, name: &str, args: Vec<Value>) -> RtResult<Value> {
        let minfo = self
            .table
            .lookup_free_method(name)
            .cloned()
            .ok_or_else(|| RtError::method_not_found("<toplevel>", name))?;
        self.run_forward(&minfo, None, args)
    }

    /// Calls an instance method in the forward mode.
    pub fn call_method(&self, receiver: &Value, name: &str, args: Vec<Value>) -> RtResult<Value> {
        let class = receiver
            .class()
            .ok_or_else(|| RtError::new("receiver is not an object"))?
            .to_owned();
        let minfo = self
            .find_impl(&class, name)
            .ok_or_else(|| RtError::method_not_found(&class, name))?;
        self.run_forward(&minfo, Some(receiver.clone()), args)
    }

    /// Enumerates the solutions of matching `value` against the named
    /// constructor `ctor` (the backward mode): each solution is the vector of
    /// values bound to the constructor's parameters.
    pub fn deconstruct(&self, value: &Value, ctor: &str) -> RtResult<Vec<Vec<Value>>> {
        let mut solutions = Vec::new();
        self.deconstruct_each(value, ctor, &mut |row| {
            solutions.push(row.to_vec());
            true
        })?;
        Ok(solutions)
    }

    /// Streaming variant of [`TreeWalker::deconstruct`]: feeds each solution
    /// row to `each` as it is found; `each` returns `false` to stop early.
    /// This is what the pull-based [`crate::Solutions`] adapter drives.
    pub(crate) fn deconstruct_each(
        &self,
        value: &Value,
        ctor: &str,
        each: &mut dyn FnMut(&[Value]) -> bool,
    ) -> RtResult<()> {
        let class = value
            .class()
            .ok_or_else(|| RtError::new("can only deconstruct objects"))?
            .to_owned();
        let minfo = self
            .find_impl(&class, ctor)
            .ok_or_else(|| RtError::method_not_found(&class, ctor))?;
        let params: Vec<String> = minfo.decl.params.iter().map(|p| p.name.clone()).collect();
        let patterns: Vec<Expr> = minfo
            .decl
            .params
            .iter()
            .map(|p| Expr::Decl(p.ty.clone(), p.name.clone()))
            .collect();
        self.match_constructor(value, &minfo, &patterns, &Bindings::new(), 0, &mut |b| {
            let row: Vec<Value> = params
                .iter()
                .map(|p| b.get(p).cloned().unwrap_or(Value::Null))
                .collect();
            each(&row)
        })?;
        Ok(())
    }

    /// Enumerates solutions of a formula — keep-going variant used
    /// internally. Returns `Ok(false)` when `emit` asked to stop.
    fn solve_kg(
        &self,
        env: &Bindings,
        this: Option<&Value>,
        f: &Formula,
        depth: usize,
        emit: &mut dyn FnMut(&Bindings) -> bool,
    ) -> RtResult<bool> {
        let spent = self.steps.fetch_add(1, Ordering::Relaxed) + 1;
        if spent > self.max_steps {
            return Err(RtError::limit(
                "steps",
                self.max_steps,
                "solver step budget exceeded",
            ));
        }
        if spent & 0xFF == 0 {
            if let Some(token) = &self.interrupt {
                if token.load(Ordering::Relaxed) {
                    return Err(RtError::interrupted());
                }
            }
        }
        if depth > self.max_depth {
            return Err(RtError::limit(
                "depth",
                self.max_depth as u64,
                "solver recursion limit exceeded",
            ));
        }
        match f {
            Formula::Bool(true) => Ok(emit(env)),
            Formula::Bool(false) => Ok(true),
            Formula::And(..) => {
                let mut conjuncts = Vec::new();
                flatten_and(f, &mut conjuncts);
                self.solve_conjuncts(env, this, &conjuncts, depth, emit)
            }
            Formula::Or(a, b) | Formula::DisjointOr(a, b) => {
                if !self.solve_kg(env, this, a, depth + 1, emit)? {
                    return Ok(false);
                }
                self.solve_kg(env, this, b, depth + 1, emit)
            }
            Formula::Not(inner) => {
                let mut found = false;
                self.solve_kg(env, this, inner, depth + 1, &mut |_| {
                    found = true;
                    false
                })?;
                if !found {
                    Ok(emit(env))
                } else {
                    Ok(true)
                }
            }
            Formula::Cmp(op, lhs, rhs) => self.solve_cmp(env, this, *op, lhs, rhs, depth, emit),
            Formula::Atom(e) => self.solve_atom(env, this, e, depth, emit),
        }
    }

    /// Tests whether `value` matches the named constructor `ctor` (predicate
    /// use of a named constructor, e.g. `ZNat(0).zero()`).
    pub fn matches_constructor(&self, value: &Value, ctor: &str) -> RtResult<bool> {
        Ok(!self.deconstruct(value, ctor)?.is_empty() || {
            // Zero-parameter constructors produce an empty solution row set
            // only when they fail; re-check via a direct predicate solve.
            let class = value.class().unwrap_or_default().to_owned();
            if let Some(minfo) = self.find_impl(&class, ctor) {
                if minfo.decl.params.is_empty() {
                    let mut found = false;
                    self.match_constructor(value, &minfo, &[], &Bindings::new(), 0, &mut |_| {
                        found = true;
                        false
                    })?;
                    found
                } else {
                    false
                }
            } else {
                false
            }
        })
    }

    /// Deep equality, using equality constructors (§3.2) across different
    /// implementations of the same abstraction.
    pub fn values_equal(&self, a: &Value, b: &Value) -> RtResult<bool> {
        match (a, b) {
            (Value::Obj(oa), Value::Obj(ob)) => {
                if Arc::ptr_eq(oa, ob) {
                    return Ok(true);
                }
                if Arc::ptr_eq(oa.layout(), ob.layout()) {
                    // Shared layout (same program): slot-wise comparison.
                    for (va, vb) in oa.fields().iter().zip(ob.fields()) {
                        if !self.values_equal(va, vb)? {
                            return Ok(false);
                        }
                    }
                    return Ok(true);
                }
                if oa.class() == ob.class() {
                    // Same-named class from a different program: its layout
                    // may order fields differently, so align by name.
                    if oa.fields().len() != ob.fields().len() {
                        return Ok(false);
                    }
                    for (name, va) in oa.layout().field_names().iter().zip(oa.fields()) {
                        let Some(vb) = ob.get(name) else {
                            return Ok(false);
                        };
                        if !self.values_equal(va, vb)? {
                            return Ok(false);
                        }
                    }
                    return Ok(true);
                }
                // Different classes: try an equality constructor on either side.
                for (lhs, rhs) in [(a, b), (b, a)] {
                    let class = lhs.class().unwrap_or_default().to_owned();
                    if let Some(eq) = self.find_impl(&class, "equals") {
                        if let MethodBody::Formula(f) = &eq.decl.body {
                            let mut env = Bindings::new();
                            if let Some(p) = eq.decl.params.first() {
                                env.insert(p.name.clone(), rhs.clone());
                            }
                            let mut found = false;
                            self.solve(&env, Some(lhs), f, 0, &mut |_| {
                                found = true;
                                false
                            })?;
                            return Ok(found);
                        }
                    }
                }
                Ok(false)
            }
            _ => Ok(a == b),
        }
    }

    // ------------------------------------------------------------------
    // Method execution
    // ------------------------------------------------------------------

    /// Finds the implementation of `name` starting from a concrete class
    /// (searching the class itself, then supertypes with bodies).
    fn find_impl(&self, class: &str, name: &str) -> Option<MethodInfo> {
        let info = self.table.type_info(class)?;
        if let Some(m) = info
            .methods
            .iter()
            .find(|m| m.decl.name == name && !matches!(m.decl.body, MethodBody::Absent))
        {
            return Some(m.clone());
        }
        for sup in &info.supertypes {
            if let Some(m) = self.find_impl(sup, name) {
                return Some(m);
            }
        }
        None
    }

    /// Runs a method in its forward mode: parameters bound to `args`.
    pub(crate) fn run_forward(
        &self,
        minfo: &MethodInfo,
        this: Option<Value>,
        args: Vec<Value>,
    ) -> RtResult<Value> {
        if args.len() != minfo.decl.params.len() {
            return Err(RtError::arity_mismatch(
                &minfo.qualified_name(),
                minfo.decl.params.len(),
                args.len(),
            ));
        }
        let mut env = Bindings::new();
        for (p, v) in minfo.decl.params.iter().zip(args) {
            env.insert(p.name.clone(), v);
        }
        match &minfo.decl.body {
            MethodBody::Absent => Err(RtError::new(format!(
                "{} has no implementation",
                minfo.qualified_name()
            ))),
            MethodBody::Formula(f) => {
                if minfo.constructs_owner() {
                    // Construction: the fields of the new object are unknowns
                    // solved by the body, read off into the owner's layout
                    // slots (layout order = field declaration order).
                    let layout = self.table.layout(&minfo.owner).cloned().ok_or_else(|| {
                        RtError::new(format!("unknown owner type {}", minfo.owner))
                    })?;
                    let mut result = None;
                    self.solve(&env, this.as_ref(), f, 0, &mut |b| {
                        // A `result = ...` equation (as in Figure 1) takes
                        // precedence over field solving.
                        result = Some(b.get("result").cloned().unwrap_or_else(|| {
                            let fields: Vec<Value> = layout
                                .field_names()
                                .iter()
                                .map(|fname| b.get(fname).cloned().unwrap_or(Value::Null))
                                .collect();
                            Value::Obj(Arc::new(Object::new(Arc::clone(&layout), fields)))
                        }));
                        false
                    })?;
                    result.ok_or_else(|| {
                        RtError::new(format!("{} failed to match", minfo.qualified_name()))
                    })
                } else {
                    // Ordinary method: solve for `result` (boolean methods
                    // default to "is the body satisfiable").
                    let mut result = None;
                    let mut any = false;
                    self.solve(&env, this.as_ref(), f, 0, &mut |b| {
                        any = true;
                        result = b.get("result").cloned();
                        false
                    })?;
                    match (&minfo.decl.return_type, result) {
                        (Some(Type::Boolean), r) => Ok(r.unwrap_or(Value::Bool(any))),
                        (_, Some(r)) => Ok(r),
                        (Some(Type::Void), None) => Ok(Value::Null),
                        (_, None) if any => Ok(Value::Bool(true)),
                        (_, None) => Err(RtError::new(format!(
                            "{} produced no result",
                            minfo.qualified_name()
                        ))),
                    }
                }
            }
            MethodBody::Block(stmts) => {
                let mut env = env;
                match self.exec_block(&mut env, this.as_ref(), stmts)? {
                    Flow::Return(v) => Ok(v),
                    Flow::Normal => Ok(Value::Null),
                }
            }
        }
    }

    /// Matches `value` against a constructor with argument patterns,
    /// enumerating solutions (the backward / iterative mode).
    fn match_constructor(
        &self,
        value: &Value,
        minfo: &MethodInfo,
        arg_patterns: &[Expr],
        outer: &Bindings,
        depth: usize,
        emit: &mut dyn FnMut(&Bindings) -> bool,
    ) -> RtResult<bool> {
        let MethodBody::Formula(body) = &minfo.decl.body else {
            return Err(RtError::mode_mismatch(
                &minfo.qualified_name(),
                "backward (pattern-matching)",
            ));
        };
        // Solve the body with `this` = the matched value and the parameters
        // unknown; then match each solution's parameter values against the
        // argument patterns.
        let env = Bindings::new();
        let params: Vec<Param> = minfo.decl.params.clone();
        let mut keep_going = true;
        self.solve(&env, Some(value), body, depth + 1, &mut |b| {
            // Values for the constructor parameters under this solution.
            let mut env2 = outer.clone();
            let mut ok = true;
            for (i, p) in params.iter().enumerate() {
                let Some(v) = b.get(&p.name).cloned() else {
                    ok = false;
                    break;
                };
                if let Some(pattern) = arg_patterns.get(i) {
                    match self.match_pattern_first(&env2, None, pattern, &v) {
                        Ok(Some(newenv)) => env2 = newenv,
                        Ok(None) => {
                            ok = false;
                            break;
                        }
                        Err(_) => {
                            ok = false;
                            break;
                        }
                    }
                }
            }
            if ok {
                keep_going = emit(&env2);
            }
            keep_going
        })?;
        Ok(keep_going)
    }

    // ------------------------------------------------------------------
    // Declarative solving
    // ------------------------------------------------------------------

    /// Enumerates solutions of a formula. `emit` returns `false` to stop.
    /// Returns `Ok(())`; enumeration state is carried by the callback.
    pub fn solve(
        &self,
        env: &Bindings,
        this: Option<&Value>,
        f: &Formula,
        depth: usize,
        emit: &mut dyn FnMut(&Bindings) -> bool,
    ) -> RtResult<()> {
        self.solve_kg(env, this, f, depth, emit).map(|_| ())
    }

    /// Solves a conjunction, reordering so that conjuncts whose unknowns can
    /// be bound are solved first (the paper's left-to-right-as-possible
    /// solving order, §2.3).
    fn solve_conjuncts(
        &self,
        env: &Bindings,
        this: Option<&Value>,
        conjuncts: &[Formula],
        depth: usize,
        emit: &mut dyn FnMut(&Bindings) -> bool,
    ) -> RtResult<bool> {
        if conjuncts.is_empty() {
            return Ok(emit(env));
        }
        let ready_idx = conjuncts
            .iter()
            .position(|c| self.conjunct_ready(env, this, c))
            .ok_or_else(|| {
                RtError::new(
                    "formula is not solvable: no conjunct can run with the current bindings",
                )
            })?;
        let chosen = &conjuncts[ready_idx];
        let rest: Vec<Formula> = conjuncts
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != ready_idx)
            .map(|(_, c)| c.clone())
            .collect();
        let mut err = None;
        let kg = self.solve_kg(
            env,
            this,
            chosen,
            depth + 1,
            &mut |e1| match self.solve_conjuncts(e1, this, &rest, depth + 1, emit) {
                Ok(kg) => kg,
                Err(e) => {
                    err = Some(e);
                    false
                }
            },
        )?;
        err.map_or(Ok(kg), Err)
    }

    /// Whether a conjunct can be solved with the current bindings.
    fn conjunct_ready(&self, env: &Bindings, this: Option<&Value>, f: &Formula) -> bool {
        match f {
            Formula::Bool(_) => true,
            Formula::Cmp(CmpOp::Eq, l, r) => {
                self.is_ground(env, this, l) || self.is_ground(env, this, r)
            }
            Formula::Cmp(_, l, r) => self.is_ground(env, this, l) && self.is_ground(env, this, r),
            Formula::Atom(Expr::Call { receiver, .. }) => match receiver {
                Some(r) => self.is_ground(env, this, r),
                None => true,
            },
            Formula::Atom(e) => self.is_ground(env, this, e),
            Formula::Not(inner) => self.conjunct_ready(env, this, inner),
            Formula::And(a, b) | Formula::Or(a, b) | Formula::DisjointOr(a, b) => {
                self.conjunct_ready(env, this, a) && self.conjunct_ready(env, this, b)
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn solve_cmp(
        &self,
        env: &Bindings,
        this: Option<&Value>,
        op: CmpOp,
        lhs: &Expr,
        rhs: &Expr,
        depth: usize,
        emit: &mut dyn FnMut(&Bindings) -> bool,
    ) -> RtResult<bool> {
        if op == CmpOp::Eq {
            // Pattern disjunction distributes over the equation: `x = p1 # p2`
            // tries both alternatives (`|` behaves the same operationally, its
            // disjointness having been verified statically).
            if let Expr::OrPat(a, b) | Expr::DisjointOr(a, b) = rhs {
                if !self.solve_cmp(env, this, CmpOp::Eq, lhs, a, depth + 1, emit)? {
                    return Ok(false);
                }
                return self.solve_cmp(env, this, CmpOp::Eq, lhs, b, depth + 1, emit);
            }
            if let Expr::OrPat(a, b) | Expr::DisjointOr(a, b) = lhs {
                if !self.solve_cmp(env, this, CmpOp::Eq, a, rhs, depth + 1, emit)? {
                    return Ok(false);
                }
                return self.solve_cmp(env, this, CmpOp::Eq, b, rhs, depth + 1, emit);
            }
            // Tuple equations decompose componentwise.
            if let (Expr::Tuple(ls), Expr::Tuple(rs)) = (lhs, rhs) {
                if ls.len() == rs.len() {
                    let conj = ls
                        .iter()
                        .zip(rs.iter())
                        .map(|(l, r)| Formula::Cmp(CmpOp::Eq, l.clone(), r.clone()))
                        .reduce(Formula::and)
                        .unwrap_or(Formula::Bool(true));
                    return self.solve_kg(env, this, &conj, depth + 1, emit);
                }
            }
            let lhs_ground = self.is_ground(env, this, lhs);
            let rhs_ground = self.is_ground(env, this, rhs);
            return match (lhs_ground, rhs_ground) {
                (true, true) => {
                    let a = self.eval(env, this, lhs)?;
                    let b = self.eval(env, this, rhs)?;
                    if self.values_equal(&a, &b)? {
                        Ok(emit(env))
                    } else {
                        Ok(true)
                    }
                }
                (true, false) => {
                    let v = self.eval(env, this, lhs)?;
                    self.match_pattern(env, this, rhs, &v, depth, emit)
                }
                (false, true) => {
                    let v = self.eval(env, this, rhs)?;
                    self.match_pattern(env, this, lhs, &v, depth, emit)
                }
                (false, false) => Err(RtError::new(format!(
                    "equation with unknowns on both sides is not solvable: {lhs:?} = {rhs:?}"
                ))),
            };
        }
        // Ordering comparisons require both sides ground.
        let a = self.eval(env, this, lhs)?;
        let b = self.eval(env, this, rhs)?;
        let (x, y) = match (a.as_int(), b.as_int()) {
            (Some(x), Some(y)) => (x, y),
            _ => {
                if op == CmpOp::Ne {
                    if !self.values_equal(&a, &b)? {
                        return Ok(emit(env));
                    }
                    return Ok(true);
                }
                return Err(RtError::new("ordering comparison on non-integers"));
            }
        };
        let holds = match op {
            CmpOp::Le => x <= y,
            CmpOp::Lt => x < y,
            CmpOp::Ge => x >= y,
            CmpOp::Gt => x > y,
            CmpOp::Ne => x != y,
            CmpOp::Eq => x == y,
        };
        if holds {
            Ok(emit(env))
        } else {
            Ok(true)
        }
    }

    fn solve_atom(
        &self,
        env: &Bindings,
        this: Option<&Value>,
        e: &Expr,
        depth: usize,
        emit: &mut dyn FnMut(&Bindings) -> bool,
    ) -> RtResult<bool> {
        match e {
            // A named-constructor predicate / pattern on the current receiver,
            // possibly binding unknown arguments: `succ(Nat y)`, `n.zero()`.
            Expr::Call {
                receiver,
                name,
                args,
            } => {
                let subject: Value = match receiver {
                    Some(r) if self.is_ground(env, this, r) => self.eval(env, this, r)?,
                    None => this
                        .cloned()
                        .ok_or_else(|| RtError::new("predicate call without a receiver"))?,
                    Some(_) => {
                        return Err(RtError::new("predicate receiver is not ground"));
                    }
                };
                match &subject {
                    Value::Obj(o) => {
                        let class = o.class().to_owned();
                        let Some(minfo) = self.find_impl(&class, name) else {
                            return Err(RtError::method_not_found(&class, name));
                        };
                        self.match_constructor(&subject, &minfo, args, env, depth, emit)
                    }
                    Value::Bool(b) => {
                        if *b {
                            Ok(emit(env))
                        } else {
                            Ok(true)
                        }
                    }
                    other => Err(RtError::new(format!(
                        "cannot use `{other}` as a predicate receiver"
                    ))),
                }
            }
            Expr::Decl(..) => {
                // An uninitialized declaration binds nothing useful at runtime.
                Ok(emit(env))
            }
            other => {
                let v = self.eval(env, this, other)?;
                if v.as_bool() == Some(true) {
                    Ok(emit(env))
                } else {
                    Ok(true)
                }
            }
        }
    }

    /// Matches a pattern against a known value, binding declared variables.
    fn match_pattern(
        &self,
        env: &Bindings,
        this: Option<&Value>,
        pattern: &Expr,
        value: &Value,
        depth: usize,
        emit: &mut dyn FnMut(&Bindings) -> bool,
    ) -> RtResult<bool> {
        match pattern {
            Expr::Wildcard => Ok(emit(env)),
            Expr::Decl(ty, name) => {
                if let Type::Named(t) = ty {
                    if let Some(class) = value.class() {
                        if !self.table.is_subtype(class, t) {
                            return Ok(true);
                        }
                    }
                }
                let mut e2 = env.clone();
                if name != "_" {
                    e2.insert(name.clone(), value.clone());
                }
                Ok(emit(&e2))
            }
            Expr::Var(name) => match env.get(name) {
                Some(bound) => {
                    if self.values_equal(bound, value)? {
                        Ok(emit(env))
                    } else {
                        Ok(true)
                    }
                }
                None => {
                    let mut e2 = env.clone();
                    e2.insert(name.clone(), value.clone());
                    Ok(emit(&e2))
                }
            },
            Expr::Result => match env.get("result") {
                Some(bound) => {
                    if self.values_equal(bound, value)? {
                        Ok(emit(env))
                    } else {
                        Ok(true)
                    }
                }
                None => {
                    let mut e2 = env.clone();
                    e2.insert("result".into(), value.clone());
                    Ok(emit(&e2))
                }
            },
            Expr::As(a, b) => {
                let mut err = None;
                let kg =
                    self.match_pattern(env, this, a, value, depth + 1, &mut |e1| match self
                        .match_pattern(e1, this, b, value, depth + 1, emit)
                    {
                        Ok(kg) => kg,
                        Err(e) => {
                            err = Some(e);
                            false
                        }
                    })?;
                err.map_or(Ok(kg), Err)
            }
            Expr::OrPat(a, b) | Expr::DisjointOr(a, b) => {
                if !self.match_pattern(env, this, a, value, depth + 1, emit)? {
                    return Ok(false);
                }
                self.match_pattern(env, this, b, value, depth + 1, emit)
            }
            Expr::Where(p, f) => {
                let mut err = None;
                let kg =
                    self.match_pattern(env, this, p, value, depth + 1, &mut |e1| match self
                        .solve_kg(e1, this, f, depth + 1, emit)
                    {
                        Ok(kg) => kg,
                        Err(e) => {
                            err = Some(e);
                            false
                        }
                    })?;
                err.map_or(Ok(kg), Err)
            }
            Expr::Call {
                receiver,
                name,
                args,
            } => {
                // Constructor pattern: dispatch on the matched value's class
                // (or the statically named class for `Class(...)` patterns).
                let class = match receiver {
                    Some(r) => match r.as_ref() {
                        Expr::Var(c) if self.table.type_info(c).is_some() => c.clone(),
                        _ => value.class().unwrap_or_default().to_owned(),
                    },
                    None => {
                        if self.table.type_info(name).is_some() {
                            name.clone()
                        } else {
                            value.class().unwrap_or_default().to_owned()
                        }
                    }
                };
                let target = value.clone();
                let Some(minfo) = self
                    .find_impl(&class, name)
                    .or_else(|| self.table.lookup_class_constructor(&class).cloned())
                else {
                    return Err(RtError::method_not_found(&class, name));
                };
                // If the runtime class differs and an equality constructor
                // exists, convert first.
                if let Some(vclass) = target.class() {
                    if !self.table.is_subtype(vclass, &class) {
                        if let Some(converted) = self.convert_via_equals(&class, &target)? {
                            return self
                                .match_constructor(&converted, &minfo, args, env, depth, emit);
                        }
                        return Ok(true);
                    }
                }
                self.match_constructor(&target, &minfo, args, env, depth, emit)
            }
            Expr::Binary(op, a, b) => {
                // Invertible integer arithmetic: exactly one non-ground side.
                let Some(target) = value.as_int() else {
                    return Ok(true);
                };
                let a_ground = self.is_ground(env, this, a);
                let b_ground = self.is_ground(env, this, b);
                match (op, a_ground, b_ground) {
                    (_, true, true) => {
                        let v = self.eval(env, this, pattern)?;
                        if self.values_equal(&v, value)? {
                            Ok(emit(env))
                        } else {
                            Ok(true)
                        }
                    }
                    (BinOp::Add, true, false) => {
                        let av = self.eval(env, this, a)?.as_int().unwrap_or(0);
                        self.match_pattern(env, this, b, &Value::Int(target - av), depth + 1, emit)
                    }
                    (BinOp::Add, false, true) => {
                        let bv = self.eval(env, this, b)?.as_int().unwrap_or(0);
                        self.match_pattern(env, this, a, &Value::Int(target - bv), depth + 1, emit)
                    }
                    (BinOp::Sub, false, true) => {
                        let bv = self.eval(env, this, b)?.as_int().unwrap_or(0);
                        self.match_pattern(env, this, a, &Value::Int(target + bv), depth + 1, emit)
                    }
                    (BinOp::Sub, true, false) => {
                        let av = self.eval(env, this, a)?.as_int().unwrap_or(0);
                        self.match_pattern(env, this, b, &Value::Int(av - target), depth + 1, emit)
                    }
                    _ => Err(RtError::new(
                        "cannot invert this arithmetic pattern at run time",
                    )),
                }
            }
            Expr::Neg(a) => {
                let Some(target) = value.as_int() else {
                    return Ok(true);
                };
                self.match_pattern(env, this, a, &Value::Int(-target), depth + 1, emit)
            }
            other => {
                let v = self.eval(env, this, other)?;
                if self.values_equal(&v, value)? {
                    Ok(emit(env))
                } else {
                    Ok(true)
                }
            }
        }
    }

    /// First solution of a pattern match, if any.
    fn match_pattern_first(
        &self,
        env: &Bindings,
        this: Option<&Value>,
        pattern: &Expr,
        value: &Value,
    ) -> RtResult<Option<Bindings>> {
        let mut found = None;
        self.match_pattern(env, this, pattern, value, 0, &mut |b| {
            found = Some(b.clone());
            false
        })?;
        Ok(found)
    }

    /// Converts `value` into an instance of `class` using `class`'s equality
    /// constructor (operationally: find a `class` object equal to `value`).
    fn convert_via_equals(&self, class: &str, value: &Value) -> RtResult<Option<Value>> {
        let Some(eq) = self.find_impl(class, "equals") else {
            return Ok(None);
        };
        let MethodBody::Formula(body) = &eq.decl.body else {
            return Ok(None);
        };
        let mut env = Bindings::new();
        if let Some(p) = eq.decl.params.first() {
            env.insert(p.name.clone(), value.clone());
        }
        // Without full constraint solving over object fields we support the
        // common case: the equality constructor's body only uses named
        // constructors of `class` (e.g. `zero() && n.zero() | succ(y) && n.succ(y)`),
        // which we can run by matching on the argument and reconstructing.
        let mut result = None;
        self.try_equals_reconstruction(class, body, &env, &mut result)?;
        Ok(result)
    }

    /// Handles equality-constructor bodies of the shape used in the paper
    /// (Figure 4): a disjunction of `ctor_i(..) && n.ctor_i(..)` conjuncts.
    fn try_equals_reconstruction(
        &self,
        class: &str,
        body: &Formula,
        env: &Bindings,
        result: &mut Option<Value>,
    ) -> RtResult<()> {
        match body {
            Formula::Or(a, b) | Formula::DisjointOr(a, b) => {
                self.try_equals_reconstruction(class, a, env, result)?;
                if result.is_none() {
                    self.try_equals_reconstruction(class, b, env, result)?;
                }
                Ok(())
            }
            Formula::And(a, b) => {
                // Expect `ctor(args...) && n.ctor(args...)`.
                if let (Formula::Atom(own), Formula::Atom(other)) = (a.as_ref(), b.as_ref()) {
                    if let (
                        Expr::Call {
                            name: own_name,
                            args: own_args,
                            receiver: None,
                        },
                        Expr::Call {
                            name: other_name,
                            args: other_args,
                            receiver: Some(recv),
                        },
                    ) = (own, other)
                    {
                        if own_name == other_name {
                            if let Expr::Var(param) = recv.as_ref() {
                                if let Some(target) = env.get(param) {
                                    // Deconstruct the target with the shared
                                    // constructor, then rebuild in `class`.
                                    if let Ok(rows) = self.deconstruct(target, other_name) {
                                        if let Some(row) = rows.first() {
                                            let rebuilt =
                                                self.construct(class, own_name, row.clone())?;
                                            let _ = (own_args, other_args);
                                            *result = Some(rebuilt);
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
                Ok(())
            }
            Formula::Atom(Expr::Call {
                receiver: Some(recv),
                name,
                ..
            }) => {
                // `n.zero()` style: the whole body is a predicate on the other
                // object; rebuild the matching nullary constructor.
                if let Expr::Var(param) = recv.as_ref() {
                    if let Some(target) = env.get(param) {
                        if self.matches_constructor(target, name)? {
                            *result = Some(self.construct(class, name, Vec::new())?);
                        }
                    }
                }
                Ok(())
            }
            _ => Ok(()),
        }
    }

    // ------------------------------------------------------------------
    // Ground evaluation
    // ------------------------------------------------------------------

    /// Whether every variable mentioned by the expression is bound.
    fn is_ground(&self, env: &Bindings, this: Option<&Value>, e: &Expr) -> bool {
        match e {
            Expr::IntLit(_) | Expr::BoolLit(_) | Expr::StrLit(_) | Expr::Null => true,
            Expr::This => this.is_some(),
            Expr::Result => env.contains_key("result"),
            Expr::Wildcard | Expr::Decl(..) => false,
            Expr::Var(name) => {
                env.contains_key(name)
                    || this
                        .and_then(|t| t.class())
                        .map(|c| self.table.field_type(c, name).is_some())
                        .unwrap_or(false)
                    || self.table.type_info(name).is_some()
            }
            Expr::Field(b, _) => self.is_ground(env, this, b),
            Expr::Call { receiver, args, .. } => {
                receiver
                    .as_deref()
                    .map(|r| self.is_ground(env, this, r))
                    .unwrap_or(true)
                    && args.iter().all(|a| self.is_ground(env, this, a))
            }
            Expr::Index(a, b) | Expr::Binary(_, a, b) => {
                self.is_ground(env, this, a) && self.is_ground(env, this, b)
            }
            Expr::NewArray(_, a) | Expr::Neg(a) => self.is_ground(env, this, a),
            Expr::Tuple(xs) => xs.iter().all(|x| self.is_ground(env, this, x)),
            Expr::As(a, b) | Expr::OrPat(a, b) | Expr::DisjointOr(a, b) => {
                self.is_ground(env, this, a) && self.is_ground(env, this, b)
            }
            Expr::Where(p, _) => self.is_ground(env, this, p),
        }
    }

    /// Evaluates a ground expression.
    pub fn eval(&self, env: &Bindings, this: Option<&Value>, e: &Expr) -> RtResult<Value> {
        match e {
            Expr::IntLit(n) => Ok(Value::Int(*n)),
            Expr::BoolLit(b) => Ok(Value::Bool(*b)),
            Expr::StrLit(s) => Ok(Value::Str(s.clone())),
            Expr::Null => Ok(Value::Null),
            Expr::This => this
                .cloned()
                .ok_or_else(|| RtError::new("`this` is not in scope")),
            Expr::Result => env
                .get("result")
                .cloned()
                .ok_or_else(|| RtError::new("`result` is not bound")),
            Expr::Var(name) => {
                if let Some(v) = env.get(name) {
                    return Ok(v.clone());
                }
                if let Some(Value::Obj(o)) = this {
                    if let Some(v) = o.get(name) {
                        return Ok(v.clone());
                    }
                }
                Err(RtError::new(format!("unbound variable `{name}`")))
            }
            Expr::Field(base, field) => {
                let b = self.eval(env, this, base)?;
                match b {
                    Value::Obj(o) => o
                        .get(field)
                        .cloned()
                        .ok_or_else(|| RtError::new(format!("no field `{field}`"))),
                    other => Err(RtError::new(format!("field access on non-object {other}"))),
                }
            }
            Expr::Binary(op, a, b) => {
                let x = self
                    .eval(env, this, a)?
                    .as_int()
                    .ok_or_else(|| RtError::new("arithmetic on non-integer"))?;
                let y = self
                    .eval(env, this, b)?
                    .as_int()
                    .ok_or_else(|| RtError::new("arithmetic on non-integer"))?;
                let v = match op {
                    BinOp::Add => x + y,
                    BinOp::Sub => x - y,
                    BinOp::Mul => x * y,
                    BinOp::Div => {
                        if y == 0 {
                            return Err(RtError::new("division by zero"));
                        }
                        x / y
                    }
                    BinOp::Rem => {
                        if y == 0 {
                            return Err(RtError::new("remainder by zero"));
                        }
                        x % y
                    }
                };
                Ok(Value::Int(v))
            }
            Expr::Neg(a) => {
                let x = self
                    .eval(env, this, a)?
                    .as_int()
                    .ok_or_else(|| RtError::new("negation of non-integer"))?;
                Ok(Value::Int(-x))
            }
            Expr::Call {
                receiver,
                name,
                args,
            } => {
                let arg_values: RtResult<Vec<Value>> =
                    args.iter().map(|a| self.eval(env, this, a)).collect();
                let arg_values = arg_values?;
                match receiver.as_deref() {
                    Some(Expr::Var(class)) if self.table.type_info(class).is_some() => {
                        self.construct(class, name, arg_values)
                    }
                    Some(r) => {
                        let recv = self.eval(env, this, r)?;
                        self.call_method(&recv, name, arg_values)
                    }
                    None => {
                        if self.table.type_info(name).is_some() {
                            // Class constructor `ZNat(2)`.
                            let ctor = self
                                .table
                                .lookup_class_constructor(name)
                                .cloned()
                                .ok_or_else(|| {
                                    RtError::new(format!("no class constructor for `{name}`"))
                                })?;
                            return self.run_forward(&ctor, None, arg_values);
                        }
                        if self.table.lookup_free_method(name).is_some() {
                            return self.call_free(name, arg_values);
                        }
                        if let Some(t) = this {
                            return self.call_method(t, name, arg_values);
                        }
                        Err(RtError::new(format!("cannot resolve call `{name}`")))
                    }
                }
            }
            Expr::Tuple(_) => Err(RtError::new("tuples are not first-class values")),
            other => Err(RtError::new(format!("cannot evaluate {other:?}"))),
        }
    }

    // ------------------------------------------------------------------
    // Statements
    // ------------------------------------------------------------------

    fn exec_block(
        &self,
        env: &mut Bindings,
        this: Option<&Value>,
        stmts: &[Stmt],
    ) -> RtResult<Flow> {
        for stmt in stmts {
            match self.exec_stmt(env, this, stmt)? {
                Flow::Normal => {}
                r @ Flow::Return(_) => return Ok(r),
            }
        }
        Ok(Flow::Normal)
    }

    fn exec_stmt(&self, env: &mut Bindings, this: Option<&Value>, stmt: &Stmt) -> RtResult<Flow> {
        match stmt {
            Stmt::Let(f) => {
                let mut solution = None;
                self.solve(env, this, f, 0, &mut |b| {
                    solution = Some(b.clone());
                    false
                })?;
                match solution {
                    Some(b) => {
                        *env = b;
                        Ok(Flow::Normal)
                    }
                    None => Err(RtError::new("let statement failed to match")),
                }
            }
            Stmt::Switch {
                scrutinees,
                cases,
                default,
            } => {
                let values: RtResult<Vec<Value>> =
                    scrutinees.iter().map(|s| self.eval(env, this, s)).collect();
                let values = values?;
                for (idx, case) in cases.iter().enumerate() {
                    let mut bound = Some(env.clone());
                    for (p, v) in case.patterns.iter().zip(values.iter()) {
                        bound = match bound {
                            Some(b) => self.match_pattern_first(&b, this, p, v)?,
                            None => None,
                        };
                    }
                    if let Some(b) = bound {
                        // Fall through to the first non-empty body.
                        let mut body_idx = idx;
                        while body_idx < cases.len() && cases[body_idx].body.is_empty() {
                            body_idx += 1;
                        }
                        let body: &[Stmt] = if body_idx < cases.len() {
                            &cases[body_idx].body
                        } else if let Some(d) = default {
                            d
                        } else {
                            return Err(RtError::new("switch fell off the end"));
                        };
                        let mut benv = b;
                        return self.exec_block(&mut benv, this, body);
                    }
                }
                if let Some(d) = default {
                    return self.exec_block(env, this, d);
                }
                Err(RtError::new("non-exhaustive switch at run time"))
            }
            Stmt::Cond { arms, else_arm } => {
                for (f, body) in arms {
                    let mut solution = None;
                    self.solve(env, this, f, 0, &mut |b| {
                        solution = Some(b.clone());
                        false
                    })?;
                    if let Some(mut b) = solution {
                        return self.exec_block(&mut b, this, body);
                    }
                }
                if let Some(body) = else_arm {
                    return self.exec_block(env, this, body);
                }
                Err(RtError::new("non-exhaustive cond at run time"))
            }
            Stmt::If { cond, then, els } => {
                let mut solution = None;
                self.solve(env, this, cond, 0, &mut |b| {
                    solution = Some(b.clone());
                    false
                })?;
                match solution {
                    Some(mut b) => self.exec_block(&mut b, this, then),
                    None => match els {
                        Some(e) => self.exec_block(env, this, e),
                        None => Ok(Flow::Normal),
                    },
                }
            }
            Stmt::Foreach { formula, body } => {
                let mut solutions = Vec::new();
                self.solve(env, this, formula, 0, &mut |b| {
                    solutions.push(b.clone());
                    true
                })?;
                for solution in solutions {
                    // The loop body sees the solution's bindings plus any
                    // updates made by earlier iterations to outer variables.
                    let mut b = solution;
                    for (k, v) in env.iter() {
                        b.entry(k.clone()).or_insert_with(|| v.clone());
                    }
                    // Outer updates win over stale solution copies.
                    for (k, v) in env.iter() {
                        if b.get(k) != Some(v) && !formula_binds(formula, k) {
                            b.insert(k.clone(), v.clone());
                        }
                    }
                    let flow = self.exec_block(&mut b, this, body)?;
                    // Propagate updates to variables that already existed.
                    for (k, v) in b.iter() {
                        if env.contains_key(k) {
                            env.insert(k.clone(), v.clone());
                        }
                    }
                    if let Flow::Return(v) = flow {
                        return Ok(Flow::Return(v));
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::While { cond, body } => {
                let mut guard = 0;
                loop {
                    guard += 1;
                    if guard > 1_000_000 {
                        return Err(RtError::new("while loop exceeded iteration budget"));
                    }
                    let mut solution = None;
                    self.solve(env, this, cond, 0, &mut |b| {
                        solution = Some(b.clone());
                        false
                    })?;
                    match solution {
                        Some(b) => {
                            *env = b;
                            if let Flow::Return(v) = self.exec_block(env, this, body)? {
                                return Ok(Flow::Return(v));
                            }
                        }
                        None => return Ok(Flow::Normal),
                    }
                }
            }
            Stmt::Return(e) => {
                let v = match e {
                    Some(expr) => self.eval(env, this, expr)?,
                    None => Value::Null,
                };
                Ok(Flow::Return(v))
            }
            Stmt::Assign(lhs, rhs) => {
                let v = self.eval(env, this, rhs)?;
                match lhs {
                    Expr::Var(name) => {
                        env.insert(name.clone(), v);
                        Ok(Flow::Normal)
                    }
                    _ => Err(RtError::new("unsupported assignment target")),
                }
            }
            Stmt::ExprStmt(e) => {
                let _ = self.eval(env, this, e)?;
                Ok(Flow::Normal)
            }
            Stmt::Block(stmts) => {
                let mut inner = env.clone();
                let flow = self.exec_block(&mut inner, this, stmts)?;
                for (k, v) in inner.iter() {
                    if env.contains_key(k) {
                        env.insert(k.clone(), v.clone());
                    }
                }
                Ok(flow)
            }
        }
    }
}

/// Whether a formula declares (binds) the given variable name.
fn formula_binds(f: &Formula, name: &str) -> bool {
    f.declared_vars().iter().any(|(_, n)| n == name)
}

/// Flattens nested conjunctions into a list of conjuncts.
fn flatten_and(f: &Formula, out: &mut Vec<Formula>) {
    match f {
        Formula::And(a, b) => {
            flatten_and(a, out);
            flatten_and(b, out);
        }
        other => out.push(other.clone()),
    }
}
