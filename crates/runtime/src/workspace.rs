//! The incremental embedding surface: a [`Workspace`] holds a program
//! across edits and rebuilds only what changed.
//!
//! [`Compiler`](crate::Compiler) compiles one source string into one
//! [`Program`] and forgets everything. A `Workspace` is its long-lived
//! successor: it keeps the previous generation's class table, query plans,
//! verification results and solver sessions, so [`Workspace::update_source`]
//! / [`Workspace::update_method`] produce the next [`Program`] generation by
//! re-lowering, re-verifying, re-analyzing and re-compiling **only the
//! methods the edit actually touched** — everything else is shared with the
//! previous generation by `Arc`.
//!
//! ```text
//! Workspace ──load──▶ Generation₀ ──update_source──▶ Generation₁ ── ...
//!                        │ program()                    │ program()
//!                        ▼                              ▼
//!                     Program  (plans shared by Arc)  Program
//! ```
//!
//! # The red/green invariants
//!
//! Incrementality is fingerprint-driven (see [`jmatch_core::incremental`]).
//! Every method unit gets:
//!
//! * a **signature fingerprint** — name, kind, modes, parameters, return
//!   type, `matches`/`ensures` clauses: everything another method's
//!   verification can observe;
//! * a **body fingerprint** — the implementation, which *only* that
//!   method's own lowering and verification observe;
//! * an **environment key** — the fixpoint closure of the signature
//!   fingerprints and type shapes (supertypes, invariants, field types)
//!   the unit's specs can reach. The verifier unrolls *specifications*
//!   (invariants, `matches`, `ensures`), never bodies, so this closure is
//!   exactly what a verification result depends on besides the body;
//! * a **verify key** = H(environment, body). A unit whose verify key
//!   survived the edit is **green**: its cached diagnostics are replayed
//!   verbatim and zero solver queries run. A unit whose verify key changed
//!   is **red** and re-verifies — which is why editing a `matches` clause
//!   re-verifies the *callers* whose environment closure contains it,
//!   while a body-only edit re-verifies just the edited method.
//!
//! Red units whose environment key survived keep their incremental solver
//! session (term store, learned lemmas, canonicalized-VC result cache), so
//! even the re-verification of an edited body replays cached VC verdicts
//! for the parts of the method that did not change.
//!
//! Plans, analysis and bytecode follow the same discipline one level up:
//! when the **structure hash** (type shapes plus every unit's signature)
//! survived, plan ids, interned symbols and dispatch tables are stable, so
//! clean plans are `Arc`-shared, dead-arm analysis carries forward, and
//! bytecode is re-emitted only for changed plans and for plans whose
//! recorded [`jmatch_core::MethodPlan::bc_deps`] (inlining and
//! constructor-match dependencies) intersect the changed set.
//!
//! # Parallel verification
//!
//! Red units are sharded across per-worker solver sessions
//! ([`jmatch_smt::map_ordered`]). Each unit owns its session and results
//! are reassembled in declaration order, so diagnostics are deterministic
//! and **identical at any worker count**. The worker count comes from
//! [`Workspace::verify_threads`], defaulting to the `JMATCH_PAR_THREADS`
//! environment variable — the same knob the OR-parallel query pool and
//! [`Program::query_many`](crate::Program::query_many) honor (see
//! [`jmatch_smt::pool::configured_threads`], the single source of truth).
//!
//! # Example
//!
//! ```
//! use jmatch_runtime::{args, Value, Workspace};
//!
//! let mut ws = Workspace::new().verify(false);
//! let gen0 = ws.load(
//!     "static int double(int x) { return x + x; }
//!      static int quad(int x) { return double(double(x)); }",
//! )?;
//! assert_eq!(
//!     gen0.program().free_method("quad")?.call(None, args![3])?,
//!     Value::Int(12),
//! );
//!
//! // Edit one body: only `double` (and its inliner `quad`) rebuild.
//! let gen1 = ws.update_method(None, "double", "static int double(int x) { return 2 * x; }")?;
//! assert!(!gen1.report().full);
//! assert_eq!(
//!     gen1.program().free_method("quad")?.call(None, args![3])?,
//!     Value::Int(12),
//! );
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use crate::api::Limits;
use crate::{Engine, Program, RtError, RtResult};
use jmatch_core::diag::Diagnostics;
use jmatch_core::incremental::Fingerprints;
use jmatch_core::lower::{PlanOptions, ProgramPlan};
use jmatch_core::table::ClassTable;
use jmatch_core::verify::VerifyOptions;
use jmatch_core::{CompileOptions, SessionStats, VerifyEngine};
use jmatch_syntax::ast::{self, Decl};
use jmatch_syntax::{parse_program, ParseError};
use std::sync::Arc;

// ---------------------------------------------------------------------------
// RebuildReport / Generation
// ---------------------------------------------------------------------------

/// What one workspace rebuild actually did — the accounting a hot-reload
/// server or an IDE loop surfaces to its user.
#[derive(Debug, Clone, Default)]
pub struct RebuildReport {
    /// `true` when the whole program was rebuilt from scratch (first load,
    /// or an edit that changed the program structure: signatures, types,
    /// the method set, or compile options).
    pub full: bool,
    /// Qualified names of the methods whose compiled plan changed (re-
    /// lowered, re-analyzed, or bytecode re-emitted), in declaration order.
    pub recompiled: Vec<String>,
    /// Number of method plans shared untouched from the previous
    /// generation.
    pub reused_plans: usize,
    /// Qualified names of the methods that went back to the solver, in
    /// declaration order. Empty when verification is off.
    pub reverified: Vec<String>,
    /// Number of methods whose cached verification diagnostics were
    /// replayed without any solver work.
    pub reused_verifications: usize,
    /// Solver work this rebuild spent (deltas, not session lifetime
    /// totals): `verify_stats.solver_queries` is the counter the
    /// incremental tests assert on.
    pub verify_stats: SessionStats,
}

/// One program generation produced by a [`Workspace`] rebuild: the
/// ready-to-query [`Program`] plus the [`RebuildReport`] describing how it
/// was produced.
#[derive(Debug, Clone)]
pub struct Generation {
    program: Program,
    report: RebuildReport,
}

impl Generation {
    /// The compiled program of this generation (cheap to clone; unchanged
    /// plans are shared with the previous generation by `Arc`).
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Consumes the generation, keeping only the program.
    pub fn into_program(self) -> Program {
        self.program
    }

    /// What this rebuild re-lowered, re-verified and reused.
    pub fn report(&self) -> &RebuildReport {
        &self.report
    }
}

// ---------------------------------------------------------------------------
// Workspace
// ---------------------------------------------------------------------------

/// The previous generation's artifacts, carried across edits.
#[derive(Debug)]
struct State {
    ast: ast::Program,
    table: Arc<ClassTable>,
    plan: Arc<ProgramPlan>,
    fps: Fingerprints,
    plan_opts: PlanOptions,
}

/// Fluent, long-lived successor to [`Compiler`](crate::Compiler): an
/// editable program whose rebuilds are incremental.
///
/// Configure it with the same fluent setters `Compiler` had (plus
/// [`Workspace::verify_threads`]), [`Workspace::load`] the initial source,
/// then feed edits through [`Workspace::update_source`] (whole new source)
/// or [`Workspace::update_method`] (one method declaration). Every call
/// returns a [`Generation`]; see the [module docs](self) for the red/green
/// rules that decide how much of the program each edit rebuilds.
///
/// One-shot compilation is [`Workspace::compile`] — a workspace with a
/// single generation, which is exactly what the deprecated
/// [`Compiler::compile`](crate::Compiler::compile) now does under the hood.
#[derive(Debug)]
pub struct Workspace {
    verify: bool,
    engine: Engine,
    bytecode: bool,
    analysis: bool,
    max_expansion_depth: u32,
    limits: Limits,
    verify_threads: usize,
    state: Option<State>,
    verifier: Option<VerifyEngine>,
}

impl Workspace {
    /// A workspace with verification on, the plan engine, and default
    /// limits — the same defaults `Compiler::new()` had.
    pub fn new() -> Self {
        Workspace {
            verify: true,
            engine: Engine::Plan,
            bytecode: true,
            analysis: true,
            max_expansion_depth: CompileOptions::default().max_expansion_depth,
            limits: Limits::default(),
            verify_threads: 0,
            state: None,
            verifier: None,
        }
    }

    /// Whether to run the static verification passes (exhaustiveness,
    /// redundancy, totality, disjointness, multiplicity).
    pub fn verify(mut self, on: bool) -> Self {
        self.verify = on;
        self
    }

    /// Which execution engine queries and calls run on.
    pub fn engine(mut self, engine: Engine) -> Self {
        self.engine = engine;
        self
    }

    /// Whether lowering compiles each solved form to flat register
    /// bytecode (on by default).
    pub fn bytecode(mut self, on: bool) -> Self {
        self.bytecode = on;
        self
    }

    /// Whether lowering runs the plan-analysis pass (determinism
    /// inference, dead-alternative pruning, IR lints; on by default).
    pub fn analysis(mut self, on: bool) -> Self {
        self.analysis = on;
        self
    }

    /// Iterative-deepening bound for the verifier's lazy expansion (§6.2).
    pub fn max_expansion_depth(mut self, depth: u32) -> Self {
        self.max_expansion_depth = depth;
        self
    }

    /// Default work ceilings for every query and call of the programs this
    /// workspace produces.
    pub fn limits(mut self, limits: Limits) -> Self {
        self.limits = limits;
        self
    }

    /// Worker threads for parallel verification of red units. `0` (the
    /// default) defers to the `JMATCH_PAR_THREADS` environment variable
    /// via [`jmatch_smt::pool::configured_threads`] — the same
    /// configuration the OR-parallel query pool uses. Any worker count
    /// produces identical diagnostics in identical order.
    pub fn verify_threads(mut self, threads: usize) -> Self {
        self.verify_threads = threads;
        self
    }

    /// Parses, builds and verifies `source` from scratch, resetting any
    /// previous generation **and** the cached verification state. The
    /// baseline every later [`Workspace::update_source`] /
    /// [`Workspace::update_method`] is incremental against.
    ///
    /// # Errors
    ///
    /// Returns a [`ParseError`] if the source is not syntactically valid;
    /// semantic problems are reported through
    /// [`Program::diagnostics`] of the generation's program.
    pub fn load(&mut self, source: &str) -> Result<Generation, ParseError> {
        let ast = parse_program(source)?;
        self.state = None;
        self.verifier = None;
        Ok(self.rebuild(ast))
    }

    /// One-shot convenience: [`Workspace::load`] and keep only the
    /// program. This is the whole of what the deprecated
    /// [`Compiler::compile`](crate::Compiler::compile) does.
    ///
    /// # Errors
    ///
    /// Returns a [`ParseError`] if the source is not syntactically valid.
    pub fn compile(&mut self, source: &str) -> Result<Program, ParseError> {
        self.load(source).map(Generation::into_program)
    }

    /// Rebuilds against the new full `source`, reusing everything the
    /// edit did not touch (first call behaves like [`Workspace::load`]).
    ///
    /// # Errors
    ///
    /// Returns a [`ParseError`] if the source is not syntactically valid —
    /// the previous generation stays current in that case.
    pub fn update_source(&mut self, source: &str) -> Result<Generation, ParseError> {
        let ast = parse_program(source)?;
        Ok(self.rebuild(ast))
    }

    /// Replaces (or adds) **one method declaration** and rebuilds
    /// incrementally. `owner` is the declaring class/interface, or `None`
    /// for a free-standing method; `source` is the full replacement
    /// declaration, e.g. `"static int f(int x) { return x; }"` or, with an
    /// owner, `"constructor zero() returns() ( val = 0 )"`.
    ///
    /// If a method of that name already exists on the owner its first
    /// declaration is replaced (a body-only edit keeps the whole rest of
    /// the program green); otherwise the method is appended.
    ///
    /// # Errors
    ///
    /// Fails when no program is loaded, `owner` names no declared type, or
    /// `source` does not parse as exactly one method declaration. The
    /// previous generation stays current on error.
    pub fn update_method(
        &mut self,
        owner: Option<&str>,
        name: &str,
        source: &str,
    ) -> RtResult<Generation> {
        let state = self
            .state
            .as_ref()
            .ok_or_else(|| RtError::new("no program loaded: call `Workspace::load` first"))?;
        let decl = parse_method_decl(owner, source)?;
        if decl.name != name {
            return Err(RtError::new(format!(
                "replacement declares `{}`, not `{name}`",
                decl.name
            )));
        }
        let mut ast = state.ast.clone();
        splice_method(&mut ast, owner, name, decl)?;
        Ok(self.rebuild(ast))
    }

    /// The class table of the current generation, if any program is
    /// loaded.
    pub fn table(&self) -> Option<&Arc<ClassTable>> {
        self.state.as_ref().map(|s| &s.table)
    }

    // -- internals -----------------------------------------------------------

    fn plan_options(&self) -> PlanOptions {
        PlanOptions {
            bytecode: self.bytecode,
            analysis: self.analysis,
            ..PlanOptions::default()
        }
    }

    fn verify_options(&self) -> VerifyOptions {
        VerifyOptions {
            max_expansion_depth: self.max_expansion_depth,
            report_unknown: false,
            session_reuse: true,
        }
    }

    /// The one rebuild pipeline: resolve → fingerprint → (incremental)
    /// verify → (incremental) lower/analyze/bytecode → assemble.
    fn rebuild(&mut self, ast: ast::Program) -> Generation {
        let prev = self.state.take();
        let mut diagnostics = Diagnostics::new();
        let table = match &prev {
            Some(st) => ClassTable::build_reusing(&ast, &mut diagnostics, &st.table),
            None => ClassTable::build(&ast, &mut diagnostics),
        };
        let fps = Fingerprints::of(&table);
        let plan_opts = self.plan_options();
        let mut report = RebuildReport::default();

        if self.verify {
            let want = self.verify_options();
            let reusable = matches!(&self.verifier, Some(v) if *v.options() == want);
            if !reusable {
                self.verifier = Some(VerifyEngine::new(want));
            }
            let engine = self.verifier.as_mut().expect("verifier just installed");
            let (vdiags, stats) = engine.verify(&table, &fps, self.verify_threads);
            diagnostics.extend(vdiags);
            report.reverified = stats.reverified;
            report.reused_verifications = stats.reused;
            report.verify_stats = stats.stats;
        } else {
            self.verifier = None;
        }

        let incremental = prev
            .as_ref()
            .filter(|st| st.plan_opts == plan_opts && st.fps.structure == fps.structure);
        let plan = match incremental {
            Some(st) => {
                let dirty: Vec<bool> = st
                    .fps
                    .units
                    .iter()
                    .zip(&fps.units)
                    .map(|(old, new)| old.body != new.body)
                    .collect();
                let next = ProgramPlan::recompile(&st.plan, Arc::clone(&table), &dirty, plan_opts);
                for (pid, mp) in next.methods().iter().enumerate() {
                    if Arc::ptr_eq(mp, &st.plan.methods()[pid]) {
                        report.reused_plans += 1;
                    } else {
                        report.recompiled.push(mp.info.qualified_name());
                    }
                }
                next
            }
            None => {
                report.full = true;
                let plan = ProgramPlan::compile_with(Arc::clone(&table), plan_opts);
                report.recompiled = plan
                    .methods()
                    .iter()
                    .map(|mp| mp.info.qualified_name())
                    .collect();
                plan
            }
        };

        let program = Program::assemble(
            Arc::clone(&plan),
            self.engine,
            self.limits,
            Arc::new(diagnostics),
        );
        self.state = Some(State {
            ast,
            table,
            plan,
            fps,
            plan_opts,
        });
        Generation { program, report }
    }
}

impl Default for Workspace {
    fn default() -> Self {
        Workspace::new()
    }
}

/// Parses `source` as exactly one method declaration, in the context of
/// `owner` (so constructors and class-constructor kinds resolve the same
/// way they would inside the real declaration).
fn parse_method_decl(owner: Option<&str>, source: &str) -> RtResult<ast::MethodDecl> {
    let parse_err = |e: ParseError| RtError::new(format!("method does not parse: {e}"));
    match owner {
        None => {
            let prog = parse_program(source).map_err(parse_err)?;
            match <[Decl; 1]>::try_from(prog.decls) {
                Ok([Decl::Method(m)]) => Ok(m),
                _ => Err(RtError::new(
                    "expected exactly one free-standing method declaration",
                )),
            }
        }
        Some(owner) => {
            let wrapped = format!("class {owner} {{ {source} }}");
            let prog = parse_program(&wrapped).map_err(parse_err)?;
            match <[Decl; 1]>::try_from(prog.decls) {
                Ok([Decl::Class(c)]) if c.methods.len() == 1 && c.fields.is_empty() => {
                    Ok(c.methods.into_iter().next().expect("checked length"))
                }
                _ => Err(RtError::new("expected exactly one method declaration")),
            }
        }
    }
}

/// Replaces the first same-named method of `owner` (appending when absent).
fn splice_method(
    ast: &mut ast::Program,
    owner: Option<&str>,
    name: &str,
    decl: ast::MethodDecl,
) -> RtResult<()> {
    let methods: &mut Vec<ast::MethodDecl> = match owner {
        None => {
            for d in ast.decls.iter_mut() {
                if let Decl::Method(m) = d {
                    if m.name == name {
                        *m = decl;
                        return Ok(());
                    }
                }
            }
            ast.decls.push(Decl::Method(decl));
            return Ok(());
        }
        Some(owner) => ast
            .decls
            .iter_mut()
            .find_map(|d| match d {
                Decl::Class(c) if c.name == owner => Some(&mut c.methods),
                Decl::Interface(i) if i.name == owner => Some(&mut i.methods),
                _ => None,
            })
            .ok_or_else(|| RtError::new(format!("no class or interface named `{owner}`")))?,
    };
    match methods.iter_mut().find(|m| m.name == name) {
        Some(slot) => *slot = decl,
        None => methods.push(decl),
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args;
    use crate::Value;

    const BASE: &str = r#"
        interface Nat {
            invariant(this = zero() | succ(_));
            constructor zero() returns();
            constructor succ(Nat n) returns(n);
        }
        class PZero implements Nat {
            constructor zero() returns() ( true )
            constructor succ(Nat n) returns(n) ( false )
        }
        class PSucc implements Nat {
            Nat pred;
            constructor zero() returns() ( false )
            constructor succ(Nat n) returns(n) ( pred = n )
        }
        static Nat pred(Nat m) {
            switch (m) {
                case succ(Nat k): return k;
                case zero(): return m;
            }
        }
        static int answer() { return 42; }
    "#;

    #[test]
    fn first_load_is_a_full_build() {
        let mut ws = Workspace::new();
        let g = ws.load(BASE).unwrap();
        assert!(g.report().full);
        assert_eq!(g.report().reused_plans, 0);
        assert!(g.report().reverified.len() > 1);
        let answer = g.program().free_method("answer").unwrap();
        assert_eq!(answer.call(None, args![]).unwrap(), Value::Int(42));
    }

    #[test]
    fn identical_source_reuses_everything() {
        let mut ws = Workspace::new();
        ws.load(BASE).unwrap();
        let g = ws.update_source(BASE).unwrap();
        assert!(!g.report().full);
        assert!(g.report().recompiled.is_empty(), "{:?}", g.report());
        assert!(g.report().reverified.is_empty(), "{:?}", g.report());
        assert_eq!(g.report().verify_stats.solver_queries, 0);
    }

    #[test]
    fn body_edit_rebuilds_one_method_and_matches_scratch() {
        let mut ws = Workspace::new();
        let g0 = ws.load(BASE).unwrap();
        let g1 = ws
            .update_method(None, "answer", "static int answer() { return 6 * 7; }")
            .unwrap();
        assert!(!g1.report().full);
        assert_eq!(g1.report().recompiled, vec!["<toplevel>.answer"]);
        assert_eq!(g1.report().reverified, vec!["<toplevel>.answer"]);
        assert_eq!(g1.report().reused_plans, g0.report().recompiled.len() - 1);
        // Diagnostics identical to a from-scratch build of the edited source.
        let scratch = Workspace::new()
            .compile(&BASE.replace("return 42;", "return 6 * 7;"))
            .unwrap();
        assert_eq!(g1.program().diagnostics(), scratch.diagnostics());
        let answer = g1.program().free_method("answer").unwrap();
        assert_eq!(answer.call(None, args![]).unwrap(), Value::Int(42));
        // The old generation still runs the old body.
        let old = g0.program().free_method("answer").unwrap();
        assert_eq!(old.call(None, args![]).unwrap(), Value::Int(42));
    }

    #[test]
    fn method_add_falls_back_to_full_rebuild_and_works() {
        let mut ws = Workspace::new().verify(false);
        ws.load(BASE).unwrap();
        let g = ws
            .update_method(None, "twice", "static int twice(int x) { return x + x; }")
            .unwrap();
        assert!(g.report().full);
        let twice = g.program().free_method("twice").unwrap();
        assert_eq!(twice.call(None, args![21]).unwrap(), Value::Int(42));
    }

    #[test]
    fn update_method_rejects_unknown_owner_and_bad_source() {
        let mut ws = Workspace::new().verify(false);
        assert!(ws
            .update_method(None, "f", "static int f() { return 1; }")
            .is_err());
        ws.load(BASE).unwrap();
        assert!(ws
            .update_method(Some("NoSuch"), "f", "int f() { return 1; }")
            .is_err());
        assert!(ws.update_method(None, "f", "not a method").is_err());
        assert!(ws
            .update_method(None, "f", "static int g() { return 1; }")
            .is_err());
    }

    #[test]
    fn instance_method_edit_via_owner() {
        let mut ws = Workspace::new().verify(false);
        ws.load(BASE).unwrap();
        let g = ws
            .update_method(
                Some("PSucc"),
                "succ",
                "constructor succ(Nat n) returns(n) ( pred = n )",
            )
            .unwrap();
        // Identical declaration: nothing recompiles.
        assert!(!g.report().full);
        assert!(g.report().recompiled.is_empty());
    }
}
