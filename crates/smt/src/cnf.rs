//! Tseitin transformation from term-level formulas to CNF clauses.
//!
//! The encoder is persistent: it caches the propositional literal chosen for
//! every subformula (hash-consing in [`crate::TermStore`] makes structurally
//! equal formulas share the same [`crate::TermId`]), so lemmas added lazily by
//! theory plugins reuse the atom variables introduced earlier. This is what
//! lets the DPLL(T) loop add blocking clauses and expansion lemmas
//! incrementally without re-encoding the whole problem.
//!
//! ## Scoped encodings
//!
//! Theory **atoms** (variables, applications, comparisons, equalities) have
//! no defining clauses; their propositional variables are allocated once and
//! cached forever, which keeps atom identity stable across an entire solver
//! session (blocking clauses and models keep referring to the same
//! variables).
//!
//! **Composite** formulas need Tseitin definition clauses. When encoded
//! while an assertion scope is open ([`Encoder::push_scope`]), those clauses
//! are added scoped — they retire with the scope, and the cache entry is
//! dropped at [`Encoder::pop_scope`] so a later use re-encodes the formula.
//! Queries in a long-lived session therefore pay only for their own boolean
//! structure instead of dragging every previous query's definitions through
//! the SAT core. Encoded outside any scope, definitions are permanent,
//! matching the classic one-shot behavior.

use crate::sat::{Lit, PVar, SatSolver};
use crate::term::{TermData, TermId, TermStore};
use std::collections::HashMap;

/// Persistent Tseitin encoder.
///
/// A cache entry's lifetime is tracked by `scope_log` alone: composite
/// formulas encoded inside a scope are logged there and purged on
/// [`Encoder::pop_scope`]; everything else (atoms, constants, composites
/// encoded outside any scope) stays cached forever.
#[derive(Debug, Default)]
pub struct Encoder {
    lit_of: HashMap<TermId, Lit>,
    atom_of_var: HashMap<PVar, TermId>,
    true_lit: Option<Lit>,
    /// Composite formulas encoded per open scope (for cache purging).
    scope_log: Vec<Vec<TermId>>,
}

impl Encoder {
    /// Creates an empty encoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Opens an encoding scope: definition clauses of composite formulas
    /// encoded from now on live until the matching [`Encoder::pop_scope`].
    /// Must be kept in lockstep with [`SatSolver::push`].
    pub fn push_scope(&mut self) {
        self.scope_log.push(Vec::new());
    }

    /// Closes the innermost encoding scope, forgetting the cached literals
    /// whose definitions retire with it.
    ///
    /// # Panics
    ///
    /// Panics if no scope is open.
    pub fn pop_scope(&mut self) {
        let retired = self
            .scope_log
            .pop()
            .expect("Encoder::pop_scope without a matching push_scope");
        for t in retired {
            self.lit_of.remove(&t);
        }
    }

    fn in_scope(&self) -> bool {
        !self.scope_log.is_empty()
    }

    /// Caches `lit` for `t`; inside a scope the entry is logged for purging
    /// at the matching `pop_scope`.
    fn remember(&mut self, t: TermId, lit: Lit) -> Lit {
        self.lit_of.insert(t, lit);
        if self.in_scope() {
            self.scope_log.last_mut().expect("scope is open").push(t);
        }
        lit
    }

    /// The literal that is constrained to be true (used for boolean constants).
    fn true_literal(&mut self, sat: &mut SatSolver) -> Lit {
        if let Some(l) = self.true_lit {
            return l;
        }
        let v = sat.new_var();
        let l = Lit::pos(v);
        sat.add_clause(&[l]);
        self.true_lit = Some(l);
        l
    }

    /// Returns the propositional variable standing for a theory atom, if the
    /// atom has been encoded.
    pub fn var_for_atom(&self, atom: TermId) -> Option<PVar> {
        self.lit_of.get(&atom).map(|l| l.var())
    }

    /// Returns the theory atom corresponding to a propositional variable, if
    /// that variable encodes an atom (rather than an internal Tseitin node).
    pub fn atom_for_var(&self, var: PVar) -> Option<TermId> {
        self.atom_of_var.get(&var).copied()
    }

    /// Iterates over all `(atom, var)` pairs encoded so far.
    pub fn atom_vars(&self) -> impl Iterator<Item = (TermId, PVar)> + '_ {
        self.atom_of_var.iter().map(|(&v, &t)| (t, v))
    }

    /// Adds a definition clause with the lifetime of the current mode.
    fn def_clause(&self, sat: &mut SatSolver, lits: &[Lit]) {
        if self.in_scope() {
            sat.add_scoped_clause(lits);
        } else {
            sat.add_clause(lits);
        }
    }

    /// Encodes `t` and returns a literal that is equivalent to it (within the
    /// current scope, if one is open).
    ///
    /// # Panics
    ///
    /// Panics if `t` is not boolean-sorted.
    pub fn encode(&mut self, store: &TermStore, sat: &mut SatSolver, t: TermId) -> Lit {
        assert!(
            store.sort(t).is_bool(),
            "cannot encode non-boolean term {}",
            store.display(t)
        );
        if let Some(&l) = self.lit_of.get(&t) {
            return l;
        }
        match store.data(t).clone() {
            TermData::BoolConst(true) => self.true_literal(sat),
            TermData::BoolConst(false) => self.true_literal(sat).negate(),
            TermData::Not(inner) => {
                // No clauses of its own: do not cache, so the lifetime is
                // exactly the inner encoding's.
                self.encode(store, sat, inner).negate()
            }
            TermData::Var(..)
            | TermData::App(..)
            | TermData::Le(..)
            | TermData::Lt(..)
            | TermData::Eq(..) => {
                // Theory atoms have no defining clauses; their variables are
                // allocated once and stay valid for the whole session.
                let v = sat.new_var();
                self.atom_of_var.insert(v, t);
                let lit = Lit::pos(v);
                self.lit_of.insert(t, lit);
                lit
            }
            TermData::And(xs) => {
                let ls: Vec<Lit> = xs.iter().map(|&x| self.encode(store, sat, x)).collect();
                let p = Lit::pos(sat.new_var());
                // p -> each x
                for &l in &ls {
                    self.def_clause(sat, &[p.negate(), l]);
                }
                // all x -> p
                let mut big: Vec<Lit> = ls.iter().map(|l| l.negate()).collect();
                big.push(p);
                self.def_clause(sat, &big);
                self.remember(t, p)
            }
            TermData::Or(xs) => {
                let ls: Vec<Lit> = xs.iter().map(|&x| self.encode(store, sat, x)).collect();
                let p = Lit::pos(sat.new_var());
                // each x -> p
                for &l in &ls {
                    self.def_clause(sat, &[l.negate(), p]);
                }
                // p -> some x
                let mut big: Vec<Lit> = ls.clone();
                big.push(p.negate());
                self.def_clause(sat, &big);
                self.remember(t, p)
            }
            TermData::Implies(a, b) => {
                let la = self.encode(store, sat, a);
                let lb = self.encode(store, sat, b);
                let p = Lit::pos(sat.new_var());
                // p -> (a -> b)
                self.def_clause(sat, &[p.negate(), la.negate(), lb]);
                // (a -> b) -> p, i.e. (~a -> p) and (b -> p)
                self.def_clause(sat, &[la, p]);
                self.def_clause(sat, &[lb.negate(), p]);
                self.remember(t, p)
            }
            TermData::Iff(a, b) => {
                let la = self.encode(store, sat, a);
                let lb = self.encode(store, sat, b);
                let p = Lit::pos(sat.new_var());
                self.def_clause(sat, &[p.negate(), la.negate(), lb]);
                self.def_clause(sat, &[p.negate(), la, lb.negate()]);
                self.def_clause(sat, &[p, la, lb]);
                self.def_clause(sat, &[p, la.negate(), lb.negate()]);
                self.remember(t, p)
            }
            other => panic!(
                "non-boolean construct reached the encoder: {:?} in {}",
                other,
                store.display(t)
            ),
        }
    }

    /// Encodes `t` and asserts it as a permanent unit clause. Outside any
    /// scope, definitions are permanent too (the classic one-shot behavior).
    pub fn assert_formula(&mut self, store: &TermStore, sat: &mut SatSolver, t: TermId) {
        let l = self.encode(store, sat, t);
        sat.add_clause(&[l]);
    }

    /// Encodes `t` and asserts it as a unit clause scoped to the innermost
    /// open assertion scope (see [`SatSolver::add_scoped_clause`]): the
    /// assertion — and the definitions encoded inside the scope — retires
    /// when that scope pops, while atom variables (and any clauses the solver
    /// learned that do not depend on the scope) survive for later queries.
    pub fn assert_scoped_formula(&mut self, store: &TermStore, sat: &mut SatSolver, t: TermId) {
        let l = self.encode(store, sat, t);
        sat.add_scoped_clause(&[l]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sat::SatOutcome;
    use crate::sorts::Sort;

    fn setup() -> (TermStore, SatSolver, Encoder) {
        (TermStore::new(), SatSolver::new(), Encoder::new())
    }

    #[test]
    fn encode_and_or_not() {
        let (mut store, mut sat, mut enc) = setup();
        let p = store.var("p", Sort::Bool);
        let q = store.var("q", Sort::Bool);
        let np = store.not(p);
        let f = store.and2(np, q);
        enc.assert_formula(&store, &mut sat, f);
        assert_eq!(sat.solve(), SatOutcome::Sat);
        let vp = enc.var_for_atom(p).unwrap();
        let vq = enc.var_for_atom(q).unwrap();
        assert_eq!(sat.value(vp), Some(false));
        assert_eq!(sat.value(vq), Some(true));
    }

    #[test]
    fn encode_unsat_conjunction() {
        let (mut store, mut sat, mut enc) = setup();
        let p = store.var("p", Sort::Bool);
        let np = store.not(p);
        let f = store.and2(p, np);
        enc.assert_formula(&store, &mut sat, f);
        assert_eq!(sat.solve(), SatOutcome::Unsat);
    }

    #[test]
    fn encode_implication_chain() {
        let (mut store, mut sat, mut enc) = setup();
        let p = store.var("p", Sort::Bool);
        let q = store.var("q", Sort::Bool);
        let r = store.var("r", Sort::Bool);
        let i1 = store.implies(p, q);
        let i2 = store.implies(q, r);
        let nr = store.not(r);
        let f = store.and(vec![p, i1, i2, nr]);
        enc.assert_formula(&store, &mut sat, f);
        assert_eq!(sat.solve(), SatOutcome::Unsat);
    }

    #[test]
    fn encode_iff() {
        let (mut store, mut sat, mut enc) = setup();
        let p = store.var("p", Sort::Bool);
        let q = store.var("q", Sort::Bool);
        let f = store.iff(p, q);
        let np = store.not(p);
        let g = store.and(vec![f, np, q]);
        enc.assert_formula(&store, &mut sat, g);
        assert_eq!(sat.solve(), SatOutcome::Unsat);
    }

    #[test]
    fn constants_encode_correctly() {
        let (mut store, mut sat, mut enc) = setup();
        let t = store.tt();
        let p = store.var("p", Sort::Bool);
        let f = store.implies(t, p);
        enc.assert_formula(&store, &mut sat, f);
        assert_eq!(sat.solve(), SatOutcome::Sat);
        let vp = enc.var_for_atom(p).unwrap();
        assert_eq!(sat.value(vp), Some(true));
    }

    #[test]
    fn atoms_are_registered_in_reverse_map() {
        let (mut store, mut sat, mut enc) = setup();
        let x = store.var("x", Sort::Int);
        let zero = store.int(0);
        let atom = store.le(zero, x);
        enc.assert_formula(&store, &mut sat, atom);
        let v = enc.var_for_atom(atom).unwrap();
        assert_eq!(enc.atom_for_var(v), Some(atom));
        assert_eq!(enc.atom_vars().count(), 1);
    }

    #[test]
    fn incremental_encoding_reuses_literals() {
        let (mut store, mut sat, mut enc) = setup();
        let p = store.var("p", Sort::Bool);
        let q = store.var("q", Sort::Bool);
        let f = store.or2(p, q);
        let l1 = enc.encode(&store, &mut sat, f);
        let l2 = enc.encode(&store, &mut sat, f);
        assert_eq!(l1, l2);
    }

    #[test]
    fn scoped_definitions_are_purged_and_reencoded() {
        let (mut store, mut sat, mut enc) = setup();
        let p = store.var("p", Sort::Bool);
        let q = store.var("q", Sort::Bool);
        let f = store.and2(p, q);

        sat.push();
        enc.push_scope();
        let l1 = enc.encode(&store, &mut sat, f);
        enc.assert_scoped_formula(&store, &mut sat, f);
        assert_eq!(sat.solve(), SatOutcome::Sat);
        enc.pop_scope();
        sat.pop();

        // The composite's cache entry retired with the scope; atoms did not.
        let vp = enc.var_for_atom(p).unwrap();
        sat.push();
        enc.push_scope();
        let l2 = enc.encode(&store, &mut sat, f);
        assert_ne!(l1, l2, "scoped composite must be re-encoded");
        assert_eq!(enc.var_for_atom(p), Some(vp), "atom variables are stable");
        enc.assert_scoped_formula(&store, &mut sat, f);
        let nq = store.not(q);
        enc.assert_scoped_formula(&store, &mut sat, nq);
        assert_eq!(sat.solve(), SatOutcome::Unsat);
        enc.pop_scope();
        sat.pop();
        assert_eq!(sat.solve(), SatOutcome::Sat);
    }

    #[test]
    fn atoms_stay_permanent_across_scopes() {
        let (mut store, mut sat, mut enc) = setup();
        let x = store.var("x", Sort::Int);
        let zero = store.int(0);
        let atom = store.le(zero, x);
        sat.push();
        enc.push_scope();
        let l1 = enc.encode(&store, &mut sat, atom);
        enc.pop_scope();
        sat.pop();
        let l2 = enc.encode(&store, &mut sat, atom);
        assert_eq!(l1, l2);
    }
}
