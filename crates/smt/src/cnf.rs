//! Tseitin transformation from term-level formulas to CNF clauses.
//!
//! The encoder is persistent: it caches the propositional literal chosen for
//! every subformula (hash-consing in [`crate::TermStore`] makes structurally
//! equal formulas share the same [`crate::TermId`]), so lemmas added lazily by
//! theory plugins reuse the atom variables introduced earlier. This is what
//! lets the DPLL(T) loop add blocking clauses and expansion lemmas
//! incrementally without re-encoding the whole problem.

use crate::sat::{Lit, PVar, SatSolver};
use crate::term::{TermData, TermId, TermStore};
use std::collections::HashMap;

/// Persistent Tseitin encoder.
#[derive(Debug, Default)]
pub struct Encoder {
    lit_of: HashMap<TermId, Lit>,
    atom_of_var: HashMap<PVar, TermId>,
    true_lit: Option<Lit>,
}

impl Encoder {
    /// Creates an empty encoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// The literal that is constrained to be true (used for boolean constants).
    fn true_literal(&mut self, sat: &mut SatSolver) -> Lit {
        if let Some(l) = self.true_lit {
            return l;
        }
        let v = sat.new_var();
        let l = Lit::pos(v);
        sat.add_clause(&[l]);
        self.true_lit = Some(l);
        l
    }

    /// Returns the propositional variable standing for a theory atom, if the
    /// atom has been encoded.
    pub fn var_for_atom(&self, atom: TermId) -> Option<PVar> {
        self.lit_of.get(&atom).map(|l| l.var())
    }

    /// Returns the theory atom corresponding to a propositional variable, if
    /// that variable encodes an atom (rather than an internal Tseitin node).
    pub fn atom_for_var(&self, var: PVar) -> Option<TermId> {
        self.atom_of_var.get(&var).copied()
    }

    /// Iterates over all `(atom, var)` pairs encoded so far.
    pub fn atom_vars(&self) -> impl Iterator<Item = (TermId, PVar)> + '_ {
        self.atom_of_var.iter().map(|(&v, &t)| (t, v))
    }

    /// Encodes `t` and returns a literal that is equivalent to it.
    ///
    /// # Panics
    ///
    /// Panics if `t` is not boolean-sorted.
    pub fn encode(&mut self, store: &TermStore, sat: &mut SatSolver, t: TermId) -> Lit {
        assert!(
            store.sort(t).is_bool(),
            "cannot encode non-boolean term {}",
            store.display(t)
        );
        if let Some(&l) = self.lit_of.get(&t) {
            return l;
        }
        let lit = match store.data(t).clone() {
            TermData::BoolConst(true) => self.true_literal(sat),
            TermData::BoolConst(false) => self.true_literal(sat).negate(),
            TermData::Not(inner) => {
                let l = self.encode(store, sat, inner);
                l.negate()
            }
            TermData::Var(..) | TermData::App(..) | TermData::Le(..) | TermData::Lt(..)
            | TermData::Eq(..) => {
                let v = sat.new_var();
                self.atom_of_var.insert(v, t);
                Lit::pos(v)
            }
            TermData::And(xs) => {
                let ls: Vec<Lit> = xs.iter().map(|&x| self.encode(store, sat, x)).collect();
                let p = Lit::pos(sat.new_var());
                // p -> each x
                for &l in &ls {
                    sat.add_clause(&[p.negate(), l]);
                }
                // all x -> p
                let mut big: Vec<Lit> = ls.iter().map(|l| l.negate()).collect();
                big.push(p);
                sat.add_clause(&big);
                p
            }
            TermData::Or(xs) => {
                let ls: Vec<Lit> = xs.iter().map(|&x| self.encode(store, sat, x)).collect();
                let p = Lit::pos(sat.new_var());
                // each x -> p
                for &l in &ls {
                    sat.add_clause(&[l.negate(), p]);
                }
                // p -> some x
                let mut big: Vec<Lit> = ls.clone();
                big.push(p.negate());
                sat.add_clause(&big);
                p
            }
            TermData::Implies(a, b) => {
                let la = self.encode(store, sat, a);
                let lb = self.encode(store, sat, b);
                let p = Lit::pos(sat.new_var());
                // p -> (a -> b)
                sat.add_clause(&[p.negate(), la.negate(), lb]);
                // (a -> b) -> p, i.e. (~a -> p) and (b -> p)
                sat.add_clause(&[la, p]);
                sat.add_clause(&[lb.negate(), p]);
                p
            }
            TermData::Iff(a, b) => {
                let la = self.encode(store, sat, a);
                let lb = self.encode(store, sat, b);
                let p = Lit::pos(sat.new_var());
                sat.add_clause(&[p.negate(), la.negate(), lb]);
                sat.add_clause(&[p.negate(), la, lb.negate()]);
                sat.add_clause(&[p, la, lb]);
                sat.add_clause(&[p, la.negate(), lb.negate()]);
                p
            }
            other => panic!(
                "non-boolean construct reached the encoder: {:?} in {}",
                other,
                store.display(t)
            ),
        };
        self.lit_of.insert(t, lit);
        lit
    }

    /// Encodes `t` and asserts it as a unit clause.
    pub fn assert_formula(&mut self, store: &TermStore, sat: &mut SatSolver, t: TermId) {
        let l = self.encode(store, sat, t);
        sat.add_clause(&[l]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sat::SatOutcome;
    use crate::sorts::Sort;

    fn setup() -> (TermStore, SatSolver, Encoder) {
        (TermStore::new(), SatSolver::new(), Encoder::new())
    }

    #[test]
    fn encode_and_or_not() {
        let (mut store, mut sat, mut enc) = setup();
        let p = store.var("p", Sort::Bool);
        let q = store.var("q", Sort::Bool);
        let np = store.not(p);
        let f = store.and2(np, q);
        enc.assert_formula(&store, &mut sat, f);
        assert_eq!(sat.solve(), SatOutcome::Sat);
        let vp = enc.var_for_atom(p).unwrap();
        let vq = enc.var_for_atom(q).unwrap();
        assert_eq!(sat.value(vp), Some(false));
        assert_eq!(sat.value(vq), Some(true));
    }

    #[test]
    fn encode_unsat_conjunction() {
        let (mut store, mut sat, mut enc) = setup();
        let p = store.var("p", Sort::Bool);
        let np = store.not(p);
        let f = store.and2(p, np);
        enc.assert_formula(&store, &mut sat, f);
        assert_eq!(sat.solve(), SatOutcome::Unsat);
    }

    #[test]
    fn encode_implication_chain() {
        let (mut store, mut sat, mut enc) = setup();
        let p = store.var("p", Sort::Bool);
        let q = store.var("q", Sort::Bool);
        let r = store.var("r", Sort::Bool);
        let i1 = store.implies(p, q);
        let i2 = store.implies(q, r);
        let nr = store.not(r);
        let f = store.and(vec![p, i1, i2, nr]);
        enc.assert_formula(&store, &mut sat, f);
        assert_eq!(sat.solve(), SatOutcome::Unsat);
    }

    #[test]
    fn encode_iff() {
        let (mut store, mut sat, mut enc) = setup();
        let p = store.var("p", Sort::Bool);
        let q = store.var("q", Sort::Bool);
        let f = store.iff(p, q);
        let np = store.not(p);
        let g = store.and(vec![f, np, q]);
        enc.assert_formula(&store, &mut sat, g);
        assert_eq!(sat.solve(), SatOutcome::Unsat);
    }

    #[test]
    fn constants_encode_correctly() {
        let (mut store, mut sat, mut enc) = setup();
        let t = store.tt();
        let p = store.var("p", Sort::Bool);
        let f = store.implies(t, p);
        enc.assert_formula(&store, &mut sat, f);
        assert_eq!(sat.solve(), SatOutcome::Sat);
        let vp = enc.var_for_atom(p).unwrap();
        assert_eq!(sat.value(vp), Some(true));
    }

    #[test]
    fn atoms_are_registered_in_reverse_map() {
        let (mut store, mut sat, mut enc) = setup();
        let x = store.var("x", Sort::Int);
        let zero = store.int(0);
        let atom = store.le(zero, x);
        enc.assert_formula(&store, &mut sat, atom);
        let v = enc.var_for_atom(atom).unwrap();
        assert_eq!(enc.atom_for_var(v), Some(atom));
        assert_eq!(enc.atom_vars().count(), 1);
    }

    #[test]
    fn incremental_encoding_reuses_literals() {
        let (mut store, mut sat, mut enc) = setup();
        let p = store.var("p", Sort::Bool);
        let q = store.var("q", Sort::Bool);
        let f = store.or2(p, q);
        let l1 = enc.encode(&store, &mut sat, f);
        let l2 = enc.encode(&store, &mut sat, f);
        assert_eq!(l1, l2);
    }
}
