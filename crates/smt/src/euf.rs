//! Congruence closure for equality and uninterpreted functions (EUF).
//!
//! JMatch verification conditions use uninterpreted object sorts for every
//! reference type and uninterpreted functions for method results that the
//! verifier treats abstractly. This module checks a set of equality and
//! predicate-application assignments for consistency:
//!
//! * asserted equalities are merged with union-find,
//! * congruence (`x = y  ⟹  f(x) = f(y)`) is propagated to a fixed point,
//! * asserted disequalities and distinct integer constants must not end up in
//!   the same class, and
//! * congruent uninterpreted *predicate* applications must not be assigned
//!   opposite truth values.
//!
//! The check is used as a post-model filter in the DPLL(T) loop: a conflict
//! produces a blocking clause over the participating atoms.

use crate::term::{TermData, TermId, TermStore};
use std::collections::{HashMap, HashSet};

/// Result of an EUF consistency check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EufResult {
    /// The assignments are consistent with the theory of equality.
    Consistent,
    /// The assignments are inconsistent; the payload lists the atoms involved.
    Inconsistent(Vec<TermId>),
}

/// An assignment of a truth value to an equality or predicate atom.
pub type AtomAssignment = (TermId, bool);

#[derive(Debug, Default)]
struct UnionFind {
    parent: HashMap<TermId, TermId>,
}

impl UnionFind {
    fn find(&mut self, x: TermId) -> TermId {
        let p = *self.parent.entry(x).or_insert(x);
        if p == x {
            return x;
        }
        let root = self.find(p);
        self.parent.insert(x, root);
        root
    }

    fn union(&mut self, a: TermId, b: TermId) -> bool {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            return false;
        }
        self.parent.insert(ra, rb);
        true
    }
}

/// Checks consistency of equality/predicate assignments.
///
/// `assignments` should contain:
/// * `Eq` atoms (of any sort) with their truth values, and
/// * boolean `App` atoms (uninterpreted predicates) with their truth values.
///
/// Other atoms are ignored so the caller can pass its full atom assignment.
pub fn check(store: &TermStore, assignments: &[AtomAssignment]) -> EufResult {
    let mut uf = UnionFind::default();
    let mut equalities: Vec<(TermId, TermId, TermId)> = Vec::new(); // (a, b, origin atom)
    let mut disequalities: Vec<(TermId, TermId, TermId)> = Vec::new();
    let mut predicates: Vec<(TermId, bool)> = Vec::new();
    let mut relevant_terms: HashSet<TermId> = HashSet::new();

    for &(atom, value) in assignments {
        match store.data(atom) {
            TermData::Eq(a, b) => {
                collect_subterms(store, *a, &mut relevant_terms);
                collect_subterms(store, *b, &mut relevant_terms);
                if value {
                    equalities.push((*a, *b, atom));
                } else {
                    disequalities.push((*a, *b, atom));
                }
            }
            TermData::App(..) => {
                collect_subterms(store, atom, &mut relevant_terms);
                predicates.push((atom, value));
            }
            _ => {}
        }
    }

    // Distinct integer constants are never equal; seed them as relevant so a
    // merged class containing two different constants is detected.
    let int_constants: Vec<TermId> = relevant_terms
        .iter()
        .copied()
        .filter(|t| matches!(store.data(*t), TermData::IntConst(_)))
        .collect();

    // Assert the equalities.
    for &(a, b, _) in &equalities {
        uf.union(a, b);
    }

    // Congruence closure to a fixed point.
    let apps: Vec<TermId> = relevant_terms
        .iter()
        .copied()
        .filter(|t| matches!(store.data(*t), TermData::App(..)))
        .collect();
    loop {
        let mut changed = false;
        // Group applications by (symbol, arity, representative args).
        let mut table: HashMap<(usize, Vec<TermId>), TermId> = HashMap::new();
        for &app in &apps {
            if let TermData::App(sym, args, _) = store.data(app) {
                let key_args: Vec<TermId> = args.iter().map(|&a| uf.find(a)).collect();
                let key = (sym.index(), key_args);
                if let Some(&other) = table.get(&key) {
                    if uf.find(other) != uf.find(app) {
                        uf.union(other, app);
                        changed = true;
                    }
                } else {
                    table.insert(key, app);
                }
            }
        }
        if !changed {
            break;
        }
    }

    let involved: Vec<TermId> = assignments.iter().map(|&(a, _)| a).collect();

    // Check disequalities.
    for &(a, b, _) in &disequalities {
        if uf.find(a) == uf.find(b) {
            return EufResult::Inconsistent(involved);
        }
    }

    // Check distinct integer constants.
    for i in 0..int_constants.len() {
        for j in (i + 1)..int_constants.len() {
            if uf.find(int_constants[i]) == uf.find(int_constants[j]) {
                return EufResult::Inconsistent(involved);
            }
        }
    }

    // Check predicate congruence: two congruent predicate applications must
    // not carry opposite truth values.
    for i in 0..predicates.len() {
        for j in (i + 1)..predicates.len() {
            let (p, vp) = predicates[i];
            let (q, vq) = predicates[j];
            if vp != vq && congruent(store, &mut uf, p, q) {
                return EufResult::Inconsistent(involved);
            }
        }
    }

    EufResult::Consistent
}

/// Computes equivalence-class representatives for the object-sorted terms
/// mentioned by a *consistent* set of assignments. Used for model building.
pub fn classes(store: &TermStore, assignments: &[AtomAssignment]) -> HashMap<TermId, u32> {
    let mut uf = UnionFind::default();
    let mut relevant: HashSet<TermId> = HashSet::new();
    for &(atom, value) in assignments {
        if let TermData::Eq(a, b) = store.data(atom) {
            collect_subterms(store, *a, &mut relevant);
            collect_subterms(store, *b, &mut relevant);
            if value {
                uf.union(*a, *b);
            }
        } else if matches!(store.data(atom), TermData::App(..)) {
            collect_subterms(store, atom, &mut relevant);
        }
    }
    let mut reps: HashMap<TermId, u32> = HashMap::new();
    let mut next = 0u32;
    let mut by_root: HashMap<TermId, u32> = HashMap::new();
    let mut sorted: Vec<TermId> = relevant
        .into_iter()
        .filter(|t| store.sort(*t).is_obj())
        .collect();
    sorted.sort();
    for t in sorted {
        let root = uf.find(t);
        let class = *by_root.entry(root).or_insert_with(|| {
            let c = next;
            next += 1;
            c
        });
        reps.insert(t, class);
    }
    reps
}

fn congruent(store: &TermStore, uf: &mut UnionFind, p: TermId, q: TermId) -> bool {
    match (store.data(p).clone(), store.data(q).clone()) {
        (TermData::App(sp, ap, _), TermData::App(sq, aq, _)) => {
            sp == sq
                && ap.len() == aq.len()
                && ap
                    .iter()
                    .zip(aq.iter())
                    .all(|(&x, &y)| uf.find(x) == uf.find(y))
        }
        _ => false,
    }
}

fn collect_subterms(store: &TermStore, t: TermId, out: &mut HashSet<TermId>) {
    if !out.insert(t) {
        return;
    }
    match store.data(t).clone() {
        TermData::App(_, args, _) => {
            for a in args {
                collect_subterms(store, a, out);
            }
        }
        TermData::Add(a, b)
        | TermData::Sub(a, b)
        | TermData::Le(a, b)
        | TermData::Lt(a, b)
        | TermData::Eq(a, b)
        | TermData::Implies(a, b)
        | TermData::Iff(a, b) => {
            collect_subterms(store, a, out);
            collect_subterms(store, b, out);
        }
        TermData::Neg(a) | TermData::MulConst(_, a) | TermData::Not(a) => {
            collect_subterms(store, a, out)
        }
        TermData::And(xs) | TermData::Or(xs) => {
            for x in xs {
                collect_subterms(store, x, out);
            }
        }
        TermData::BoolConst(_) | TermData::IntConst(_) | TermData::Var(..) => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sorts::Sort;

    fn obj_sort(store: &mut TermStore) -> Sort {
        let s = store.symbol("Nat");
        Sort::Obj(s)
    }

    #[test]
    fn transitivity_of_equality() {
        let mut s = TermStore::new();
        let so = obj_sort(&mut s);
        let a = s.var("a", so);
        let b = s.var("b", so);
        let c = s.var("c", so);
        let e1 = s.eq(a, b);
        let e2 = s.eq(b, c);
        let e3 = s.eq(a, c);
        // a=b, b=c, a!=c is inconsistent
        let r = check(&s, &[(e1, true), (e2, true), (e3, false)]);
        assert!(matches!(r, EufResult::Inconsistent(_)));
        // a=b, b=c, a=c is consistent
        let r2 = check(&s, &[(e1, true), (e2, true), (e3, true)]);
        assert_eq!(r2, EufResult::Consistent);
    }

    #[test]
    fn congruence_of_functions() {
        let mut s = TermStore::new();
        let so = obj_sort(&mut s);
        let x = s.var("x", so);
        let y = s.var("y", so);
        let fx = s.app("pred", vec![x], so);
        let fy = s.app("pred", vec![y], so);
        let exy = s.eq(x, y);
        let efxy = s.eq(fx, fy);
        // x=y and pred(x) != pred(y) is inconsistent
        let r = check(&s, &[(exy, true), (efxy, false)]);
        assert!(matches!(r, EufResult::Inconsistent(_)));
        // x!=y and pred(x) != pred(y) is consistent
        let r2 = check(&s, &[(exy, false), (efxy, false)]);
        assert_eq!(r2, EufResult::Consistent);
    }

    #[test]
    fn distinct_int_constants_conflict_when_merged() {
        let mut s = TermStore::new();
        let x = s.var("x", Sort::Int);
        let one = s.int(1);
        let two = s.int(2);
        let e1 = s.eq(x, one);
        let e2 = s.eq(x, two);
        let r = check(&s, &[(e1, true), (e2, true)]);
        assert!(matches!(r, EufResult::Inconsistent(_)));
    }

    #[test]
    fn predicate_congruence() {
        let mut s = TermStore::new();
        let so = obj_sort(&mut s);
        let x = s.var("x", so);
        let y = s.var("y", so);
        let px = s.app("zero", vec![x], Sort::Bool);
        let py = s.app("zero", vec![y], Sort::Bool);
        let exy = s.eq(x, y);
        // x=y, zero(x), !zero(y) is inconsistent
        let r = check(&s, &[(exy, true), (px, true), (py, false)]);
        assert!(matches!(r, EufResult::Inconsistent(_)));
        // without x=y it is consistent
        let r2 = check(&s, &[(exy, false), (px, true), (py, false)]);
        assert_eq!(r2, EufResult::Consistent);
    }

    #[test]
    fn nested_congruence_propagates() {
        let mut s = TermStore::new();
        let so = obj_sort(&mut s);
        let x = s.var("x", so);
        let y = s.var("y", so);
        let fx = s.app("f", vec![x], so);
        let fy = s.app("f", vec![y], so);
        let gfx = s.app("g", vec![fx], so);
        let gfy = s.app("g", vec![fy], so);
        let exy = s.eq(x, y);
        let egg = s.eq(gfx, gfy);
        let r = check(&s, &[(exy, true), (egg, false)]);
        assert!(matches!(r, EufResult::Inconsistent(_)));
    }

    #[test]
    fn irrelevant_atoms_are_ignored() {
        let mut s = TermStore::new();
        let x = s.var("x", Sort::Int);
        let zero = s.int(0);
        let le = s.le(x, zero);
        let r = check(&s, &[(le, true)]);
        assert_eq!(r, EufResult::Consistent);
    }
}
