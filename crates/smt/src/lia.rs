//! Linear integer arithmetic (QF_LIA) feasibility checking.
//!
//! The JMatch verification conditions produce conjunctions of linear
//! constraints over mathematical integers (`val >= 0`, `result = n + 1`,
//! `height(l) - height(r) > 1`, ...). This module decides feasibility of such
//! conjunctions:
//!
//! 1. every atom is normalized into `Σ aᵢ·xᵢ ≤ c` form with integer
//!    coefficients (strict inequalities over integers become non-strict by
//!    subtracting one),
//! 2. rational feasibility is decided by Fourier–Motzkin elimination with
//!    integer bound tightening,
//! 3. a sample point is produced by back-substitution, preferring integral
//!    values, and
//! 4. branch-and-bound splits on fractional values and on violated
//!    disequalities until an integer model is found or a branching budget is
//!    exhausted.
//!
//! The branching budget makes the procedure incomplete in the usual way
//! (Presburger-hard corner cases return [`LiaResult::Unknown`]); the JMatch
//! compiler treats `Unknown` as "could not find a counterexample, but there
//! might be one", exactly as the paper describes for iterative-deepening
//! timeouts (§6.2).

use crate::rational::Rat;
use crate::term::{TermData, TermId, TermStore};
use std::collections::HashMap;

/// Result of a linear-arithmetic feasibility check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LiaResult {
    /// The constraints admit an integer solution; the model maps every atomic
    /// integer term to its value.
    Feasible(HashMap<TermId, i64>),
    /// The constraints are unsatisfiable over the rationals (hence over the
    /// integers). The payload is the subset of input atoms that participated.
    Infeasible(Vec<TermId>),
    /// The branching budget was exhausted before a decision was reached.
    Unknown,
}

/// A linear expression `Σ coeff·key + constant` over atomic integer terms.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LinExpr {
    /// Coefficients per atomic term (variables and integer-sorted
    /// uninterpreted applications).
    pub coeffs: HashMap<TermId, i64>,
    /// Constant offset.
    pub constant: i64,
}

impl LinExpr {
    fn add_term(&mut self, key: TermId, coeff: i64) {
        let entry = self.coeffs.entry(key).or_insert(0);
        *entry += coeff;
        if *entry == 0 {
            self.coeffs.remove(&key);
        }
    }

    fn scale(&mut self, c: i64) {
        for v in self.coeffs.values_mut() {
            *v *= c;
        }
        self.constant *= c;
    }

    fn add(&mut self, other: &LinExpr, sign: i64) {
        for (&k, &v) in &other.coeffs {
            self.add_term(k, sign * v);
        }
        self.constant += sign * other.constant;
    }
}

/// Extracts a linear expression from an integer-sorted term.
///
/// Atomic subterms (variables and uninterpreted applications) become keys of
/// the expression; everything else must be built from `+`, `-`, unary
/// negation, constant multiplication and integer constants.
///
/// # Panics
///
/// Panics if the term is not integer-sorted.
pub fn linearize(store: &TermStore, t: TermId) -> LinExpr {
    assert!(
        store.sort(t).is_int(),
        "linearize: expected an Int term, got {}",
        store.display(t)
    );
    let mut out = LinExpr::default();
    linearize_into(store, t, 1, &mut out);
    out
}

fn linearize_into(store: &TermStore, t: TermId, sign: i64, out: &mut LinExpr) {
    match store.data(t) {
        TermData::IntConst(n) => out.constant += sign * n,
        TermData::Var(..) | TermData::App(..) => out.add_term(t, sign),
        TermData::Add(a, b) => {
            linearize_into(store, *a, sign, out);
            linearize_into(store, *b, sign, out);
        }
        TermData::Sub(a, b) => {
            linearize_into(store, *a, sign, out);
            linearize_into(store, *b, -sign, out);
        }
        TermData::Neg(a) => linearize_into(store, *a, -sign, out),
        TermData::MulConst(c, a) => linearize_into(store, *a, sign * c, out),
        other => panic!("non-linear integer term: {other:?}"),
    }
}

/// A single normalized constraint `Σ coeff·var ≤ bound`.
#[derive(Debug, Clone)]
struct Constraint {
    coeffs: HashMap<TermId, i64>,
    bound: i64,
}

/// An assignment of a truth value to a theory atom.
pub type AtomAssignment = (TermId, bool);

/// Checks feasibility of a set of integer-arithmetic atom assignments.
///
/// `assignments` maps each arithmetic atom (an `Le`, `Lt` or integer `Eq`
/// term) to the truth value the SAT core chose for it. Atoms of other
/// theories must be filtered out by the caller.
pub fn check(store: &TermStore, assignments: &[AtomAssignment]) -> LiaResult {
    let mut constraints: Vec<Constraint> = Vec::new();
    let mut disequalities: Vec<(LinExpr, TermId)> = Vec::new();

    for &(atom, value) in assignments {
        match store.data(atom) {
            TermData::Le(a, b) => {
                let mut e = linearize(store, *a);
                let eb = linearize(store, *b);
                e.add(&eb, -1);
                if value {
                    // a - b <= 0
                    constraints.push(from_expr(e, 0));
                } else {
                    // a - b > 0  <=>  b - a <= -1
                    let mut neg = e;
                    neg.scale(-1);
                    constraints.push(from_expr(neg, -1));
                }
            }
            TermData::Lt(a, b) => {
                let mut e = linearize(store, *a);
                let eb = linearize(store, *b);
                e.add(&eb, -1);
                if value {
                    // a - b < 0  <=>  a - b <= -1
                    constraints.push(from_expr(e, -1));
                } else {
                    // a - b >= 0  <=>  b - a <= 0
                    let mut neg = e;
                    neg.scale(-1);
                    constraints.push(from_expr(neg, 0));
                }
            }
            TermData::Eq(a, b) if store.sort(*a).is_int() => {
                let mut e = linearize(store, *a);
                let eb = linearize(store, *b);
                e.add(&eb, -1);
                if value {
                    constraints.push(from_expr(e.clone(), 0));
                    let mut neg = e;
                    neg.scale(-1);
                    constraints.push(from_expr(neg, 0));
                } else {
                    disequalities.push((e, atom));
                }
            }
            other => panic!("not an arithmetic atom: {other:?}"),
        }
    }

    let mut budget = Budget {
        remaining: 8_000,
        exhausted: false,
    };
    let result = solve_rec(&constraints, &disequalities, &mut budget);
    match result {
        Some(model) => LiaResult::Feasible(model),
        None if budget.exhausted => LiaResult::Unknown,
        None => {
            let involved: Vec<TermId> = assignments.iter().map(|&(a, _)| a).collect();
            LiaResult::Infeasible(involved)
        }
    }
}

fn from_expr(e: LinExpr, slack: i64) -> Constraint {
    // e.coeffs + e.constant <= slack  =>  coeffs <= slack - constant
    Constraint {
        coeffs: e.coeffs,
        bound: slack - e.constant,
    }
}

struct Budget {
    remaining: u64,
    exhausted: bool,
}

impl Budget {
    fn spend(&mut self) -> bool {
        if self.remaining == 0 {
            self.exhausted = true;
            return false;
        }
        self.remaining -= 1;
        true
    }
}

/// Recursive branch-and-bound search. Returns an integer model or `None`.
fn solve_rec(
    constraints: &[Constraint],
    disequalities: &[(LinExpr, TermId)],
    budget: &mut Budget,
) -> Option<HashMap<TermId, i64>> {
    if !budget.spend() {
        return None;
    }
    let rational = fourier_motzkin(constraints)?;

    // Try to round the rational model into an integer model.
    let mut int_model: HashMap<TermId, i64> = HashMap::new();
    let mut fractional: Option<(TermId, Rat)> = None;
    for (&var, &val) in &rational {
        match val.as_integer() {
            Some(i) => {
                int_model.insert(var, i as i64);
            }
            None => {
                if fractional.is_none() {
                    fractional = Some((var, val));
                }
            }
        }
    }

    if let Some((var, val)) = fractional {
        // Branch: var <= floor(val)  or  var >= ceil(val).
        let lo = val.floor() as i64;
        let hi = val.ceil() as i64;
        let mut left = constraints.to_vec();
        left.push(single_var_le(var, lo));
        if let Some(m) = solve_rec(&left, disequalities, budget) {
            return Some(m);
        }
        let mut right = constraints.to_vec();
        right.push(single_var_ge(var, hi));
        return solve_rec(&right, disequalities, budget);
    }

    // All values integral; check disequalities.
    for (expr, _origin) in disequalities {
        let mut v = expr.constant;
        for (&var, &c) in &expr.coeffs {
            v += c * int_model.get(&var).copied().unwrap_or(0);
        }
        if v == 0 {
            // Violated: expr = 0. Branch expr <= -1 or expr >= 1.
            let mut left = constraints.to_vec();
            left.push(Constraint {
                coeffs: expr.coeffs.clone(),
                bound: -expr.constant - 1,
            });
            if let Some(m) = solve_rec(&left, disequalities, budget) {
                return Some(m);
            }
            let mut right = constraints.to_vec();
            let negated: HashMap<TermId, i64> =
                expr.coeffs.iter().map(|(&k, &v)| (k, -v)).collect();
            right.push(Constraint {
                coeffs: negated,
                bound: expr.constant - 1,
            });
            return solve_rec(&right, disequalities, budget);
        }
    }

    Some(int_model)
}

fn single_var_le(var: TermId, bound: i64) -> Constraint {
    let mut coeffs = HashMap::new();
    coeffs.insert(var, 1);
    Constraint { coeffs, bound }
}

fn single_var_ge(var: TermId, bound: i64) -> Constraint {
    let mut coeffs = HashMap::new();
    coeffs.insert(var, -1);
    Constraint {
        coeffs,
        bound: -bound,
    }
}

/// Fourier–Motzkin elimination with integer tightening. Returns a rational
/// model if the constraints are feasible over the rationals, `None` otherwise.
fn fourier_motzkin(constraints: &[Constraint]) -> Option<HashMap<TermId, Rat>> {
    // Collect the variables in a deterministic order.
    let mut vars: Vec<TermId> = Vec::new();
    for c in constraints {
        for &v in c.coeffs.keys() {
            if !vars.contains(&v) {
                vars.push(v);
            }
        }
    }
    vars.sort();

    // Working representation: (coeffs as Vec aligned with `vars`, bound).
    #[derive(Clone, Debug)]
    struct Row {
        coeffs: Vec<i64>,
        bound: i64,
    }
    let rows: Vec<Row> = constraints
        .iter()
        .map(|c| Row {
            coeffs: vars
                .iter()
                .map(|v| c.coeffs.get(v).copied().unwrap_or(0))
                .collect(),
            bound: c.bound,
        })
        .collect();

    fn gcd(a: i64, b: i64) -> i64 {
        let (mut a, mut b) = (a.abs(), b.abs());
        while b != 0 {
            let t = a % b;
            a = b;
            b = t;
        }
        a
    }

    fn tighten(row: &mut Row) {
        let mut g = 0;
        for &c in &row.coeffs {
            g = gcd(g, c);
        }
        if g > 1 {
            for c in &mut row.coeffs {
                *c /= g;
            }
            // integer tightening: floor division of the bound
            row.bound = row.bound.div_euclid(g);
        }
    }

    // Eliminate variables one at a time; remember the constraints mentioning
    // each eliminated variable for back-substitution.
    let mut elimination_steps: Vec<(usize, Vec<Row>)> = Vec::new();
    let mut current = rows.clone();
    for c in &mut current {
        tighten(c);
    }

    for vi in 0..vars.len() {
        let mentioning: Vec<Row> = current
            .iter()
            .filter(|r| r.coeffs[vi] != 0)
            .cloned()
            .collect();
        let mut next: Vec<Row> = current
            .iter()
            .filter(|r| r.coeffs[vi] == 0)
            .cloned()
            .collect();
        let lowers: Vec<&Row> = mentioning.iter().filter(|r| r.coeffs[vi] < 0).collect();
        let uppers: Vec<&Row> = mentioning.iter().filter(|r| r.coeffs[vi] > 0).collect();
        for lo in &lowers {
            for up in &uppers {
                // lo: -a*x + rest_lo <= b_lo (a > 0);  up: c*x + rest_up <= b_up (c > 0)
                let a = -lo.coeffs[vi];
                let c = up.coeffs[vi];
                debug_assert!(a > 0 && c > 0);
                let mut combined = Row {
                    coeffs: vec![0; vars.len()],
                    bound: c * lo.bound + a * up.bound,
                };
                for k in 0..vars.len() {
                    combined.coeffs[k] = c * lo.coeffs[k] + a * up.coeffs[k];
                }
                debug_assert_eq!(combined.coeffs[vi], 0);
                tighten(&mut combined);
                next.push(combined);
            }
        }
        elimination_steps.push((vi, mentioning));
        current = next;
        // Cheap subsumption: drop duplicate rows to curb blowup.
        current.sort_by(|a, b| a.coeffs.cmp(&b.coeffs).then(a.bound.cmp(&b.bound)));
        current.dedup_by(|a, b| a.coeffs == b.coeffs && a.bound >= b.bound);
    }

    // All variables eliminated: remaining rows are `0 <= bound` facts.
    for r in &current {
        if r.bound < 0 {
            return None;
        }
    }

    // Back-substitute in reverse elimination order.
    let mut model: HashMap<TermId, Rat> = HashMap::new();
    for (vi, mentioning) in elimination_steps.iter().rev() {
        let var = vars[*vi];
        let mut lower: Option<Rat> = None;
        let mut upper: Option<Rat> = None;
        for row in mentioning {
            // coeff*x + rest <= bound
            let coeff = row.coeffs[*vi];
            let mut rest = Rat::int(-(row.bound as i128));
            for (k, (&coeff_k, var_k)) in row.coeffs.iter().zip(vars.iter()).enumerate() {
                if k == *vi || coeff_k == 0 {
                    continue;
                }
                let val = model.get(var_k).copied().unwrap_or(Rat::ZERO);
                rest = rest + Rat::int(coeff_k as i128) * val;
            }
            // coeff*x <= -rest
            let limit = -rest / Rat::int(coeff as i128);
            if coeff > 0 {
                upper = Some(match upper {
                    None => limit,
                    Some(u) => {
                        if limit < u {
                            limit
                        } else {
                            u
                        }
                    }
                });
            } else {
                lower = Some(match lower {
                    None => limit,
                    Some(l) => {
                        if limit > l {
                            limit
                        } else {
                            l
                        }
                    }
                });
            }
        }
        let value = choose_value(lower, upper);
        model.insert(var, value);
    }
    Some(model)
}

/// Chooses a value within `[lower, upper]`, preferring small integers.
fn choose_value(lower: Option<Rat>, upper: Option<Rat>) -> Rat {
    match (lower, upper) {
        (None, None) => Rat::ZERO,
        (Some(l), None) => {
            if l <= Rat::ZERO {
                Rat::ZERO
            } else {
                Rat::int(l.ceil())
            }
        }
        (None, Some(u)) => {
            if u >= Rat::ZERO {
                Rat::ZERO
            } else {
                Rat::int(u.floor())
            }
        }
        (Some(l), Some(u)) => {
            if l <= Rat::ZERO && Rat::ZERO <= u {
                return Rat::ZERO;
            }
            // Prefer an integer in [l, u]; otherwise the midpoint.
            let li = l.ceil();
            if Rat::int(li) <= u {
                Rat::int(li)
            } else {
                (l + u) * Rat::new(1, 2)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sorts::Sort;

    fn int_var(store: &mut TermStore, name: &str) -> TermId {
        store.var(name, Sort::Int)
    }

    #[test]
    fn linearize_combines_terms() {
        let mut s = TermStore::new();
        let x = int_var(&mut s, "x");
        let y = int_var(&mut s, "y");
        let two = s.int(2);
        let tx = s.mul_const(3, x);
        let sum = s.add(tx, y);
        let e = s.sub(sum, two);
        let lin = linearize(&s, e);
        assert_eq!(lin.constant, -2);
        assert_eq!(lin.coeffs.get(&x), Some(&3));
        assert_eq!(lin.coeffs.get(&y), Some(&1));
    }

    #[test]
    fn simple_feasible_bounds() {
        let mut s = TermStore::new();
        let x = int_var(&mut s, "x");
        let zero = s.int(0);
        let ten = s.int(10);
        let a1 = s.le(zero, x);
        let a2 = s.le(x, ten);
        let r = check(&s, &[(a1, true), (a2, true)]);
        match r {
            LiaResult::Feasible(m) => {
                let v = m[&x];
                assert!((0..=10).contains(&v));
            }
            other => panic!("expected feasible, got {other:?}"),
        }
    }

    #[test]
    fn simple_infeasible_bounds() {
        let mut s = TermStore::new();
        let x = int_var(&mut s, "x");
        let zero = s.int(0);
        let a1 = s.lt(x, zero);
        let a2 = s.le(zero, x);
        let r = check(&s, &[(a1, true), (a2, true)]);
        assert!(matches!(r, LiaResult::Infeasible(_)));
    }

    #[test]
    fn negated_atoms_flip_constraints() {
        let mut s = TermStore::new();
        let x = int_var(&mut s, "x");
        let zero = s.int(0);
        // not (x <= 0)  means x >= 1
        let a = s.le(x, zero);
        let r = check(&s, &[(a, false)]);
        match r {
            LiaResult::Feasible(m) => assert!(m[&x] >= 1),
            other => panic!("expected feasible, got {other:?}"),
        }
    }

    #[test]
    fn equalities_propagate_values() {
        let mut s = TermStore::new();
        let x = int_var(&mut s, "x");
        let y = int_var(&mut s, "y");
        let one = s.int(1);
        let xp1 = s.add(x, one);
        let eq = s.eq(y, xp1);
        let three = s.int(3);
        let yeq3 = s.eq(y, three);
        let r = check(&s, &[(eq, true), (yeq3, true)]);
        match r {
            LiaResult::Feasible(m) => {
                assert_eq!(m[&y], 3);
                assert_eq!(m[&x], 2);
            }
            other => panic!("expected feasible, got {other:?}"),
        }
    }

    #[test]
    fn conflicting_equalities_are_infeasible() {
        let mut s = TermStore::new();
        let x = int_var(&mut s, "x");
        let one = s.int(1);
        let two = s.int(2);
        let e1 = s.eq(x, one);
        let e2 = s.eq(x, two);
        let r = check(&s, &[(e1, true), (e2, true)]);
        assert!(matches!(r, LiaResult::Infeasible(_)));
    }

    #[test]
    fn disequality_branches_away_from_equal_value() {
        let mut s = TermStore::new();
        let x = int_var(&mut s, "x");
        let zero = s.int(0);
        let five = s.int(5);
        let a1 = s.le(zero, x);
        let a2 = s.le(x, five);
        let eq0 = s.eq(x, zero);
        // x in [0,5] and x != 0
        let r = check(&s, &[(a1, true), (a2, true), (eq0, false)]);
        match r {
            LiaResult::Feasible(m) => {
                assert!(m[&x] >= 1 && m[&x] <= 5);
            }
            other => panic!("expected feasible, got {other:?}"),
        }
    }

    #[test]
    fn pinched_disequality_is_infeasible() {
        let mut s = TermStore::new();
        let x = int_var(&mut s, "x");
        let three = s.int(3);
        let le = s.le(x, three);
        let ge = s.ge(x, three);
        let eq = s.eq(x, three);
        let r = check(&s, &[(le, true), (ge, true), (eq, false)]);
        assert!(matches!(r, LiaResult::Infeasible(_)));
    }

    #[test]
    fn integer_tightening_finds_gap() {
        // 2x >= 1 and 2x <= 1 has the rational solution x = 1/2 but no integer
        // solution. Branch and bound must report infeasible.
        let mut s = TermStore::new();
        let x = int_var(&mut s, "x");
        let one = s.int(1);
        let two_x = s.mul_const(2, x);
        let a1 = s.ge(two_x, one);
        let a2 = s.le(two_x, one);
        let r = check(&s, &[(a1, true), (a2, true)]);
        assert!(matches!(r, LiaResult::Infeasible(_)));
    }

    #[test]
    fn chain_of_inequalities() {
        // x < y, y < z, z < x is infeasible.
        let mut s = TermStore::new();
        let x = int_var(&mut s, "x");
        let y = int_var(&mut s, "y");
        let z = int_var(&mut s, "z");
        let a1 = s.lt(x, y);
        let a2 = s.lt(y, z);
        let a3 = s.lt(z, x);
        let r = check(&s, &[(a1, true), (a2, true), (a3, true)]);
        assert!(matches!(r, LiaResult::Infeasible(_)));
        // Dropping one link makes it feasible.
        let r2 = check(&s, &[(a1, true), (a2, true)]);
        assert!(matches!(r2, LiaResult::Feasible(_)));
    }

    #[test]
    fn uninterpreted_int_application_is_an_atomic_variable() {
        let mut s = TermStore::new();
        let x = int_var(&mut s, "x");
        let h = s.app("height", vec![x], Sort::Int);
        let zero = s.int(0);
        let a1 = s.ge(h, zero);
        let one = s.int(1);
        let a2 = s.le(h, one);
        let r = check(&s, &[(a1, true), (a2, true)]);
        match r {
            LiaResult::Feasible(m) => assert!(m[&h] == 0 || m[&h] == 1),
            other => panic!("expected feasible, got {other:?}"),
        }
    }

    /// Tiny deterministic xorshift generator so the randomized property test
    /// does not need an external RNG crate.
    struct XorShift(u64);
    impl XorShift {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x
        }
        fn range(&mut self, lo: i64, hi: i64) -> i64 {
            lo + (self.next() % ((hi - lo) as u64)) as i64
        }
        fn chance(&mut self, percent: u64) -> bool {
            self.next() % 100 < percent
        }
    }

    #[test]
    fn model_satisfies_all_constraints_property() {
        // A small randomized property: generate constraint systems and check
        // that reported models satisfy them.
        let mut rng = XorShift(0x2026_0615);
        for _ in 0..100 {
            let mut s = TermStore::new();
            let vars: Vec<TermId> = (0..3).map(|i| s.var(&format!("v{i}"), Sort::Int)).collect();
            let mut atoms = Vec::new();
            for _ in 0..4 {
                let a = vars[rng.range(0, 3) as usize];
                let b = vars[rng.range(0, 3) as usize];
                let c = s.int(rng.range(-5, 5));
                let lhs = s.add(a, c);
                let atom = if rng.chance(50) {
                    s.le(lhs, b)
                } else {
                    s.lt(b, lhs)
                };
                atoms.push((atom, rng.chance(80)));
            }
            if let LiaResult::Feasible(m) = check(&s, &atoms) {
                for &(atom, val) in &atoms {
                    let holds = eval_atom(&s, atom, &m);
                    assert_eq!(holds, val, "model violates atom {}", s.display(atom));
                }
            }
        }
    }

    fn eval_atom(s: &TermStore, atom: TermId, m: &HashMap<TermId, i64>) -> bool {
        fn eval(s: &TermStore, t: TermId, m: &HashMap<TermId, i64>) -> i64 {
            match s.data(t) {
                TermData::IntConst(n) => *n,
                TermData::Var(..) | TermData::App(..) => m.get(&t).copied().unwrap_or(0),
                TermData::Add(a, b) => eval(s, *a, m) + eval(s, *b, m),
                TermData::Sub(a, b) => eval(s, *a, m) - eval(s, *b, m),
                TermData::Neg(a) => -eval(s, *a, m),
                TermData::MulConst(c, a) => c * eval(s, *a, m),
                other => panic!("unexpected {other:?}"),
            }
        }
        match s.data(atom) {
            TermData::Le(a, b) => eval(s, *a, m) <= eval(s, *b, m),
            TermData::Lt(a, b) => eval(s, *a, m) < eval(s, *b, m),
            TermData::Eq(a, b) => eval(s, *a, m) == eval(s, *b, m),
            other => panic!("unexpected {other:?}"),
        }
    }
}
