//! # jmatch-smt
//!
//! A from-scratch SMT solver used by the JMatch 2.0 reproduction (PLDI 2013,
//! "Reconciling Exhaustive Pattern Matching with Objects") as its stand-in for
//! Z3. It decides quantifier-free formulas over:
//!
//! * booleans with arbitrary propositional structure,
//! * linear integer arithmetic (`QF_LIA`), and
//! * equality with uninterpreted functions and sorts (`QF_UF`),
//!
//! and supports *lazy theory expansion* via the [`LazyExpander`] plugin trait,
//! which the JMatch verifier uses to unroll type invariants and
//! `matches`/`ensures` clauses on demand with iterative deepening — the same
//! architecture the paper builds on Z3's external theory plugin (§6.2).
//!
//! ## Example
//!
//! ```
//! use jmatch_smt::{Solver, SatResult, Sort, TermStore};
//!
//! let mut store = TermStore::new();
//! let mut solver = Solver::new();
//!
//! // n >= 0 && n + 1 <= 0 is unsatisfiable.
//! let n = store.var("n", Sort::Int);
//! let zero = store.int(0);
//! let one = store.int(1);
//! let ge = store.ge(n, zero);
//! let np1 = store.add(n, one);
//! let le = store.le(np1, zero);
//! solver.assert_formula(&store, ge);
//! solver.assert_formula(&store, le);
//! assert_eq!(solver.check(&mut store), SatResult::Unsat);
//! ```
//!
//! ## Architecture
//!
//! | module | role |
//! |---|---|
//! | [`term`] | hash-consed terms, formulas, sorts |
//! | [`sat`] | CDCL propositional core |
//! | [`cnf`] | incremental Tseitin encoding |
//! | [`lia`] | linear integer arithmetic (Fourier–Motzkin + branch-and-bound) |
//! | [`euf`] | congruence closure for equality and uninterpreted functions |
//! | [`plugin`] | lazy expansion hooks (Z3 external-theory analog) |
//! | [`pool`] | scoped worker pool for sharding independent solver sessions |
//! | [`solver`] | the DPLL(T) loop with iterative deepening |
//! | [`model`] | satisfying assignments / counterexamples |
//!
//! ## Completeness
//!
//! The solver is sound: `Unsat` answers are always correct, and `Sat` answers
//! come with a model of the asserted formulas as abstracted by the theories.
//! It is deliberately incomplete in two places, both reported as
//! [`SatResult::Unknown`]: branch-and-bound over integers has a branching
//! budget, and lazy expansion has a depth budget. Cross-theory equality
//! propagation (Nelson–Oppen) is not performed, which can make the solver
//! accept a model that a complete combination would reject; for the JMatch
//! verifier this only ever produces *extra* warnings, never missing ones.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cnf;
pub mod euf;
pub mod lia;
pub mod model;
pub mod plugin;
pub mod pool;
pub mod rational;
pub mod sat;
pub mod solver;
pub mod sorts;
pub mod sym;
pub mod term;

pub use model::Model;
pub use plugin::{Expansion, LazyExpander, NoExpansion};
pub use pool::{configured_threads, map_ordered};
pub use rational::Rat;
pub use solver::{SatResult, Solver, SolverConfig, SolverStats};
pub use sorts::Sort;
pub use sym::Symbol;
pub use term::{TermData, TermId, TermStore};
