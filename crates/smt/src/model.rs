//! Models (satisfying assignments) returned by the solver.
//!
//! A model gives a truth value to every encoded theory atom, an integer value
//! to every atomic integer term the arithmetic theory saw, and an equivalence
//! class representative to object-sorted terms. The JMatch verifier turns
//! models into user-facing counterexamples ("this `switch` does not cover
//! `n = succ(succ(_))`", "the matches clause fails for `n = -1`").

use crate::term::{TermData, TermId, TermStore};
use std::collections::HashMap;

/// A satisfying assignment.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Model {
    /// Truth values of boolean atoms (comparisons, equalities, predicates).
    pub bools: HashMap<TermId, bool>,
    /// Integer values of atomic integer terms (variables and applications).
    pub ints: HashMap<TermId, i64>,
    /// Equivalence-class representative for object-sorted terms.
    pub object_classes: HashMap<TermId, u32>,
}

impl Model {
    /// Creates an empty model.
    pub fn new() -> Self {
        Self::default()
    }

    /// Truth value assigned to a boolean atom, if any.
    pub fn bool_value(&self, t: TermId) -> Option<bool> {
        self.bools.get(&t).copied()
    }

    /// Integer value assigned to an atomic integer term, if any.
    pub fn int_value(&self, t: TermId) -> Option<i64> {
        self.ints.get(&t).copied()
    }

    /// Evaluates an integer term under the model (missing atoms default to 0).
    pub fn eval_int(&self, store: &TermStore, t: TermId) -> i64 {
        match store.data(t) {
            TermData::IntConst(n) => *n,
            TermData::Var(..) | TermData::App(..) => self.ints.get(&t).copied().unwrap_or(0),
            TermData::Add(a, b) => self.eval_int(store, *a) + self.eval_int(store, *b),
            TermData::Sub(a, b) => self.eval_int(store, *a) - self.eval_int(store, *b),
            TermData::Neg(a) => -self.eval_int(store, *a),
            TermData::MulConst(c, a) => c * self.eval_int(store, *a),
            other => panic!("eval_int on non-integer term {other:?}"),
        }
    }

    /// Evaluates a boolean term under the model.
    ///
    /// Atoms not constrained by the model evaluate to `false`.
    pub fn eval_bool(&self, store: &TermStore, t: TermId) -> bool {
        match store.data(t) {
            TermData::BoolConst(b) => *b,
            TermData::Var(..) | TermData::App(..) => self.bools.get(&t).copied().unwrap_or(false),
            TermData::Le(a, b) => self.eval_int(store, *a) <= self.eval_int(store, *b),
            TermData::Lt(a, b) => self.eval_int(store, *a) < self.eval_int(store, *b),
            TermData::Eq(a, b) => {
                if store.sort(*a).is_int() {
                    self.eval_int(store, *a) == self.eval_int(store, *b)
                } else if store.sort(*a).is_bool() {
                    self.eval_bool(store, *a) == self.eval_bool(store, *b)
                } else {
                    match self.bools.get(&t) {
                        Some(v) => *v,
                        None => {
                            let ca = self.object_classes.get(a);
                            let cb = self.object_classes.get(b);
                            match (ca, cb) {
                                (Some(x), Some(y)) => x == y,
                                _ => a == b,
                            }
                        }
                    }
                }
            }
            TermData::Not(a) => !self.eval_bool(store, *a),
            TermData::And(xs) => xs.iter().all(|&x| self.eval_bool(store, x)),
            TermData::Or(xs) => xs.iter().any(|&x| self.eval_bool(store, x)),
            TermData::Implies(a, b) => !self.eval_bool(store, *a) || self.eval_bool(store, *b),
            TermData::Iff(a, b) => self.eval_bool(store, *a) == self.eval_bool(store, *b),
            other => panic!("eval_bool on non-boolean term {other:?}"),
        }
    }

    /// Renders the model restricted to the given terms, for diagnostics.
    pub fn display_for(&self, store: &TermStore, terms: &[TermId]) -> String {
        let mut parts = Vec::new();
        for &t in terms {
            if let Some(v) = self.ints.get(&t) {
                parts.push(format!("{} = {}", store.display(t), v));
            } else if let Some(v) = self.bools.get(&t) {
                parts.push(format!("{} = {}", store.display(t), v));
            } else if let Some(c) = self.object_classes.get(&t) {
                parts.push(format!("{} = obj#{}", store.display(t), c));
            }
        }
        parts.join(", ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sorts::Sort;

    #[test]
    fn eval_arithmetic() {
        let mut s = TermStore::new();
        let x = s.var("x", Sort::Int);
        let y = s.var("y", Sort::Int);
        let mut m = Model::new();
        m.ints.insert(x, 3);
        m.ints.insert(y, 4);
        let sum = s.add(x, y);
        let seven = s.int(7);
        let atom = s.eq(sum, seven);
        assert_eq!(m.eval_int(&s, sum), 7);
        assert!(m.eval_bool(&s, atom));
        let lt = s.lt(sum, seven);
        assert!(!m.eval_bool(&s, lt));
    }

    #[test]
    fn eval_boolean_structure() {
        let mut s = TermStore::new();
        let p = s.var("p", Sort::Bool);
        let q = s.var("q", Sort::Bool);
        let mut m = Model::new();
        m.bools.insert(p, true);
        m.bools.insert(q, false);
        let and = s.and2(p, q);
        let or = s.or2(p, q);
        let imp = s.implies(p, q);
        assert!(!m.eval_bool(&s, and));
        assert!(m.eval_bool(&s, or));
        assert!(!m.eval_bool(&s, imp));
    }

    #[test]
    fn display_for_selected_terms() {
        let mut s = TermStore::new();
        let x = s.var("x", Sort::Int);
        let mut m = Model::new();
        m.ints.insert(x, 42);
        let text = m.display_for(&s, &[x]);
        assert_eq!(text, "x = 42");
    }
}
