//! Lazy theory expansion, the stand-in for Z3's external theory plugin.
//!
//! The JMatch 2.0 verifier (§6.2 of the paper) does not unroll recursive
//! `matches`/`ensures` clauses and type invariants eagerly. Instead it
//! registers *interpreted theory predicates* with the solver; when the solver
//! assigns such a predicate a truth value, the plugin asserts the
//! corresponding fact — the `ensures` clause when the predicate is true, the
//! negated `matches` clause when it is false, the invariant body for type
//! predicates — as an implication guarded by the predicate. Iterative
//! deepening bounds the unrolling.
//!
//! [`LazyExpander`] is the trait the verifier implements; the solver calls it
//! from its DPLL(T) loop whenever a guard atom is assigned in a candidate
//! model and has not been expanded yet.

use crate::term::{TermId, TermStore};

/// Outcome of asking a plugin about one guard atom.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expansion {
    /// The atom is not an interpreted predicate of this plugin.
    NotApplicable,
    /// The atom was expanded into the given lemmas (formulas to assert).
    ///
    /// An empty lemma list is allowed and means "applicable, but nothing new
    /// to add"; the solver records the atom as expanded either way.
    Lemmas(Vec<TermId>),
}

/// A lazy axiom expander driven by the DPLL(T) loop.
pub trait LazyExpander {
    /// Whether `atom` (a boolean application) is an interpreted predicate this
    /// plugin knows how to expand when it is assigned `value`.
    fn can_expand(&self, store: &TermStore, atom: TermId, value: bool) -> bool;

    /// Expands `atom` assigned `value` at unrolling depth `depth`.
    ///
    /// `depth` is zero for atoms appearing in the original assertion and grows
    /// by one for predicates introduced inside lemmas. The solver guarantees
    /// `depth < max_expansion_depth` when it calls this method.
    fn expand(&mut self, store: &mut TermStore, atom: TermId, value: bool, depth: u32)
        -> Expansion;
}

/// A plugin that never expands anything; plain QF_LIA + EUF solving.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoExpansion;

impl LazyExpander for NoExpansion {
    fn can_expand(&self, _store: &TermStore, _atom: TermId, _value: bool) -> bool {
        false
    }

    fn expand(
        &mut self,
        _store: &mut TermStore,
        _atom: TermId,
        _value: bool,
        _depth: u32,
    ) -> Expansion {
        Expansion::NotApplicable
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_expansion_is_inert() {
        let mut store = TermStore::new();
        let p = store.app("p", vec![], crate::Sort::Bool);
        let mut plugin = NoExpansion;
        assert!(!plugin.can_expand(&store, p, true));
        assert_eq!(
            plugin.expand(&mut store, p, true, 0),
            Expansion::NotApplicable
        );
    }
}
