//! A tiny scoped worker pool for sharding independent solver workloads.
//!
//! Verification of distinct methods is embarrassingly parallel: each method
//! owns its solver session, so the only coordination needed is handing out
//! work items and putting the results back in input order. This module is
//! the generalization of the runtime's `par.rs` pool *shape* (scoped
//! threads, an atomic next-index dispenser, slot-per-item result storage)
//! for that solver-side sharding, and the **one place** worker-count
//! configuration lives:
//!
//! * [`configured_threads`] reads `JMATCH_PAR_THREADS` — the same variable
//!   the runtime's OR-parallel enumeration pool and the CI parallel-stress
//!   matrix pin — and falls back to the machine's available parallelism;
//! * [`map_ordered`] runs a closure over every item on up to `threads`
//!   workers and returns the results **in input order**, so callers get
//!   deterministic output (identical at any worker count) by construction.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The environment variable that pins the worker count for every pool in
/// the workspace (this one and the runtime's OR-parallel enumerator).
pub const THREADS_ENV: &str = "JMATCH_PAR_THREADS";

/// The worker count to use when a caller passes `0` ("configured"):
/// `JMATCH_PAR_THREADS` when set to a positive integer, otherwise the
/// machine's available parallelism, otherwise 1.
pub fn configured_threads() -> usize {
    match std::env::var(THREADS_ENV) {
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(n) if n > 0 => n,
            _ => fallback_threads(),
        },
        Err(_) => fallback_threads(),
    }
}

fn fallback_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Applies `f` to every item on up to `threads` scoped workers
/// (`0` = [`configured_threads`]) and returns the results in input order.
///
/// `f` receives the item's input index alongside the item, so workers can
/// produce position-tagged results without the caller re-sorting. Items are
/// dispensed through an atomic counter — idle workers pull the next
/// unclaimed index — and each result lands in its own slot, so the output
/// order (and therefore anything the caller derives from it, like
/// concatenated diagnostics) is identical at any worker count.
pub fn map_ordered<T, R, F>(items: Vec<T>, threads: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let n = items.len();
    let threads = if threads == 0 {
        configured_threads()
    } else {
        threads
    }
    .min(n.max(1));
    if n == 0 {
        return Vec::new();
    }
    if threads <= 1 {
        return items
            .into_iter()
            .enumerate()
            .map(|(i, item)| f(i, item))
            .collect();
    }
    let inputs: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = inputs[i]
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .take()
                    .expect("each input index is dispensed exactly once");
                let r = f(i, item);
                *slots[i].lock().unwrap_or_else(|e| e.into_inner()) = Some(r);
            });
        }
    });
    slots
        .into_iter()
        .map(|s| {
            s.into_inner()
                .unwrap_or_else(|e| e.into_inner())
                .expect("every slot is filled before the scope ends")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_ordered_preserves_input_order() {
        for threads in [1, 2, 8] {
            let out = map_ordered((0..100).collect::<Vec<i32>>(), threads, |i, x| {
                assert_eq!(i as i32, x);
                x * 2
            });
            assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<i32>>());
        }
    }

    #[test]
    fn map_ordered_handles_empty_and_oversized_pools() {
        let out: Vec<i32> = map_ordered(Vec::<i32>::new(), 8, |_, x| x);
        assert!(out.is_empty());
        let out = map_ordered(vec![7], 64, |_, x: i32| x + 1);
        assert_eq!(out, vec![8]);
    }

    #[test]
    fn configured_threads_is_positive() {
        assert!(configured_threads() >= 1);
    }
}
