//! A CDCL (conflict-driven clause learning) propositional SAT solver.
//!
//! This is the propositional engine underneath the DPLL(T) loop in
//! [`crate::solver`]. It implements the standard MiniSat-style architecture:
//! two-literal watching, first-UIP conflict analysis with non-chronological
//! backjumping, VSIDS-like activity-based decision ordering, and phase saving.
//! Clause-database reduction and restarts are deliberately simple because the
//! formulas produced by the JMatch verifier are small (hundreds of clauses).
//!
//! ## Assertion scopes
//!
//! The solver supports incremental use through *assertion scopes*
//! ([`SatSolver::push`] / [`SatSolver::pop`]), implemented with the classic
//! selector-variable idiom: every scope owns a fresh selector variable `s`,
//! clauses added inside the scope via [`SatSolver::add_scoped_clause`] carry
//! the extra literal `~s`, and [`SatSolver::solve`] assumes `s` for every
//! active scope. Popping a scope permanently asserts `~s`, which disables the
//! scope's clauses while keeping the clause database — in particular all
//! learnt clauses, which mention `~s` whenever they were derived from the
//! scope's clauses — sound for later queries. This is what lets the SMT layer
//! keep one session (and its learned knowledge) alive across an entire
//! verification run instead of rebuilding a solver per query.

use std::fmt;

/// A propositional variable, numbered from 0.
pub type PVar = u32;

/// A literal: a variable together with a polarity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Lit(u32);

impl Lit {
    /// Creates a literal for `var` with the given polarity (`true` = positive).
    pub fn new(var: PVar, positive: bool) -> Lit {
        Lit(var * 2 + u32::from(!positive))
    }

    /// Creates a positive literal.
    pub fn pos(var: PVar) -> Lit {
        Lit::new(var, true)
    }

    /// Creates a negative literal.
    pub fn neg(var: PVar) -> Lit {
        Lit::new(var, false)
    }

    /// The variable of this literal.
    pub fn var(self) -> PVar {
        self.0 / 2
    }

    /// Whether this literal is positive.
    pub fn is_positive(self) -> bool {
        self.0 % 2 == 0
    }

    /// The opposite literal.
    pub fn negate(self) -> Lit {
        Lit(self.0 ^ 1)
    }

    /// Dense index usable for watch lists.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_positive() {
            write!(f, "x{}", self.var())
        } else {
            write!(f, "~x{}", self.var())
        }
    }
}

/// Result of a propositional solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SatOutcome {
    /// A satisfying assignment was found.
    Sat,
    /// The clause set is unsatisfiable.
    Unsat,
}

#[derive(Debug, Clone)]
struct Clause {
    lits: Vec<Lit>,
    learnt: bool,
}

const INVALID_CLAUSE: usize = usize::MAX;

/// The CDCL solver.
#[derive(Debug, Default)]
pub struct SatSolver {
    clauses: Vec<Clause>,
    watches: Vec<Vec<usize>>,
    assign: Vec<Option<bool>>,
    level: Vec<u32>,
    reason: Vec<usize>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    activity: Vec<f64>,
    var_inc: f64,
    phase: Vec<bool>,
    unsat: bool,
    conflicts: u64,
    decisions: u64,
    propagations: u64,
    scope_selectors: Vec<PVar>,
    /// `clauses.len()` at each `push`: clauses older than a scope's mark
    /// cannot mention its selector, bounding the pop-time garbage scan.
    scope_clause_marks: Vec<usize>,
    /// Activity-ordered max-heap of (candidate) decision variables, MiniSat's
    /// order heap: every unassigned variable is in the heap; assigned
    /// variables are removed lazily when popped. Keeps each decision at
    /// `O(log n)` instead of an `O(n)` scan — essential for long-lived
    /// incremental sessions that accumulate many variables.
    heap: Vec<PVar>,
    /// Position of each variable in `heap` (`usize::MAX` when absent).
    heap_pos: Vec<usize>,
    /// Number of stored clauses each variable occurs in. Variables with no
    /// occurrences are skipped as decision candidates: they cannot affect any
    /// clause, and gating them keeps long-lived sessions from re-deciding
    /// every variable retired scopes left behind.
    occs: Vec<u32>,
}

const NOT_IN_HEAP: usize = usize::MAX;

impl SatSolver {
    /// Creates an empty solver.
    pub fn new() -> Self {
        SatSolver {
            var_inc: 1.0,
            ..Default::default()
        }
    }

    /// Allocates a fresh propositional variable.
    pub fn new_var(&mut self) -> PVar {
        let v = self.assign.len() as PVar;
        self.assign.push(None);
        self.level.push(0);
        self.reason.push(INVALID_CLAUSE);
        self.activity.push(0.0);
        self.phase.push(false);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.heap_pos.push(NOT_IN_HEAP);
        self.occs.push(0);
        self.heap_insert(v);
        v
    }

    // ------------------------------------------------------------------
    // Decision order heap
    // ------------------------------------------------------------------

    fn heap_less(&self, a: PVar, b: PVar) -> bool {
        // Ties break toward the lower variable index, matching the order the
        // previous linear scan produced (decision order strongly shapes which
        // candidate models the DPLL(T) loop enumerates first).
        let (aa, ab) = (self.activity[a as usize], self.activity[b as usize]);
        aa > ab || (aa == ab && a < b)
    }

    fn heap_swap(&mut self, i: usize, j: usize) {
        self.heap.swap(i, j);
        self.heap_pos[self.heap[i] as usize] = i;
        self.heap_pos[self.heap[j] as usize] = j;
    }

    fn heap_sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.heap_less(self.heap[i], self.heap[parent]) {
                self.heap_swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn heap_sift_down(&mut self, mut i: usize) {
        loop {
            let left = 2 * i + 1;
            let right = left + 1;
            let mut best = i;
            if left < self.heap.len() && self.heap_less(self.heap[left], self.heap[best]) {
                best = left;
            }
            if right < self.heap.len() && self.heap_less(self.heap[right], self.heap[best]) {
                best = right;
            }
            if best == i {
                break;
            }
            self.heap_swap(i, best);
            i = best;
        }
    }

    fn heap_insert(&mut self, v: PVar) {
        if self.heap_pos[v as usize] != NOT_IN_HEAP {
            return;
        }
        self.heap_pos[v as usize] = self.heap.len();
        self.heap.push(v);
        self.heap_sift_up(self.heap.len() - 1);
    }

    fn heap_pop(&mut self) -> Option<PVar> {
        let top = *self.heap.first()?;
        self.heap_pos[top as usize] = NOT_IN_HEAP;
        let last = self.heap.pop().expect("heap is non-empty");
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.heap_pos[last as usize] = 0;
            self.heap_sift_down(0);
        }
        Some(top)
    }

    /// Number of variables allocated.
    pub fn num_vars(&self) -> usize {
        self.assign.len()
    }

    /// Number of clauses (original + learnt).
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// Number of learnt (conflict-derived) clauses currently in the database.
    pub fn num_learnt(&self) -> usize {
        self.clauses.iter().filter(|c| c.learnt).count()
    }

    /// Number of conflicts seen so far (statistics).
    pub fn conflicts(&self) -> u64 {
        self.conflicts
    }

    /// Number of decisions made so far (statistics).
    pub fn decisions(&self) -> u64 {
        self.decisions
    }

    /// Number of unit propagations performed so far (statistics).
    pub fn propagations(&self) -> u64 {
        self.propagations
    }

    /// Current value of a variable in the last model (or current trail).
    pub fn value(&self, var: PVar) -> Option<bool> {
        self.assign[var as usize]
    }

    /// Opens a new assertion scope: clauses added with
    /// [`SatSolver::add_scoped_clause`] from now on live until the matching
    /// [`SatSolver::pop`].
    pub fn push(&mut self) {
        let selector = self.new_var();
        self.scope_selectors.push(selector);
        self.scope_clause_marks.push(self.clauses.len());
    }

    /// Closes the innermost assertion scope, retiring its clauses.
    ///
    /// Learnt clauses survive the pop (they are tagged with the scope's
    /// selector wherever they depended on scoped clauses), so knowledge
    /// gained inside the scope keeps accelerating later queries.
    ///
    /// # Panics
    ///
    /// Panics if no scope is open.
    pub fn pop(&mut self) {
        let selector = self
            .scope_selectors
            .pop()
            .expect("SatSolver::pop without a matching push");
        let mark = self
            .scope_clause_marks
            .pop()
            .expect("clause marks track scopes");
        // Physically delete the scope's clauses — and every learnt clause
        // derived from them, recognizable by the `~selector` literal conflict
        // analysis leaves behind — so long sessions do not drag a growing
        // tail of dead clauses through their watch lists.
        self.collect_garbage(Lit::neg(selector), mark);
        // Record `~selector` as a level-0 fact (no clause needed: nothing
        // mentions the selector any more), keeping it out of future decisions.
        self.add_clause(&[Lit::neg(selector)]);
    }

    /// Removes every clause at index `from` or later that contains
    /// `dead_lit` and compacts the tail. Clauses older than `from` cannot
    /// mention the popped scope's selector (it did not exist yet), so the
    /// pop cost is proportional to what the scope added — not to the
    /// session's whole clause database.
    fn collect_garbage(&mut self, dead_lit: Lit, from: usize) {
        if self.unsat || from >= self.clauses.len() {
            return;
        }
        self.cancel_until(0);
        // Purge the tail's watch entries. Watch lists may interleave entries
        // for older clauses, which keep their indices and stay put.
        for i in from..self.clauses.len() {
            let w0 = self.clauses[i].lits[0].negate().index();
            let w1 = self.clauses[i].lits[1].negate().index();
            self.watches[w0].retain(|&idx| idx < from);
            self.watches[w1].retain(|&idx| idx < from);
        }
        // Drop dead tail clauses; survivors (e.g. learnt clauses that do not
        // depend on the scope) are re-attached at their new indices.
        let tail: Vec<Clause> = self.clauses.drain(from..).collect();
        for c in tail {
            if c.lits.contains(&dead_lit) {
                for &l in &c.lits {
                    self.occs[l.var() as usize] -= 1;
                }
            } else {
                let idx = self.clauses.len();
                self.watches[c.lits[0].negate().index()].push(idx);
                self.watches[c.lits[1].negate().index()].push(idx);
                self.clauses.push(c);
            }
        }
        // Tail indices moved; stale reasons would be unsound to resolve on.
        // Only trail variables can hold one (everything else was reset when
        // it was unassigned), they all sit at level 0 now, and conflict
        // analysis never resolves at level 0 — so drop them.
        for i in 0..self.trail.len() {
            self.reason[self.trail[i].var() as usize] = INVALID_CLAUSE;
        }
    }

    /// Number of currently open assertion scopes.
    pub fn scope_depth(&self) -> usize {
        self.scope_selectors.len()
    }

    /// Adds a clause that lives only as long as the innermost open scope.
    ///
    /// Outside any scope this is identical to [`SatSolver::add_clause`].
    /// Returns `false` if the clause set became trivially unsatisfiable.
    pub fn add_scoped_clause(&mut self, lits: &[Lit]) -> bool {
        match self.scope_selectors.last().copied() {
            None => self.add_clause(lits),
            Some(selector) => {
                let mut guarded = Vec::with_capacity(lits.len() + 1);
                guarded.extend_from_slice(lits);
                guarded.push(Lit::neg(selector));
                self.add_clause(&guarded)
            }
        }
    }

    fn lit_value(&self, lit: Lit) -> Option<bool> {
        self.assign[lit.var() as usize].map(|v| v == lit.is_positive())
    }

    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    /// Adds a clause. Returns `false` if the clause set became trivially
    /// unsatisfiable (an empty clause was derived at level 0).
    ///
    /// Clauses may be added between calls to [`SatSolver::solve`]; the solver
    /// backtracks to decision level zero first.
    pub fn add_clause(&mut self, lits: &[Lit]) -> bool {
        if self.unsat {
            return false;
        }
        self.cancel_until(0);
        // Normalize: sort, dedup, drop tautologies and false literals at level 0.
        let mut ls: Vec<Lit> = lits.to_vec();
        ls.sort();
        ls.dedup();
        let mut filtered = Vec::with_capacity(ls.len());
        for (i, &l) in ls.iter().enumerate() {
            if i + 1 < ls.len() && ls[i + 1] == l.negate() {
                return true; // tautology: contains l and ~l
            }
            if i > 0 && ls[i - 1] == l.negate() {
                return true;
            }
            match self.lit_value(l) {
                Some(true) => return true, // already satisfied at level 0
                Some(false) => {}          // drop the falsified literal
                None => filtered.push(l),
            }
        }
        match filtered.len() {
            0 => {
                self.unsat = true;
                false
            }
            1 => {
                self.enqueue(filtered[0], INVALID_CLAUSE);
                if self.propagate() != INVALID_CLAUSE {
                    self.unsat = true;
                    return false;
                }
                true
            }
            _ => {
                self.attach_clause(filtered, false);
                true
            }
        }
    }

    fn attach_clause(&mut self, lits: Vec<Lit>, learnt: bool) -> usize {
        let idx = self.clauses.len();
        self.watches[lits[0].negate().index()].push(idx);
        self.watches[lits[1].negate().index()].push(idx);
        for &l in &lits {
            self.occs[l.var() as usize] += 1;
            // A variable gaining its first occurrence becomes decidable again.
            if self.assign[l.var() as usize].is_none() {
                self.heap_insert(l.var());
            }
        }
        self.clauses.push(Clause { lits, learnt });
        idx
    }

    fn enqueue(&mut self, lit: Lit, reason: usize) {
        debug_assert!(self.lit_value(lit).is_none());
        let v = lit.var() as usize;
        self.assign[v] = Some(lit.is_positive());
        self.level[v] = self.decision_level();
        self.reason[v] = reason;
        self.phase[v] = lit.is_positive();
        self.trail.push(lit);
    }

    /// Unit propagation. Returns the index of a conflicting clause, or
    /// `INVALID_CLAUSE` if no conflict arose.
    fn propagate(&mut self) -> usize {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.propagations += 1;
            // Clauses watching ~p must find a new watch or propagate/conflict.
            let false_lit = p.negate();
            let watch_idx = p.index(); // watches[p] holds clauses where ~p is watched
            let mut i = 0;
            'clauses: while i < self.watches[watch_idx].len() {
                let ci = self.watches[watch_idx][i];
                // Make sure the false literal is at position 1.
                if self.clauses[ci].lits[0] == false_lit {
                    self.clauses[ci].lits.swap(0, 1);
                }
                debug_assert_eq!(self.clauses[ci].lits[1], false_lit);
                let first = self.clauses[ci].lits[0];
                if self.lit_value(first) == Some(true) {
                    i += 1;
                    continue;
                }
                // Look for a new literal to watch.
                for k in 2..self.clauses[ci].lits.len() {
                    let lk = self.clauses[ci].lits[k];
                    if self.lit_value(lk) != Some(false) {
                        self.clauses[ci].lits.swap(1, k);
                        self.watches[watch_idx].swap_remove(i);
                        let new_watch = self.clauses[ci].lits[1].negate().index();
                        self.watches[new_watch].push(ci);
                        continue 'clauses;
                    }
                }
                // No new watch: clause is unit or conflicting.
                if self.lit_value(first) == Some(false) {
                    self.qhead = self.trail.len();
                    return ci;
                }
                self.enqueue(first, ci);
                i += 1;
            }
        }
        INVALID_CLAUSE
    }

    fn bump_var(&mut self, v: PVar) {
        self.activity[v as usize] += self.var_inc;
        if self.activity[v as usize] > 1e100 {
            // Rescaling preserves the relative order, so the heap stays valid.
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
        let pos = self.heap_pos[v as usize];
        if pos != NOT_IN_HEAP {
            self.heap_sift_up(pos);
        }
    }

    fn decay_activity(&mut self) {
        self.var_inc /= 0.95;
    }

    /// First-UIP conflict analysis. Returns the learnt clause (asserting
    /// literal first) and the backjump level.
    fn analyze(&mut self, confl: usize) -> (Vec<Lit>, u32) {
        let mut learnt: Vec<Lit> = vec![Lit::pos(0)]; // placeholder for the asserting literal
        let mut seen = vec![false; self.num_vars()];
        let mut counter = 0usize;
        let mut p: Option<Lit> = None;
        let mut confl = confl;
        let mut trail_idx = self.trail.len();

        loop {
            debug_assert_ne!(confl, INVALID_CLAUSE);
            let start = usize::from(p.is_some());
            let clause_lits = self.clauses[confl].lits.clone();
            for &q in clause_lits.iter().skip(start) {
                let v = q.var() as usize;
                if !seen[v] && self.level[v] > 0 {
                    seen[v] = true;
                    self.bump_var(q.var());
                    if self.level[v] == self.decision_level() {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Find the next literal on the trail to resolve on.
            loop {
                trail_idx -= 1;
                let l = self.trail[trail_idx];
                if seen[l.var() as usize] {
                    p = Some(l);
                    break;
                }
            }
            let pv = p.unwrap().var() as usize;
            seen[pv] = false;
            counter -= 1;
            if counter == 0 {
                break;
            }
            confl = self.reason[pv];
        }
        learnt[0] = p.unwrap().negate();

        // Compute the backjump level: the second-highest level in the clause.
        let backjump = if learnt.len() == 1 {
            0
        } else {
            let mut max_i = 1;
            for i in 2..learnt.len() {
                if self.level[learnt[i].var() as usize] > self.level[learnt[max_i].var() as usize] {
                    max_i = i;
                }
            }
            learnt.swap(1, max_i);
            self.level[learnt[1].var() as usize]
        };
        (learnt, backjump)
    }

    fn cancel_until(&mut self, target: u32) {
        if self.decision_level() <= target {
            return;
        }
        let lim = self.trail_lim[target as usize];
        while self.trail.len() > lim {
            let l = self.trail.pop().unwrap();
            let v = l.var() as usize;
            self.assign[v] = None;
            self.reason[v] = INVALID_CLAUSE;
            self.heap_insert(l.var());
        }
        self.trail_lim.truncate(target as usize);
        self.qhead = self.trail.len();
    }

    fn pick_branch_var(&mut self) -> Option<PVar> {
        // Lazy deletion: assigned variables may linger in the heap; skip
        // them, as well as variables no stored clause mentions (they cannot
        // affect satisfiability, and `attach_clause` re-inserts them should
        // they gain an occurrence later).
        while let Some(v) = self.heap_pop() {
            if self.assign[v as usize].is_none() && self.occs[v as usize] > 0 {
                return Some(v);
            }
        }
        None
    }

    /// Solves the current clause set under all active assertion scopes.
    ///
    /// After [`SatOutcome::Sat`], every variable occurring in a stored
    /// clause has a value retrievable via [`SatSolver::value`]. Variables no
    /// clause mentions may remain unassigned (`None`): they are
    /// unconstrained, so any value completes the model.
    pub fn solve(&mut self) -> SatOutcome {
        if self.scope_selectors.is_empty() {
            self.solve_plain()
        } else {
            let assumptions: Vec<Lit> = self.scope_selectors.iter().map(|&v| Lit::pos(v)).collect();
            self.solve_under(&assumptions)
        }
    }

    fn solve_plain(&mut self) -> SatOutcome {
        if self.unsat {
            return SatOutcome::Unsat;
        }
        self.cancel_until(0);
        if self.propagate() != INVALID_CLAUSE {
            self.unsat = true;
            return SatOutcome::Unsat;
        }
        loop {
            let confl = self.propagate();
            if confl != INVALID_CLAUSE {
                self.conflicts += 1;
                if self.decision_level() == 0 {
                    self.unsat = true;
                    return SatOutcome::Unsat;
                }
                let (learnt, backjump) = self.analyze(confl);
                self.cancel_until(backjump);
                if learnt.len() == 1 {
                    self.enqueue(learnt[0], INVALID_CLAUSE);
                } else {
                    let ci = self.attach_clause(learnt.clone(), true);
                    self.enqueue(learnt[0], ci);
                }
                self.decay_activity();
            } else {
                match self.pick_branch_var() {
                    None => return SatOutcome::Sat,
                    Some(v) => {
                        self.decisions += 1;
                        self.trail_lim.push(self.trail.len());
                        let phase = self.phase[v as usize];
                        self.enqueue(Lit::new(v, phase), INVALID_CLAUSE);
                    }
                }
            }
        }
    }

    /// Solves under the given assumption literals (in addition to the
    /// selectors of all active assertion scopes).
    ///
    /// Returns `Sat` if the clause set together with the assumptions is
    /// satisfiable. Unlike incremental SAT solvers this implementation does
    /// not produce a final conflict clause over the assumptions; it is only
    /// used by tests and the core-minimization helper in the SMT layer.
    pub fn solve_with_assumptions(&mut self, assumptions: &[Lit]) -> SatOutcome {
        if self.scope_selectors.is_empty() {
            self.solve_under(assumptions)
        } else {
            let mut all: Vec<Lit> = self.scope_selectors.iter().map(|&v| Lit::pos(v)).collect();
            all.extend_from_slice(assumptions);
            self.solve_under(&all)
        }
    }

    fn solve_under(&mut self, assumptions: &[Lit]) -> SatOutcome {
        if assumptions.is_empty() {
            return self.solve_plain();
        }
        if self.unsat {
            return SatOutcome::Unsat;
        }
        self.cancel_until(0);
        if self.propagate() != INVALID_CLAUSE {
            self.unsat = true;
            return SatOutcome::Unsat;
        }
        // Enqueue assumptions as decisions.
        for &a in assumptions {
            match self.lit_value(a) {
                Some(true) => continue,
                Some(false) => {
                    self.cancel_until(0);
                    return SatOutcome::Unsat;
                }
                None => {
                    self.trail_lim.push(self.trail.len());
                    self.enqueue(a, INVALID_CLAUSE);
                    if self.propagate() != INVALID_CLAUSE {
                        self.cancel_until(0);
                        return SatOutcome::Unsat;
                    }
                }
            }
        }
        let assumption_level = self.decision_level();
        loop {
            let confl = self.propagate();
            if confl != INVALID_CLAUSE {
                self.conflicts += 1;
                if self.decision_level() <= assumption_level {
                    self.cancel_until(0);
                    return SatOutcome::Unsat;
                }
                let (learnt, backjump) = self.analyze(confl);
                let backjump = backjump.max(assumption_level);
                self.cancel_until(backjump);
                if learnt.len() == 1 {
                    if self.decision_level() == 0 {
                        self.enqueue(learnt[0], INVALID_CLAUSE);
                    } else if self.lit_value(learnt[0]).is_none() {
                        let ci = self.attach_clause_unit_guard(learnt.clone());
                        self.enqueue(learnt[0], ci);
                    } else if self.lit_value(learnt[0]) == Some(false) {
                        self.cancel_until(0);
                        return SatOutcome::Unsat;
                    }
                } else {
                    let ci = self.attach_clause(learnt.clone(), true);
                    if self.lit_value(learnt[0]).is_none() {
                        self.enqueue(learnt[0], ci);
                    }
                }
                self.decay_activity();
            } else {
                match self.pick_branch_var() {
                    None => return SatOutcome::Sat,
                    Some(v) => {
                        self.decisions += 1;
                        self.trail_lim.push(self.trail.len());
                        let phase = self.phase[v as usize];
                        self.enqueue(Lit::new(v, phase), INVALID_CLAUSE);
                    }
                }
            }
        }
    }

    fn attach_clause_unit_guard(&mut self, mut lits: Vec<Lit>) -> usize {
        // A learnt unit clause under assumptions cannot be attached with two
        // watches; pad it with a duplicate literal so the watch scheme holds.
        if lits.len() == 1 {
            lits.push(lits[0]);
        }
        self.attach_clause(lits, true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(v: PVar, pos: bool) -> Lit {
        Lit::new(v, pos)
    }

    #[test]
    fn literal_encoding_roundtrips() {
        let l = Lit::pos(7);
        assert_eq!(l.var(), 7);
        assert!(l.is_positive());
        assert_eq!(l.negate().var(), 7);
        assert!(!l.negate().is_positive());
        assert_eq!(l.negate().negate(), l);
    }

    #[test]
    fn trivial_sat() {
        let mut s = SatSolver::new();
        let a = s.new_var();
        s.add_clause(&[lit(a, true)]);
        assert_eq!(s.solve(), SatOutcome::Sat);
        assert_eq!(s.value(a), Some(true));
    }

    #[test]
    fn trivial_unsat() {
        let mut s = SatSolver::new();
        let a = s.new_var();
        s.add_clause(&[lit(a, true)]);
        s.add_clause(&[lit(a, false)]);
        assert_eq!(s.solve(), SatOutcome::Unsat);
    }

    #[test]
    fn chain_of_implications() {
        // a, a->b, b->c, c->d  =>  d must be true.
        let mut s = SatSolver::new();
        let vars: Vec<PVar> = (0..4).map(|_| s.new_var()).collect();
        s.add_clause(&[lit(vars[0], true)]);
        for w in vars.windows(2) {
            s.add_clause(&[lit(w[0], false), lit(w[1], true)]);
        }
        assert_eq!(s.solve(), SatOutcome::Sat);
        for &v in &vars {
            assert_eq!(s.value(v), Some(true));
        }
    }

    #[test]
    fn pigeonhole_two_pigeons_one_hole_unsat() {
        // p1 in hole, p2 in hole, not both.
        let mut s = SatSolver::new();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause(&[lit(a, true)]);
        s.add_clause(&[lit(b, true)]);
        s.add_clause(&[lit(a, false), lit(b, false)]);
        assert_eq!(s.solve(), SatOutcome::Unsat);
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // index-style loops mirror the PHP encoding
    fn pigeonhole_php_3_2_unsat() {
        // 3 pigeons, 2 holes: unsatisfiable. Exercises conflict analysis.
        let mut s = SatSolver::new();
        // x[p][h] = pigeon p in hole h
        let mut x = [[0; 2]; 3];
        for p in 0..3 {
            for h in 0..2 {
                x[p][h] = s.new_var();
            }
        }
        for p in 0..3 {
            s.add_clause(&[lit(x[p][0], true), lit(x[p][1], true)]);
        }
        for h in 0..2 {
            for p1 in 0..3 {
                for p2 in (p1 + 1)..3 {
                    s.add_clause(&[lit(x[p1][h], false), lit(x[p2][h], false)]);
                }
            }
        }
        assert_eq!(s.solve(), SatOutcome::Unsat);
    }

    #[test]
    fn satisfiable_random_looking_instance() {
        let mut s = SatSolver::new();
        let v: Vec<PVar> = (0..6).map(|_| s.new_var()).collect();
        s.add_clause(&[lit(v[0], true), lit(v[1], true), lit(v[2], false)]);
        s.add_clause(&[lit(v[2], true), lit(v[3], false)]);
        s.add_clause(&[lit(v[3], true), lit(v[4], true)]);
        s.add_clause(&[lit(v[4], false), lit(v[5], false)]);
        s.add_clause(&[lit(v[0], false), lit(v[5], true)]);
        assert_eq!(s.solve(), SatOutcome::Sat);
        // Check the model satisfies each clause.
        let model: Vec<bool> = v.iter().map(|&x| s.value(x).unwrap()).collect();
        assert!(model[0] || model[1] || !model[2]);
        assert!(model[2] || !model[3]);
        assert!(model[3] || model[4]);
        assert!(!model[4] || !model[5]);
        assert!(!model[0] || model[5]);
    }

    #[test]
    fn incremental_clause_addition() {
        let mut s = SatSolver::new();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause(&[lit(a, true), lit(b, true)]);
        assert_eq!(s.solve(), SatOutcome::Sat);
        s.add_clause(&[lit(a, false)]);
        assert_eq!(s.solve(), SatOutcome::Sat);
        assert_eq!(s.value(b), Some(true));
        s.add_clause(&[lit(b, false)]);
        assert_eq!(s.solve(), SatOutcome::Unsat);
    }

    #[test]
    fn assumptions_are_respected() {
        let mut s = SatSolver::new();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause(&[lit(a, false), lit(b, true)]);
        assert_eq!(s.solve_with_assumptions(&[lit(a, true)]), SatOutcome::Sat);
        assert_eq!(s.value(b), Some(true));
        assert_eq!(
            s.solve_with_assumptions(&[lit(a, true), lit(b, false)]),
            SatOutcome::Unsat
        );
        // Solver remains usable afterwards.
        assert_eq!(s.solve(), SatOutcome::Sat);
    }

    #[test]
    fn scoped_clause_dies_with_its_scope() {
        let mut s = SatSolver::new();
        let a = s.new_var();
        s.add_clause(&[lit(a, true)]);
        s.push();
        s.add_scoped_clause(&[lit(a, false)]);
        assert_eq!(s.solve(), SatOutcome::Unsat);
        s.pop();
        // The contradiction retired with the scope.
        assert_eq!(s.solve(), SatOutcome::Sat);
        assert_eq!(s.value(a), Some(true));
    }

    #[test]
    fn nested_scopes_pop_innermost_first() {
        let mut s = SatSolver::new();
        let a = s.new_var();
        let b = s.new_var();
        s.push();
        s.add_scoped_clause(&[lit(a, true)]);
        s.push();
        s.add_scoped_clause(&[lit(b, true)]);
        s.add_scoped_clause(&[lit(a, false), lit(b, false)]);
        assert_eq!(s.solve(), SatOutcome::Unsat);
        s.pop();
        // Only the outer scope (a must be true) is left.
        assert_eq!(s.solve(), SatOutcome::Sat);
        assert_eq!(s.value(a), Some(true));
        s.pop();
        assert_eq!(s.scope_depth(), 0);
        assert_eq!(s.solve(), SatOutcome::Sat);
    }

    #[test]
    fn reasserting_after_pop_matches_a_fresh_solver() {
        // The same clause set must give the same outcome whether solved by a
        // fresh solver or by a session that asserted, popped, and re-asserted.
        let clause_sets: [&[&[(PVar, bool)]]; 3] = [
            &[&[(0, true)], &[(0, false)]],
            &[&[(0, true), (1, true)], &[(0, false)], &[(1, false)]],
            &[&[(0, true), (1, false)], &[(1, true)]],
        ];
        for clauses in clause_sets {
            // Variables are allocated up front so scope selectors (which are
            // ordinary solver variables) cannot collide with them.
            let solve_in = |s: &mut SatSolver, vars: &[PVar]| {
                for c in clauses {
                    let lits: Vec<Lit> = c.iter().map(|&(v, p)| lit(vars[v as usize], p)).collect();
                    s.add_scoped_clause(&lits);
                }
                s.solve()
            };
            let mut fresh = SatSolver::new();
            let fresh_vars = [fresh.new_var(), fresh.new_var()];
            let expected = solve_in(&mut fresh, &fresh_vars);

            let mut session = SatSolver::new();
            let session_vars = [session.new_var(), session.new_var()];
            session.push();
            let first = solve_in(&mut session, &session_vars);
            assert_eq!(first, expected);
            session.pop();
            // After the pop the session is unconstrained again.
            assert_eq!(session.solve(), SatOutcome::Sat);
            session.push();
            let again = solve_in(&mut session, &session_vars);
            assert_eq!(again, expected, "re-assertion disagreed with fresh solve");
            session.pop();
        }
    }

    #[test]
    fn permanent_clauses_survive_scopes() {
        let mut s = SatSolver::new();
        let a = s.new_var();
        let b = s.new_var();
        s.push();
        // Permanent clause added while a scope is open.
        s.add_clause(&[lit(a, false), lit(b, true)]);
        s.add_scoped_clause(&[lit(a, true)]);
        assert_eq!(s.solve(), SatOutcome::Sat);
        assert_eq!(s.value(b), Some(true));
        s.pop();
        s.add_clause(&[lit(a, true)]);
        s.add_clause(&[lit(b, false)]);
        // a -> b is still in force after the pop.
        assert_eq!(s.solve(), SatOutcome::Unsat);
    }

    #[test]
    fn all_solutions_of_xor_like_instance() {
        // (a or b) and (~a or ~b): exactly one of a, b.
        let mut s = SatSolver::new();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause(&[lit(a, true), lit(b, true)]);
        s.add_clause(&[lit(a, false), lit(b, false)]);
        assert_eq!(s.solve(), SatOutcome::Sat);
        let m1 = (s.value(a).unwrap(), s.value(b).unwrap());
        assert_ne!(m1.0, m1.1);
        // Block and resolve again: the other model.
        s.add_clause(&[lit(a, !m1.0), lit(b, !m1.1)]);
        assert_eq!(s.solve(), SatOutcome::Sat);
        let m2 = (s.value(a).unwrap(), s.value(b).unwrap());
        assert_ne!(m2.0, m2.1);
        assert_ne!(m1, m2);
        // Block again: unsat.
        s.add_clause(&[lit(a, !m2.0), lit(b, !m2.1)]);
        assert_eq!(s.solve(), SatOutcome::Unsat);
    }
}
