//! The DPLL(T) solver: SAT core + theories + lazy expansion.
//!
//! The solving loop is the "offline" (model-driven) integration of the
//! propositional core with the theory solvers:
//!
//! 1. the boolean abstraction of the asserted formulas is solved by the CDCL
//!    core ([`crate::sat`]);
//! 2. the resulting atom assignment is checked against linear integer
//!    arithmetic ([`crate::lia`]) and congruence closure ([`crate::euf`]);
//!    inconsistencies are turned into (greedily minimized) blocking clauses;
//! 3. uninterpreted predicate atoms are offered to the [`LazyExpander`]
//!    plugin, which may assert new lemmas (the unrolling of JMatch invariants
//!    and `matches`/`ensures` clauses); expansion depth is bounded and the
//!    bound is raised by the iterative-deepening driver
//!    [`Solver::check_with_expander`];
//! 4. when neither theories nor the plugin object to a candidate model, it is
//!    returned as [`SatResult::Sat`].
//!
//! The loop terminates because each blocking clause eliminates at least one
//! assignment of the (finite) atom vocabulary, the plugin is called at most
//! once per (atom, polarity, depth), and a round budget backstops everything.

use crate::cnf::Encoder;
use crate::euf::{self, EufResult};
use crate::lia::{self, LiaResult};
use crate::model::Model;
use crate::plugin::{Expansion, LazyExpander, NoExpansion};
use crate::sat::{Lit, SatOutcome, SatSolver};
use crate::sorts::Sort;
use crate::term::{TermData, TermId, TermStore};
use std::collections::{HashMap, HashSet};

/// Result of an SMT query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SatResult {
    /// Satisfiable; the payload is a model of the asserted formulas.
    Sat(Model),
    /// Unsatisfiable.
    Unsat,
    /// The solver gave up (expansion-depth or budget exhaustion). The JMatch
    /// verifier reports this as "could not find a counterexample, but there
    /// might be one".
    Unknown,
}

impl SatResult {
    /// Whether the result is [`SatResult::Sat`].
    pub fn is_sat(&self) -> bool {
        matches!(self, SatResult::Sat(_))
    }

    /// Whether the result is [`SatResult::Unsat`].
    pub fn is_unsat(&self) -> bool {
        matches!(self, SatResult::Unsat)
    }

    /// The model if satisfiable.
    pub fn model(&self) -> Option<&Model> {
        match self {
            SatResult::Sat(m) => Some(m),
            _ => None,
        }
    }
}

/// Tuning knobs for the solving loop.
#[derive(Debug, Clone)]
pub struct SolverConfig {
    /// Maximum lazy-expansion depth reached by iterative deepening.
    pub max_expansion_depth: u32,
    /// Maximum number of SAT-model/theory-check rounds per depth.
    pub max_rounds: u64,
    /// Whether theory conflicts are greedily minimized before blocking.
    pub minimize_conflicts: bool,
}

impl Default for SolverConfig {
    fn default() -> Self {
        SolverConfig {
            max_expansion_depth: 3,
            max_rounds: 20_000,
            minimize_conflicts: true,
        }
    }
}

/// Statistics accumulated across `check` calls.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Number of candidate boolean models examined.
    pub rounds: u64,
    /// Number of theory conflicts (blocking clauses added).
    pub theory_conflicts: u64,
    /// Number of plugin lemmas asserted.
    pub lemmas: u64,
    /// Deepest expansion level reached.
    pub max_depth_reached: u32,
}

/// An SMT solver instance.
///
/// Formulas are built in a caller-owned [`TermStore`] and asserted with
/// [`Solver::assert_formula`]; [`Solver::check`] then decides satisfiability
/// of their conjunction.
#[derive(Debug, Default)]
pub struct Solver {
    assertions: Vec<TermId>,
    config: SolverConfig,
    stats: SolverStats,
}

impl Solver {
    /// Creates a solver with the default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a solver with an explicit configuration.
    pub fn with_config(config: SolverConfig) -> Self {
        Solver {
            assertions: Vec::new(),
            config,
            stats: SolverStats::default(),
        }
    }

    /// The solver configuration.
    pub fn config(&self) -> &SolverConfig {
        &self.config
    }

    /// Mutable access to the configuration (before calling `check`).
    pub fn config_mut(&mut self) -> &mut SolverConfig {
        &mut self.config
    }

    /// Statistics from the most recent `check` call.
    pub fn stats(&self) -> SolverStats {
        self.stats
    }

    /// Asserts a boolean formula.
    ///
    /// # Panics
    ///
    /// Panics if the term is not boolean-sorted.
    pub fn assert_formula(&mut self, store: &TermStore, f: TermId) {
        assert!(
            store.sort(f).is_bool(),
            "assert_formula: {} is not a formula",
            store.display(f)
        );
        self.assertions.push(f);
    }

    /// All formulas asserted so far.
    pub fn assertions(&self) -> &[TermId] {
        &self.assertions
    }

    /// Decides satisfiability without lazy expansion.
    pub fn check(&mut self, store: &mut TermStore) -> SatResult {
        let mut no_expansion = NoExpansion;
        self.check_with_expander(store, &mut no_expansion)
    }

    /// Decides satisfiability with a lazy-expansion plugin, using iterative
    /// deepening on the expansion depth (§6.2 of the paper).
    pub fn check_with_expander(
        &mut self,
        store: &mut TermStore,
        expander: &mut dyn LazyExpander,
    ) -> SatResult {
        self.stats = SolverStats::default();
        let mut last = SatResult::Unknown;
        for depth in 1..=self.config.max_expansion_depth.max(1) {
            last = self.check_at_depth(store, expander, depth);
            match last {
                SatResult::Sat(_) | SatResult::Unsat => return last,
                SatResult::Unknown => continue,
            }
        }
        last
    }

    /// One run of the DPLL(T) loop with a fixed expansion-depth bound.
    fn check_at_depth(
        &mut self,
        store: &mut TermStore,
        expander: &mut dyn LazyExpander,
        max_depth: u32,
    ) -> SatResult {
        let mut sat = SatSolver::new();
        let mut encoder = Encoder::new();
        // The set of formulas asserted in this run: original assertions plus
        // lemmas produced by the plugin.
        let mut asserted: Vec<TermId> = self.assertions.clone();
        for &f in &asserted {
            encoder.assert_formula(store, &mut sat, f);
        }
        // Depth of each guard atom; atoms of the original assertions are at 0.
        let mut atom_depth: HashMap<TermId, u32> = HashMap::new();
        for &f in &asserted {
            for a in store.atoms(f) {
                atom_depth.entry(a).or_insert(0);
            }
        }
        let mut expanded: HashSet<(TermId, bool)> = HashSet::new();
        let mut rounds = 0u64;

        loop {
            rounds += 1;
            self.stats.rounds += 1;
            if rounds > self.config.max_rounds {
                return SatResult::Unknown;
            }
            match sat.solve() {
                SatOutcome::Unsat => return SatResult::Unsat,
                SatOutcome::Sat => {}
            }

            // Gather the atom assignment chosen by the SAT core.
            let assignment: Vec<(TermId, bool)> = encoder
                .atom_vars()
                .filter_map(|(t, v)| sat.value(v).map(|b| (t, b)))
                .collect();

            let arith: Vec<(TermId, bool)> = assignment
                .iter()
                .copied()
                .filter(|&(t, _)| is_arith_atom(store, t))
                .collect();
            let equality: Vec<(TermId, bool)> = assignment
                .iter()
                .copied()
                .filter(|&(t, _)| is_euf_atom(store, t))
                .collect();

            // Linear integer arithmetic.
            let mut lia_unknown = false;
            let mut lia_model: HashMap<TermId, i64> = HashMap::new();
            match lia::check(store, &arith) {
                LiaResult::Infeasible(_) => {
                    self.stats.theory_conflicts += 1;
                    let core = self.minimize(store, &arith, |s, sub| {
                        matches!(lia::check(s, sub), LiaResult::Infeasible(_))
                    });
                    self.block(store, &mut sat, &mut encoder, &core);
                    continue;
                }
                LiaResult::Unknown => lia_unknown = true,
                LiaResult::Feasible(m) => lia_model = m,
            }

            // Equality and uninterpreted functions.
            match euf::check(store, &equality) {
                EufResult::Inconsistent(_) => {
                    self.stats.theory_conflicts += 1;
                    let core = self.minimize(store, &equality, |s, sub| {
                        matches!(euf::check(s, sub), EufResult::Inconsistent(_))
                    });
                    self.block(store, &mut sat, &mut encoder, &core);
                    continue;
                }
                EufResult::Consistent => {}
            }

            // Lazy expansion of interpreted predicates.
            let mut new_lemmas: Vec<(TermId, u32)> = Vec::new();
            let mut beyond_depth = false;
            for &(atom, value) in &assignment {
                if !matches!(store.data(atom), TermData::App(_, _, Sort::Bool)) {
                    continue;
                }
                if expanded.contains(&(atom, value)) {
                    continue;
                }
                if !expander.can_expand(store, atom, value) {
                    continue;
                }
                let depth = atom_depth.get(&atom).copied().unwrap_or(0);
                if depth >= max_depth {
                    beyond_depth = true;
                    continue;
                }
                match expander.expand(store, atom, value, depth) {
                    Expansion::NotApplicable => {}
                    Expansion::Lemmas(lemmas) => {
                        expanded.insert((atom, value));
                        self.stats.max_depth_reached = self.stats.max_depth_reached.max(depth + 1);
                        for l in lemmas {
                            new_lemmas.push((l, depth + 1));
                        }
                    }
                }
            }
            if !new_lemmas.is_empty() {
                for (lemma, depth) in new_lemmas {
                    self.stats.lemmas += 1;
                    encoder.assert_formula(store, &mut sat, lemma);
                    asserted.push(lemma);
                    for a in store.atoms(lemma) {
                        atom_depth.entry(a).or_insert(depth);
                    }
                }
                continue;
            }

            if beyond_depth || lia_unknown {
                // Some fact could not be expanded within the depth budget (or
                // arithmetic gave up): the candidate model may be spurious.
                return SatResult::Unknown;
            }

            // Consistent and fully expanded: build the model.
            let mut model = Model::new();
            for &(t, v) in &assignment {
                model.bools.insert(t, v);
            }
            model.ints = lia_model;
            model.object_classes = euf::classes(store, &equality);
            return SatResult::Sat(model);
        }
    }

    /// Greedy deletion-based minimization of a theory conflict.
    fn minimize(
        &self,
        store: &TermStore,
        assignments: &[(TermId, bool)],
        still_conflicting: impl Fn(&TermStore, &[(TermId, bool)]) -> bool,
    ) -> Vec<(TermId, bool)> {
        let mut core: Vec<(TermId, bool)> = assignments.to_vec();
        if !self.config.minimize_conflicts {
            return core;
        }
        let mut i = 0;
        while i < core.len() {
            if core.len() <= 1 {
                break;
            }
            let mut candidate = core.clone();
            candidate.remove(i);
            if still_conflicting(store, &candidate) {
                core = candidate;
            } else {
                i += 1;
            }
        }
        core
    }

    /// Adds a blocking clause ruling out the given partial atom assignment.
    fn block(
        &self,
        store: &TermStore,
        sat: &mut SatSolver,
        encoder: &mut Encoder,
        core: &[(TermId, bool)],
    ) {
        let clause: Vec<Lit> = core
            .iter()
            .map(|&(atom, value)| {
                let lit = encoder.encode(store, sat, atom);
                if value {
                    lit.negate()
                } else {
                    lit
                }
            })
            .collect();
        sat.add_clause(&clause);
    }
}

fn is_arith_atom(store: &TermStore, t: TermId) -> bool {
    match store.data(t) {
        TermData::Le(..) | TermData::Lt(..) => true,
        TermData::Eq(a, _) => store.sort(*a).is_int(),
        _ => false,
    }
}

fn is_euf_atom(store: &TermStore, t: TermId) -> bool {
    match store.data(t) {
        TermData::Eq(a, _) => !store.sort(*a).is_bool(),
        TermData::App(_, _, Sort::Bool) => true,
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn propositional_only() {
        let mut store = TermStore::new();
        let mut solver = Solver::new();
        let p = store.var("p", Sort::Bool);
        let q = store.var("q", Sort::Bool);
        let imp = store.implies(p, q);
        solver.assert_formula(&store, p);
        solver.assert_formula(&store, imp);
        let nq = store.not(q);
        solver.assert_formula(&store, nq);
        assert_eq!(solver.check(&mut store), SatResult::Unsat);
    }

    #[test]
    fn arithmetic_conflict_detected() {
        let mut store = TermStore::new();
        let mut solver = Solver::new();
        let x = store.var("x", Sort::Int);
        let zero = store.int(0);
        let a1 = store.lt(x, zero);
        let a2 = store.ge(x, zero);
        solver.assert_formula(&store, a1);
        solver.assert_formula(&store, a2);
        assert_eq!(solver.check(&mut store), SatResult::Unsat);
    }

    #[test]
    fn arithmetic_model_produced() {
        let mut store = TermStore::new();
        let mut solver = Solver::new();
        let x = store.var("x", Sort::Int);
        let y = store.var("y", Sort::Int);
        let one = store.int(1);
        let xp1 = store.add(x, one);
        let a1 = store.eq(y, xp1);
        let five = store.int(5);
        let a2 = store.ge(x, five);
        solver.assert_formula(&store, a1);
        solver.assert_formula(&store, a2);
        match solver.check(&mut store) {
            SatResult::Sat(m) => {
                let xv = m.eval_int(&store, x);
                let yv = m.eval_int(&store, y);
                assert!(xv >= 5);
                assert_eq!(yv, xv + 1);
            }
            other => panic!("expected sat, got {other:?}"),
        }
    }

    #[test]
    fn disjunction_over_theories() {
        // (x <= 0 or x >= 10) and 3 <= x <= 7 is unsat.
        let mut store = TermStore::new();
        let mut solver = Solver::new();
        let x = store.var("x", Sort::Int);
        let zero = store.int(0);
        let ten = store.int(10);
        let three = store.int(3);
        let seven = store.int(7);
        let low = store.le(x, zero);
        let high = store.ge(x, ten);
        let disj = store.or2(low, high);
        let lo = store.ge(x, three);
        let hi = store.le(x, seven);
        solver.assert_formula(&store, disj);
        solver.assert_formula(&store, lo);
        solver.assert_formula(&store, hi);
        assert_eq!(solver.check(&mut store), SatResult::Unsat);
    }

    #[test]
    fn euf_and_arithmetic_together() {
        // o1 = o2 and zero(o1) and !zero(o2) is unsat (predicate congruence).
        let mut store = TermStore::new();
        let mut solver = Solver::new();
        let nat = store.symbol("Nat");
        let o1 = store.var("o1", Sort::Obj(nat));
        let o2 = store.var("o2", Sort::Obj(nat));
        let z1 = store.app("zero", vec![o1], Sort::Bool);
        let z2 = store.app("zero", vec![o2], Sort::Bool);
        let eq = store.eq(o1, o2);
        solver.assert_formula(&store, eq);
        solver.assert_formula(&store, z1);
        let nz2 = store.not(z2);
        solver.assert_formula(&store, nz2);
        assert_eq!(solver.check(&mut store), SatResult::Unsat);
    }

    #[test]
    fn model_respects_object_equalities() {
        let mut store = TermStore::new();
        let mut solver = Solver::new();
        let nat = store.symbol("Nat");
        let o1 = store.var("o1", Sort::Obj(nat));
        let o2 = store.var("o2", Sort::Obj(nat));
        let o3 = store.var("o3", Sort::Obj(nat));
        let e12 = store.eq(o1, o2);
        let e13 = store.eq(o1, o3);
        let ne13 = store.not(e13);
        solver.assert_formula(&store, e12);
        solver.assert_formula(&store, ne13);
        match solver.check(&mut store) {
            SatResult::Sat(m) => {
                assert_eq!(m.object_classes[&o1], m.object_classes[&o2]);
                assert_ne!(m.object_classes[&o1], m.object_classes[&o3]);
            }
            other => panic!("expected sat, got {other:?}"),
        }
    }

    /// A plugin that expands the predicate `even(x)` into the lemma
    /// `even(x) => x >= 0` (a deliberately weak fact, enough to test the
    /// expansion loop).
    struct EvenExpander;
    impl LazyExpander for EvenExpander {
        fn can_expand(&self, store: &TermStore, atom: TermId, _value: bool) -> bool {
            match store.data(atom) {
                TermData::App(sym, _, _) => store.symbol_name(*sym) == "even",
                _ => false,
            }
        }
        fn expand(
            &mut self,
            store: &mut TermStore,
            atom: TermId,
            value: bool,
            _depth: u32,
        ) -> Expansion {
            let arg = match store.data(atom) {
                TermData::App(_, args, _) => args[0],
                _ => return Expansion::NotApplicable,
            };
            if value {
                let zero = store.int(0);
                let fact = store.ge(arg, zero);
                Expansion::Lemmas(vec![fact])
            } else {
                Expansion::Lemmas(vec![])
            }
        }
    }

    #[test]
    fn lazy_expansion_makes_problem_unsat() {
        // even(x) and x < 0 becomes unsat once the lemma even(x) => x >= 0
        // is asserted by the plugin.
        let mut store = TermStore::new();
        let mut solver = Solver::new();
        let x = store.var("x", Sort::Int);
        let even = store.app("even", vec![x], Sort::Bool);
        let zero = store.int(0);
        let neg = store.lt(x, zero);
        solver.assert_formula(&store, even);
        solver.assert_formula(&store, neg);
        let mut plugin = EvenExpander;
        assert_eq!(
            solver.check_with_expander(&mut store, &mut plugin),
            SatResult::Unsat
        );
        assert!(solver.stats().lemmas >= 1);
    }

    #[test]
    fn lazy_expansion_still_sat_when_consistent() {
        let mut store = TermStore::new();
        let mut solver = Solver::new();
        let x = store.var("x", Sort::Int);
        let even = store.app("even", vec![x], Sort::Bool);
        let five = store.int(5);
        let big = store.ge(x, five);
        solver.assert_formula(&store, even);
        solver.assert_formula(&store, big);
        let mut plugin = EvenExpander;
        match solver.check_with_expander(&mut store, &mut plugin) {
            SatResult::Sat(m) => assert!(m.eval_int(&store, x) >= 5),
            other => panic!("expected sat, got {other:?}"),
        }
    }

    #[test]
    fn unconstrained_problem_is_sat() {
        let mut store = TermStore::new();
        let mut solver = Solver::new();
        let t = store.tt();
        solver.assert_formula(&store, t);
        assert!(solver.check(&mut store).is_sat());
    }

    #[test]
    fn contradictory_constants() {
        let mut store = TermStore::new();
        let mut solver = Solver::new();
        let f = store.ff();
        solver.assert_formula(&store, f);
        assert!(solver.check(&mut store).is_unsat());
    }
}
