//! The DPLL(T) solver: SAT core + theories + lazy expansion.
//!
//! The solving loop is the "offline" (model-driven) integration of the
//! propositional core with the theory solvers:
//!
//! 1. the boolean abstraction of the asserted formulas is solved by the CDCL
//!    core ([`crate::sat`]);
//! 2. the resulting atom assignment is checked against linear integer
//!    arithmetic ([`crate::lia`]) and congruence closure ([`crate::euf`]);
//!    inconsistencies are turned into (greedily minimized) blocking clauses;
//! 3. uninterpreted predicate atoms are offered to the [`LazyExpander`]
//!    plugin, which may assert new lemmas (the unrolling of JMatch invariants
//!    and `matches`/`ensures` clauses); expansion depth is bounded and the
//!    bound is raised by the iterative-deepening driver
//!    [`Solver::check_with_expander`];
//! 4. when neither theories nor the plugin object to a candidate model, it is
//!    returned as [`SatResult::Sat`].
//!
//! The loop terminates because each blocking clause eliminates at least one
//! assignment of the (finite) atom vocabulary, the plugin is called at most
//! once per (atom, polarity, depth), and a round budget backstops everything.
//!
//! ## Sessions: `push` / `pop` and persistent learning
//!
//! A [`Solver`] is an incremental *session*, mirroring how the paper keeps a
//! single Z3 process alive across all verification conditions. Between
//! queries (delimited with [`Solver::push`] / [`Solver::pop`]), the state
//! that persists is exactly the state later queries can profit from:
//!
//! * the caller's **term store** and the **atom encodings** (theory atoms
//!   keep their propositional variables for the whole session, so models and
//!   blocking clauses stay meaningful),
//! * theory **blocking clauses** (an atom set found LIA/EUF-inconsistent
//!   stays blocked forever — theory conflicts are valid in every context),
//!   along with any CDCL clauses learned from scope-independent clauses,
//! * the expansion **lemma cache**: lemmas are recorded guarded by the
//!   polarity that triggered them (`guard ⇒ lemma` / `¬guard ⇒ lemma`) —
//!   globally valid facts — and later queries *replay* them directly instead
//!   of re-running the (expensive) plugin derivation.
//!
//! Query-local state retires with the query's scope: its assertions, the
//! Tseitin definitions of its (typically one-off) composite formulas, its
//! lemma instantiations, and CDCL clauses learned from any of those — the
//! selector literal that conflict analysis threads through them lets the pop
//! garbage-collect the lot. The SAT core therefore only ever carries the
//! clauses of the query at hand, while decisions are further gated to
//! variables that still occur in live clauses. This is what makes a
//! long-lived session strictly cheaper than rebuilding a solver per query,
//! instead of drowning in its own history.
//!
//! Each query theory-checks and expands only the atoms reachable from its own
//! active assertions (closed over the lemmas previously attached to them), so
//! atoms left over from unrelated queries can neither produce spurious
//! `Unknown`s nor slow down theory checks.
//!
//! Because encodings are cached by [`TermId`], a session must always be used
//! with the **same** [`TermStore`], and — since expansion state persists —
//! with expanders that agree on the meaning of the interpreted predicates
//! (e.g. one `JMatchExpander` per compiled program).

use crate::cnf::Encoder;
use crate::euf::{self, EufResult};
use crate::lia::{self, LiaResult};
use crate::model::Model;
use crate::plugin::{Expansion, LazyExpander, NoExpansion};
use crate::sat::{Lit, SatOutcome, SatSolver};
use crate::sorts::Sort;
use crate::term::{TermData, TermId, TermStore};
use std::collections::{HashMap, HashSet};

/// Result of an SMT query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SatResult {
    /// Satisfiable; the payload is a model of the asserted formulas.
    Sat(Model),
    /// Unsatisfiable.
    Unsat,
    /// The solver gave up (expansion-depth or budget exhaustion). The JMatch
    /// verifier reports this as "could not find a counterexample, but there
    /// might be one".
    Unknown,
}

impl SatResult {
    /// Whether the result is [`SatResult::Sat`].
    pub fn is_sat(&self) -> bool {
        matches!(self, SatResult::Sat(_))
    }

    /// Whether the result is [`SatResult::Unsat`].
    pub fn is_unsat(&self) -> bool {
        matches!(self, SatResult::Unsat)
    }

    /// The model if satisfiable.
    pub fn model(&self) -> Option<&Model> {
        match self {
            SatResult::Sat(m) => Some(m),
            _ => None,
        }
    }
}

/// Tuning knobs for the solving loop.
#[derive(Debug, Clone)]
pub struct SolverConfig {
    /// Maximum lazy-expansion depth reached by iterative deepening.
    pub max_expansion_depth: u32,
    /// Maximum number of SAT-model/theory-check rounds per depth.
    pub max_rounds: u64,
    /// Whether theory conflicts are greedily minimized before blocking.
    pub minimize_conflicts: bool,
}

impl Default for SolverConfig {
    fn default() -> Self {
        SolverConfig {
            max_expansion_depth: 3,
            max_rounds: 20_000,
            minimize_conflicts: true,
        }
    }
}

/// Statistics accumulated across `check` calls.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Number of candidate boolean models examined.
    pub rounds: u64,
    /// Number of theory conflicts (blocking clauses added).
    pub theory_conflicts: u64,
    /// Number of plugin lemmas asserted.
    pub lemmas: u64,
    /// Of the asserted lemmas, how many came from the session's replay cache
    /// instead of a plugin call (cross-query expansion reuse).
    pub lemmas_replayed: u64,
    /// Deepest expansion level reached.
    pub max_depth_reached: u32,
}

/// An incremental SMT solver session.
///
/// Formulas are built in a caller-owned [`TermStore`] and asserted with
/// [`Solver::assert_formula`]; [`Solver::check`] then decides satisfiability
/// of their conjunction. Queries can be delimited with [`Solver::push`] /
/// [`Solver::pop`]: popped assertions retire, while learned clauses, the
/// Tseitin encoding, and expansion lemmas persist and accelerate later
/// queries (see the [module documentation](self) for the session model).
#[derive(Debug)]
pub struct Solver {
    assertions: Vec<TermId>,
    /// Watermarks into `assertions`, one per open scope.
    scopes: Vec<usize>,
    config: SolverConfig,
    stats: SolverStats,
    sat: SatSolver,
    encoder: Encoder,
    /// Polarity-guarded lemmas previously derived for each `(atom, polarity)`
    /// pair. Later queries replay these directly instead of calling the
    /// expander again — the session's semantic learning.
    lemma_cache: HashMap<(TermId, bool), Vec<TermId>>,
    /// Iterative-deepening depth at which each atom first appeared (0 for
    /// atoms of directly asserted formulas).
    atom_depth: HashMap<TermId, u32>,
    /// For each expanded guard atom, the atoms its lemmas introduced — used
    /// to close each query's set of theory-relevant atoms.
    lemma_atoms: HashMap<TermId, Vec<TermId>>,
}

impl Default for Solver {
    fn default() -> Self {
        Solver::new()
    }
}

impl Solver {
    /// Creates a solver with the default configuration.
    pub fn new() -> Self {
        Self::with_config(SolverConfig::default())
    }

    /// Creates a solver with an explicit configuration.
    pub fn with_config(config: SolverConfig) -> Self {
        Solver {
            assertions: Vec::new(),
            scopes: Vec::new(),
            config,
            stats: SolverStats::default(),
            sat: SatSolver::new(),
            encoder: Encoder::new(),
            lemma_cache: HashMap::new(),
            atom_depth: HashMap::new(),
            lemma_atoms: HashMap::new(),
        }
    }

    /// The solver configuration.
    pub fn config(&self) -> &SolverConfig {
        &self.config
    }

    /// Mutable access to the configuration (before calling `check`).
    pub fn config_mut(&mut self) -> &mut SolverConfig {
        &mut self.config
    }

    /// Statistics from the most recent `check` call.
    pub fn stats(&self) -> SolverStats {
        self.stats
    }

    /// Cumulative counters of the underlying CDCL core over the whole
    /// session: `(conflicts, decisions, propagations)`.
    pub fn sat_counters(&self) -> (u64, u64, u64) {
        (
            self.sat.conflicts(),
            self.sat.decisions(),
            self.sat.propagations(),
        )
    }

    /// Asserts a boolean formula in the innermost open scope.
    ///
    /// The formula is encoded into the persistent SAT core immediately, so
    /// the term must come from the same [`TermStore`] on every call.
    ///
    /// # Panics
    ///
    /// Panics if the term is not boolean-sorted.
    pub fn assert_formula(&mut self, store: &TermStore, f: TermId) {
        assert!(
            store.sort(f).is_bool(),
            "assert_formula: {} is not a formula",
            store.display(f)
        );
        self.encoder.assert_scoped_formula(store, &mut self.sat, f);
        for a in store.atoms(f) {
            self.atom_depth.insert(a, 0);
        }
        self.assertions.push(f);
    }

    /// All currently active assertions (those of open scopes, oldest first).
    pub fn assertions(&self) -> &[TermId] {
        &self.assertions
    }

    /// Opens an assertion scope: assertions made until the matching
    /// [`Solver::pop`] retire with it.
    pub fn push(&mut self) {
        self.scopes.push(self.assertions.len());
        self.sat.push();
        self.encoder.push_scope();
    }

    /// Closes the innermost assertion scope, retiring its assertions while
    /// keeping everything the session learned from them.
    ///
    /// # Panics
    ///
    /// Panics if no scope is open.
    pub fn pop(&mut self) {
        let mark = self
            .scopes
            .pop()
            .expect("Solver::pop without a matching push");
        self.assertions.truncate(mark);
        self.encoder.pop_scope();
        self.sat.pop();
    }

    /// Number of currently open assertion scopes.
    pub fn scope_depth(&self) -> usize {
        self.scopes.len()
    }

    /// Discards the entire session state (assertions, scopes, learned
    /// clauses, encodings, expansion lemmas), keeping the configuration.
    pub fn reset(&mut self) {
        *self = Solver::with_config(self.config.clone());
    }

    /// Decides satisfiability without lazy expansion.
    pub fn check(&mut self, store: &mut TermStore) -> SatResult {
        let mut no_expansion = NoExpansion;
        self.check_with_expander(store, &mut no_expansion)
    }

    /// Decides satisfiability with a lazy-expansion plugin, using iterative
    /// deepening on the expansion depth (§6.2 of the paper).
    pub fn check_with_expander(
        &mut self,
        store: &mut TermStore,
        expander: &mut dyn LazyExpander,
    ) -> SatResult {
        self.stats = SolverStats::default();
        // Guard atoms whose lemmas were asserted during this check. Lemma
        // assertions are scoped, so the set is per-check: a later check in
        // the same session re-asserts them (cheaply, via the replay cache).
        let mut expanded: HashSet<(TermId, bool)> = HashSet::new();
        let mut last = SatResult::Unknown;
        for depth in 1..=self.config.max_expansion_depth.max(1) {
            last = self.solve_round(store, expander, &mut expanded, depth);
            match last {
                SatResult::Sat(_) | SatResult::Unsat => return last,
                SatResult::Unknown => continue,
            }
        }
        last
    }

    /// One run of the DPLL(T) loop with a fixed expansion-depth bound,
    /// against the persistent session state.
    fn solve_round(
        &mut self,
        store: &mut TermStore,
        expander: &mut dyn LazyExpander,
        expanded: &mut HashSet<(TermId, bool)>,
        max_depth: u32,
    ) -> SatResult {
        // The atoms this query is about: those of the active assertions,
        // closed over the lemmas previously attached to them. Only these are
        // theory-checked and offered for expansion, so leftover atoms from
        // other queries in the same session cannot influence the verdict.
        let mut relevant: HashSet<TermId> = HashSet::new();
        let mut seed: Vec<TermId> = Vec::new();
        for &f in &self.assertions {
            for a in store.atoms(f) {
                if relevant.insert(a) {
                    seed.push(a);
                }
            }
        }
        close_over_lemmas(&self.lemma_atoms, &mut relevant, seed);
        // Deterministically ordered view of `relevant`, so theory checks and
        // conflict minimization see a stable atom order regardless of hash
        // iteration order.
        let mut rel_sorted: Vec<TermId> = relevant.iter().copied().collect();
        rel_sorted.sort_unstable();

        let mut rounds = 0u64;
        loop {
            rounds += 1;
            self.stats.rounds += 1;
            if rounds > self.config.max_rounds {
                return SatResult::Unknown;
            }
            match self.sat.solve() {
                SatOutcome::Unsat => return SatResult::Unsat,
                SatOutcome::Sat => {}
            }

            // Gather the relevant part of the atom assignment chosen by the
            // SAT core.
            let assignment: Vec<(TermId, bool)> = rel_sorted
                .iter()
                .filter_map(|&t| {
                    let v = self.encoder.var_for_atom(t)?;
                    self.sat.value(v).map(|b| (t, b))
                })
                .collect();

            let arith: Vec<(TermId, bool)> = assignment
                .iter()
                .copied()
                .filter(|&(t, _)| is_arith_atom(store, t))
                .collect();
            let equality: Vec<(TermId, bool)> = assignment
                .iter()
                .copied()
                .filter(|&(t, _)| is_euf_atom(store, t))
                .collect();

            // Linear integer arithmetic.
            let mut lia_unknown = false;
            let mut lia_model: HashMap<TermId, i64> = HashMap::new();
            match lia::check(store, &arith) {
                LiaResult::Infeasible(_) => {
                    self.stats.theory_conflicts += 1;
                    let core = self.minimize(store, &arith, |s, sub| {
                        matches!(lia::check(s, sub), LiaResult::Infeasible(_))
                    });
                    self.block(store, &core);
                    continue;
                }
                LiaResult::Unknown => lia_unknown = true,
                LiaResult::Feasible(m) => lia_model = m,
            }

            // Equality and uninterpreted functions.
            match euf::check(store, &equality) {
                EufResult::Inconsistent(_) => {
                    self.stats.theory_conflicts += 1;
                    let core = self.minimize(store, &equality, |s, sub| {
                        matches!(euf::check(s, sub), EufResult::Inconsistent(_))
                    });
                    self.block(store, &core);
                    continue;
                }
                EufResult::Consistent => {}
            }

            // Lazy expansion of interpreted predicates. Guards already seen
            // by this session replay their cached lemmas without consulting
            // the plugin; new guards are expanded and their (polarity-
            // guarded) lemmas cached for the rest of the session.
            let mut new_lemmas: Vec<(TermId, TermId, u32, bool)> = Vec::new();
            let mut beyond_depth = false;
            for &(atom, value) in &assignment {
                if !matches!(store.data(atom), TermData::App(_, _, Sort::Bool)) {
                    continue;
                }
                if expanded.contains(&(atom, value)) {
                    continue;
                }
                let cached = self.lemma_cache.contains_key(&(atom, value));
                if !cached && !expander.can_expand(store, atom, value) {
                    continue;
                }
                let depth = self.atom_depth.get(&atom).copied().unwrap_or(0);
                if depth >= max_depth {
                    beyond_depth = true;
                    continue;
                }
                if cached {
                    expanded.insert((atom, value));
                    self.stats.max_depth_reached = self.stats.max_depth_reached.max(depth + 1);
                    for &g in &self.lemma_cache[&(atom, value)] {
                        new_lemmas.push((atom, g, depth + 1, true));
                    }
                    continue;
                }
                match expander.expand(store, atom, value, depth) {
                    Expansion::NotApplicable => {}
                    Expansion::Lemmas(lemmas) => {
                        expanded.insert((atom, value));
                        self.stats.max_depth_reached = self.stats.max_depth_reached.max(depth + 1);
                        // Guard each lemma with the polarity that triggered
                        // it: the plugin contract is "when `atom` has value
                        // `value`, the lemma holds", so the guarded
                        // implication is a valid fact in every context and
                        // can be replayed by any later query.
                        let antecedent = if value { atom } else { store.not(atom) };
                        let guarded: Vec<TermId> = lemmas
                            .into_iter()
                            .map(|l| store.implies(antecedent, l))
                            .collect();
                        for &g in &guarded {
                            new_lemmas.push((atom, g, depth + 1, false));
                        }
                        self.lemma_cache.insert((atom, value), guarded);
                    }
                }
            }
            if !new_lemmas.is_empty() {
                for (guard, guarded, depth, replayed) in new_lemmas {
                    self.stats.lemmas += 1;
                    if replayed {
                        self.stats.lemmas_replayed += 1;
                    }
                    // Lemma instantiations are scoped: they retire with the
                    // query and are re-asserted from the cache when a later
                    // query needs them, so the SAT core only ever carries the
                    // clauses of the query at hand.
                    self.encoder
                        .assert_scoped_formula(store, &mut self.sat, guarded);
                    let introduced = store.atoms(guarded);
                    let mut newly: Vec<TermId> = Vec::new();
                    for &a in &introduced {
                        self.atom_depth
                            .entry(a)
                            .and_modify(|d| *d = (*d).min(depth))
                            .or_insert(depth);
                        if relevant.insert(a) {
                            newly.push(a);
                        }
                    }
                    close_over_lemmas(&self.lemma_atoms, &mut relevant, newly);
                    if !replayed {
                        self.lemma_atoms
                            .entry(guard)
                            .or_default()
                            .extend(introduced);
                    }
                }
                // Lemmas may have introduced new relevant atoms.
                if rel_sorted.len() != relevant.len() {
                    rel_sorted = relevant.iter().copied().collect();
                    rel_sorted.sort_unstable();
                }
                continue;
            }

            if beyond_depth || lia_unknown {
                // Some fact could not be expanded within the depth budget (or
                // arithmetic gave up): the candidate model may be spurious.
                return SatResult::Unknown;
            }

            // Consistent and fully expanded: build the model.
            let mut model = Model::new();
            for &(t, v) in &assignment {
                model.bools.insert(t, v);
            }
            model.ints = lia_model;
            model.object_classes = euf::classes(store, &equality);
            return SatResult::Sat(model);
        }
    }

    /// Greedy deletion-based minimization of a theory conflict.
    fn minimize(
        &self,
        store: &TermStore,
        assignments: &[(TermId, bool)],
        still_conflicting: impl Fn(&TermStore, &[(TermId, bool)]) -> bool,
    ) -> Vec<(TermId, bool)> {
        let mut core: Vec<(TermId, bool)> = assignments.to_vec();
        if !self.config.minimize_conflicts {
            return core;
        }
        let mut i = 0;
        while i < core.len() {
            if core.len() <= 1 {
                break;
            }
            let mut candidate = core.clone();
            candidate.remove(i);
            if still_conflicting(store, &candidate) {
                core = candidate;
            } else {
                i += 1;
            }
        }
        core
    }

    /// Adds a permanent blocking clause ruling out the given theory-
    /// inconsistent partial atom assignment (valid in every context, so it
    /// survives scope pops).
    fn block(&mut self, store: &TermStore, core: &[(TermId, bool)]) {
        let clause: Vec<Lit> = core
            .iter()
            .map(|&(atom, value)| {
                let lit = self.encoder.encode(store, &mut self.sat, atom);
                if value {
                    lit.negate()
                } else {
                    lit
                }
            })
            .collect();
        self.sat.add_clause(&clause);
    }
}

/// Extends `relevant` with every atom reachable from `frontier` through the
/// recorded guard-atom → lemma-atoms edges.
fn close_over_lemmas(
    lemma_atoms: &HashMap<TermId, Vec<TermId>>,
    relevant: &mut HashSet<TermId>,
    mut frontier: Vec<TermId>,
) {
    while let Some(a) = frontier.pop() {
        if let Some(children) = lemma_atoms.get(&a) {
            for &b in children {
                if relevant.insert(b) {
                    frontier.push(b);
                }
            }
        }
    }
}

fn is_arith_atom(store: &TermStore, t: TermId) -> bool {
    match store.data(t) {
        TermData::Le(..) | TermData::Lt(..) => true,
        TermData::Eq(a, _) => store.sort(*a).is_int(),
        _ => false,
    }
}

fn is_euf_atom(store: &TermStore, t: TermId) -> bool {
    match store.data(t) {
        TermData::Eq(a, _) => !store.sort(*a).is_bool(),
        TermData::App(_, _, Sort::Bool) => true,
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn propositional_only() {
        let mut store = TermStore::new();
        let mut solver = Solver::new();
        let p = store.var("p", Sort::Bool);
        let q = store.var("q", Sort::Bool);
        let imp = store.implies(p, q);
        solver.assert_formula(&store, p);
        solver.assert_formula(&store, imp);
        let nq = store.not(q);
        solver.assert_formula(&store, nq);
        assert_eq!(solver.check(&mut store), SatResult::Unsat);
    }

    #[test]
    fn arithmetic_conflict_detected() {
        let mut store = TermStore::new();
        let mut solver = Solver::new();
        let x = store.var("x", Sort::Int);
        let zero = store.int(0);
        let a1 = store.lt(x, zero);
        let a2 = store.ge(x, zero);
        solver.assert_formula(&store, a1);
        solver.assert_formula(&store, a2);
        assert_eq!(solver.check(&mut store), SatResult::Unsat);
    }

    #[test]
    fn arithmetic_model_produced() {
        let mut store = TermStore::new();
        let mut solver = Solver::new();
        let x = store.var("x", Sort::Int);
        let y = store.var("y", Sort::Int);
        let one = store.int(1);
        let xp1 = store.add(x, one);
        let a1 = store.eq(y, xp1);
        let five = store.int(5);
        let a2 = store.ge(x, five);
        solver.assert_formula(&store, a1);
        solver.assert_formula(&store, a2);
        match solver.check(&mut store) {
            SatResult::Sat(m) => {
                let xv = m.eval_int(&store, x);
                let yv = m.eval_int(&store, y);
                assert!(xv >= 5);
                assert_eq!(yv, xv + 1);
            }
            other => panic!("expected sat, got {other:?}"),
        }
    }

    #[test]
    fn disjunction_over_theories() {
        // (x <= 0 or x >= 10) and 3 <= x <= 7 is unsat.
        let mut store = TermStore::new();
        let mut solver = Solver::new();
        let x = store.var("x", Sort::Int);
        let zero = store.int(0);
        let ten = store.int(10);
        let three = store.int(3);
        let seven = store.int(7);
        let low = store.le(x, zero);
        let high = store.ge(x, ten);
        let disj = store.or2(low, high);
        let lo = store.ge(x, three);
        let hi = store.le(x, seven);
        solver.assert_formula(&store, disj);
        solver.assert_formula(&store, lo);
        solver.assert_formula(&store, hi);
        assert_eq!(solver.check(&mut store), SatResult::Unsat);
    }

    #[test]
    fn euf_and_arithmetic_together() {
        // o1 = o2 and zero(o1) and !zero(o2) is unsat (predicate congruence).
        let mut store = TermStore::new();
        let mut solver = Solver::new();
        let nat = store.symbol("Nat");
        let o1 = store.var("o1", Sort::Obj(nat));
        let o2 = store.var("o2", Sort::Obj(nat));
        let z1 = store.app("zero", vec![o1], Sort::Bool);
        let z2 = store.app("zero", vec![o2], Sort::Bool);
        let eq = store.eq(o1, o2);
        solver.assert_formula(&store, eq);
        solver.assert_formula(&store, z1);
        let nz2 = store.not(z2);
        solver.assert_formula(&store, nz2);
        assert_eq!(solver.check(&mut store), SatResult::Unsat);
    }

    #[test]
    fn model_respects_object_equalities() {
        let mut store = TermStore::new();
        let mut solver = Solver::new();
        let nat = store.symbol("Nat");
        let o1 = store.var("o1", Sort::Obj(nat));
        let o2 = store.var("o2", Sort::Obj(nat));
        let o3 = store.var("o3", Sort::Obj(nat));
        let e12 = store.eq(o1, o2);
        let e13 = store.eq(o1, o3);
        let ne13 = store.not(e13);
        solver.assert_formula(&store, e12);
        solver.assert_formula(&store, ne13);
        match solver.check(&mut store) {
            SatResult::Sat(m) => {
                assert_eq!(m.object_classes[&o1], m.object_classes[&o2]);
                assert_ne!(m.object_classes[&o1], m.object_classes[&o3]);
            }
            other => panic!("expected sat, got {other:?}"),
        }
    }

    /// A plugin that expands the predicate `even(x)` into the lemma
    /// `even(x) => x >= 0` (a deliberately weak fact, enough to test the
    /// expansion loop).
    struct EvenExpander;
    impl LazyExpander for EvenExpander {
        fn can_expand(&self, store: &TermStore, atom: TermId, _value: bool) -> bool {
            match store.data(atom) {
                TermData::App(sym, _, _) => store.symbol_name(*sym) == "even",
                _ => false,
            }
        }
        fn expand(
            &mut self,
            store: &mut TermStore,
            atom: TermId,
            value: bool,
            _depth: u32,
        ) -> Expansion {
            let arg = match store.data(atom) {
                TermData::App(_, args, _) => args[0],
                _ => return Expansion::NotApplicable,
            };
            if value {
                let zero = store.int(0);
                let fact = store.ge(arg, zero);
                Expansion::Lemmas(vec![fact])
            } else {
                Expansion::Lemmas(vec![])
            }
        }
    }

    #[test]
    fn lazy_expansion_makes_problem_unsat() {
        // even(x) and x < 0 becomes unsat once the lemma even(x) => x >= 0
        // is asserted by the plugin.
        let mut store = TermStore::new();
        let mut solver = Solver::new();
        let x = store.var("x", Sort::Int);
        let even = store.app("even", vec![x], Sort::Bool);
        let zero = store.int(0);
        let neg = store.lt(x, zero);
        solver.assert_formula(&store, even);
        solver.assert_formula(&store, neg);
        let mut plugin = EvenExpander;
        assert_eq!(
            solver.check_with_expander(&mut store, &mut plugin),
            SatResult::Unsat
        );
        assert!(solver.stats().lemmas >= 1);
    }

    #[test]
    fn lazy_expansion_still_sat_when_consistent() {
        let mut store = TermStore::new();
        let mut solver = Solver::new();
        let x = store.var("x", Sort::Int);
        let even = store.app("even", vec![x], Sort::Bool);
        let five = store.int(5);
        let big = store.ge(x, five);
        solver.assert_formula(&store, even);
        solver.assert_formula(&store, big);
        let mut plugin = EvenExpander;
        match solver.check_with_expander(&mut store, &mut plugin) {
            SatResult::Sat(m) => assert!(m.eval_int(&store, x) >= 5),
            other => panic!("expected sat, got {other:?}"),
        }
    }

    #[test]
    fn unconstrained_problem_is_sat() {
        let mut store = TermStore::new();
        let mut solver = Solver::new();
        let t = store.tt();
        solver.assert_formula(&store, t);
        assert!(solver.check(&mut store).is_sat());
    }

    #[test]
    fn contradictory_constants() {
        let mut store = TermStore::new();
        let mut solver = Solver::new();
        let f = store.ff();
        solver.assert_formula(&store, f);
        assert!(solver.check(&mut store).is_unsat());
    }

    // ------------------------------------------------------------------
    // Session (push/pop) semantics
    // ------------------------------------------------------------------

    #[test]
    fn popped_assertions_retire() {
        let mut store = TermStore::new();
        let mut solver = Solver::new();
        let x = store.var("x", Sort::Int);
        let zero = store.int(0);
        let pos = store.gt(x, zero);
        let neg = store.lt(x, zero);
        solver.assert_formula(&store, pos);
        solver.push();
        solver.assert_formula(&store, neg);
        assert_eq!(solver.assertions().len(), 2);
        assert_eq!(solver.check(&mut store), SatResult::Unsat);
        solver.pop();
        assert_eq!(solver.assertions(), &[pos]);
        // Only x > 0 is left; the session must be satisfiable again.
        match solver.check(&mut store) {
            SatResult::Sat(m) => assert!(m.eval_int(&store, x) > 0),
            other => panic!("expected sat after pop, got {other:?}"),
        }
    }

    #[test]
    fn push_pop_reassert_matches_fresh_solver() {
        // Asserting, popping, and re-asserting must give the same SatResult
        // as a fresh solver on the same formulas — for both polarities of
        // outcome, across a session that interleaves unrelated queries.
        let build = |store: &mut TermStore| {
            let x = store.var("x", Sort::Int);
            let y = store.var("y", Sort::Int);
            let zero = store.int(0);
            let ten = store.int(10);
            let f_sat = vec![store.ge(x, zero), store.le(x, ten), store.eq(y, x)];
            let lt = store.lt(x, zero);
            let ge = store.ge(x, zero);
            let f_unsat = vec![lt, ge];
            (f_sat, f_unsat)
        };

        // Fresh-solver verdicts.
        let mut fresh_store = TermStore::new();
        let (f_sat, f_unsat) = build(&mut fresh_store);
        let fresh_verdict = |fs: &[TermId], store: &mut TermStore| {
            let mut s = Solver::new();
            for &f in fs {
                s.assert_formula(store, f);
            }
            s.check(store)
        };
        assert!(fresh_verdict(&f_sat, &mut fresh_store).is_sat());
        assert!(fresh_verdict(&f_unsat, &mut fresh_store).is_unsat());

        // One session, same formulas, exercised twice with a pop in between.
        let mut store = TermStore::new();
        let (f_sat, f_unsat) = build(&mut store);
        let mut session = Solver::new();
        for round in 0..2 {
            session.push();
            for &f in &f_unsat {
                session.assert_formula(&store, f);
            }
            assert!(
                session.check(&mut store).is_unsat(),
                "round {round}: unsat query flipped"
            );
            session.pop();

            session.push();
            for &f in &f_sat {
                session.assert_formula(&store, f);
            }
            assert!(
                session.check(&mut store).is_sat(),
                "round {round}: sat query flipped"
            );
            session.pop();
        }
        assert_eq!(session.scope_depth(), 0);
    }

    #[test]
    fn expansion_lemmas_replay_across_queries() {
        // The first query expands even(x) through the plugin; the second
        // query over the same atom must reach the same verdict by replaying
        // the cached lemma, without calling the plugin again.
        struct CountingEven(u32);
        impl LazyExpander for CountingEven {
            fn can_expand(&self, store: &TermStore, atom: TermId, value: bool) -> bool {
                EvenExpander.can_expand(store, atom, value)
            }
            fn expand(
                &mut self,
                store: &mut TermStore,
                atom: TermId,
                value: bool,
                depth: u32,
            ) -> Expansion {
                self.0 += 1;
                EvenExpander.expand(store, atom, value, depth)
            }
        }

        let mut store = TermStore::new();
        let mut solver = Solver::new();
        let x = store.var("x", Sort::Int);
        let even = store.app("even", vec![x], Sort::Bool);
        let zero = store.int(0);
        let neg = store.lt(x, zero);
        let mut plugin = CountingEven(0);

        solver.push();
        solver.assert_formula(&store, even);
        solver.assert_formula(&store, neg);
        assert_eq!(
            solver.check_with_expander(&mut store, &mut plugin),
            SatResult::Unsat
        );
        assert!(solver.stats().lemmas >= 1, "first query must expand");
        assert_eq!(solver.stats().lemmas_replayed, 0);
        let calls_after_first = plugin.0;
        assert!(calls_after_first >= 1);
        solver.pop();

        solver.push();
        solver.assert_formula(&store, even);
        solver.assert_formula(&store, neg);
        assert_eq!(
            solver.check_with_expander(&mut store, &mut plugin),
            SatResult::Unsat
        );
        assert!(
            solver.stats().lemmas_replayed >= 1,
            "second query must replay cached lemmas"
        );
        assert_eq!(
            plugin.0, calls_after_first,
            "the plugin must not be consulted again"
        );
        solver.pop();
    }

    #[test]
    fn expansion_lemmas_do_not_leak_unconditionally() {
        // Query 1 expands even(x) into x >= 0. Query 2 asserts only x < 0:
        // the lemma must stay guarded by even(x) and the query must be Sat.
        let mut store = TermStore::new();
        let mut solver = Solver::new();
        let x = store.var("x", Sort::Int);
        let even = store.app("even", vec![x], Sort::Bool);
        let zero = store.int(0);
        let neg = store.lt(x, zero);
        let mut plugin = EvenExpander;

        solver.push();
        solver.assert_formula(&store, even);
        assert!(solver.check_with_expander(&mut store, &mut plugin).is_sat());
        solver.pop();

        solver.push();
        solver.assert_formula(&store, neg);
        match solver.check_with_expander(&mut store, &mut plugin) {
            SatResult::Sat(m) => assert!(m.eval_int(&store, x) < 0),
            other => panic!("x < 0 alone must be sat, got {other:?}"),
        }
        solver.pop();
    }

    #[test]
    fn reset_clears_the_session() {
        let mut store = TermStore::new();
        let mut solver = Solver::new();
        let f = store.ff();
        solver.assert_formula(&store, f);
        assert!(solver.check(&mut store).is_unsat());
        solver.reset();
        assert!(solver.assertions().is_empty());
        let t = store.tt();
        solver.assert_formula(&store, t);
        assert!(solver.check(&mut store).is_sat());
    }
}
