//! Sorts (types) of SMT terms.

use crate::sym::Symbol;
use std::fmt;

/// The sort of a term.
///
/// The JMatch verification conditions only require booleans, mathematical
/// integers and uninterpreted object sorts (one per JMatch reference type),
/// so the sort language is deliberately small.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Sort {
    /// The boolean sort.
    Bool,
    /// Mathematical (unbounded) integers.
    Int,
    /// An uninterpreted sort identified by name, used for JMatch object types.
    Obj(Symbol),
}

impl Sort {
    /// Whether this sort is [`Sort::Bool`].
    pub fn is_bool(self) -> bool {
        matches!(self, Sort::Bool)
    }

    /// Whether this sort is [`Sort::Int`].
    pub fn is_int(self) -> bool {
        matches!(self, Sort::Int)
    }

    /// Whether this sort is an uninterpreted object sort.
    pub fn is_obj(self) -> bool {
        matches!(self, Sort::Obj(_))
    }
}

impl fmt::Display for Sort {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Sort::Bool => write!(f, "Bool"),
            Sort::Int => write!(f, "Int"),
            Sort::Obj(s) => write!(f, "Obj({s})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predicates() {
        assert!(Sort::Bool.is_bool());
        assert!(Sort::Int.is_int());
        assert!(Sort::Obj(Symbol(0)).is_obj());
        assert!(!Sort::Int.is_bool());
        assert!(!Sort::Bool.is_obj());
    }
}
