//! String interning.
//!
//! Every name that flows through the solver (variable names, uninterpreted
//! function and predicate names, sort names) is interned into a [`Symbol`],
//! a small copyable handle that is cheap to hash and compare.

use std::collections::HashMap;
use std::fmt;

/// An interned string handle.
///
/// Symbols are only meaningful relative to the [`Interner`] (and therefore the
/// [`crate::TermStore`]) that created them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Symbol(pub(crate) u32);

impl Symbol {
    /// Raw index of the symbol inside its interner.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A simple append-only string interner.
#[derive(Debug, Default, Clone)]
pub struct Interner {
    names: Vec<String>,
    map: HashMap<String, Symbol>,
}

impl Interner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `name`, returning the existing symbol if it was seen before.
    pub fn intern(&mut self, name: &str) -> Symbol {
        if let Some(&sym) = self.map.get(name) {
            return sym;
        }
        let sym = Symbol(self.names.len() as u32);
        self.names.push(name.to_owned());
        self.map.insert(name.to_owned(), sym);
        sym
    }

    /// Returns the string for `sym`.
    ///
    /// # Panics
    ///
    /// Panics if `sym` was produced by a different interner.
    pub fn resolve(&self, sym: Symbol) -> &str {
        &self.names[sym.index()]
    }

    /// Looks up a symbol without interning.
    pub fn lookup(&self, name: &str) -> Option<Symbol> {
        self.map.get(name).copied()
    }

    /// Number of interned symbols.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the interner is empty.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sym#{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut i = Interner::new();
        let a = i.intern("x");
        let b = i.intern("x");
        assert_eq!(a, b);
        assert_eq!(i.resolve(a), "x");
    }

    #[test]
    fn distinct_names_get_distinct_symbols() {
        let mut i = Interner::new();
        let a = i.intern("x");
        let b = i.intern("y");
        assert_ne!(a, b);
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn lookup_does_not_intern() {
        let mut i = Interner::new();
        assert!(i.lookup("z").is_none());
        let z = i.intern("z");
        assert_eq!(i.lookup("z"), Some(z));
    }
}
