//! Hash-consed terms and formulas.
//!
//! The solver works over a single arena of terms ([`TermStore`]). Boolean
//! structure (conjunction, disjunction, negation, implication) and theory
//! atoms (integer comparisons, equalities, uninterpreted predicate
//! applications) all live in the same arena; a *formula* is simply a term of
//! sort [`Sort::Bool`].

use crate::sorts::Sort;
use crate::sym::{Interner, Symbol};
use std::collections::{HashMap, HashSet};
use std::fmt;

/// Handle to a term inside a [`TermStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TermId(pub(crate) u32);

impl TermId {
    /// Raw arena index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The shape of a term.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum TermData {
    /// Boolean constant.
    BoolConst(bool),
    /// Integer constant.
    IntConst(i64),
    /// A free variable with an explicit sort.
    Var(Symbol, Sort),
    /// Application of an uninterpreted function or predicate.
    ///
    /// The result sort is stored explicitly; a `Bool`-sorted application is an
    /// uninterpreted predicate (these are the hooks used for lazy expansion of
    /// JMatch invariants and `matches`/`ensures` clauses).
    App(Symbol, Vec<TermId>, Sort),
    /// Integer addition.
    Add(TermId, TermId),
    /// Integer subtraction.
    Sub(TermId, TermId),
    /// Integer negation.
    Neg(TermId),
    /// Multiplication by an integer constant (the only multiplication the
    /// linear fragment admits).
    MulConst(i64, TermId),
    /// `lhs <= rhs` over integers.
    Le(TermId, TermId),
    /// `lhs < rhs` over integers.
    Lt(TermId, TermId),
    /// Equality. Polymorphic: both sides must share a sort.
    Eq(TermId, TermId),
    /// Logical negation.
    Not(TermId),
    /// N-ary conjunction.
    And(Vec<TermId>),
    /// N-ary disjunction.
    Or(Vec<TermId>),
    /// Implication.
    Implies(TermId, TermId),
    /// Bi-implication.
    Iff(TermId, TermId),
}

/// Arena of hash-consed terms plus the symbol interner.
#[derive(Debug, Default, Clone)]
pub struct TermStore {
    data: Vec<TermData>,
    sorts: Vec<Sort>,
    cons: HashMap<TermData, TermId>,
    interner: Interner,
    fresh_counter: u64,
}

impl TermStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns a symbol name.
    pub fn symbol(&mut self, name: &str) -> Symbol {
        self.interner.intern(name)
    }

    /// Resolves a symbol back to its name.
    pub fn symbol_name(&self, sym: Symbol) -> &str {
        self.interner.resolve(sym)
    }

    /// Number of distinct terms created so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the store holds no terms.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Returns the data of a term.
    pub fn data(&self, t: TermId) -> &TermData {
        &self.data[t.index()]
    }

    /// Returns the sort of a term.
    pub fn sort(&self, t: TermId) -> Sort {
        self.sorts[t.index()]
    }

    fn mk(&mut self, data: TermData, sort: Sort) -> TermId {
        if let Some(&id) = self.cons.get(&data) {
            return id;
        }
        let id = TermId(self.data.len() as u32);
        self.cons.insert(data.clone(), id);
        self.data.push(data);
        self.sorts.push(sort);
        id
    }

    // ----- leaf builders -----

    /// The boolean constant `true`.
    pub fn tt(&mut self) -> TermId {
        self.mk(TermData::BoolConst(true), Sort::Bool)
    }

    /// The boolean constant `false`.
    pub fn ff(&mut self) -> TermId {
        self.mk(TermData::BoolConst(false), Sort::Bool)
    }

    /// An integer constant.
    pub fn int(&mut self, n: i64) -> TermId {
        self.mk(TermData::IntConst(n), Sort::Int)
    }

    /// A named free variable of the given sort.
    pub fn var(&mut self, name: &str, sort: Sort) -> TermId {
        let sym = self.interner.intern(name);
        self.mk(TermData::Var(sym, sort), sort)
    }

    /// A fresh variable whose name starts with `prefix`, guaranteed not to
    /// collide with any previously created variable of this store.
    pub fn fresh_var(&mut self, prefix: &str, sort: Sort) -> TermId {
        loop {
            self.fresh_counter += 1;
            let name = format!("{prefix}!{}", self.fresh_counter);
            let sym = self.interner.intern(&name);
            let data = TermData::Var(sym, sort);
            if !self.cons.contains_key(&data) {
                return self.mk(data, sort);
            }
        }
    }

    /// Application of an uninterpreted function (or predicate if `sort` is
    /// [`Sort::Bool`]).
    pub fn app(&mut self, name: &str, args: Vec<TermId>, sort: Sort) -> TermId {
        let sym = self.interner.intern(name);
        self.mk(TermData::App(sym, args, sort), sort)
    }

    // ----- arithmetic builders -----

    /// `a + b`.
    ///
    /// # Panics
    ///
    /// Panics if either argument is not integer-sorted.
    pub fn add(&mut self, a: TermId, b: TermId) -> TermId {
        self.expect_int(a, "add");
        self.expect_int(b, "add");
        self.mk(TermData::Add(a, b), Sort::Int)
    }

    /// `a - b`.
    ///
    /// # Panics
    ///
    /// Panics if either argument is not integer-sorted.
    pub fn sub(&mut self, a: TermId, b: TermId) -> TermId {
        self.expect_int(a, "sub");
        self.expect_int(b, "sub");
        self.mk(TermData::Sub(a, b), Sort::Int)
    }

    /// `-a`.
    ///
    /// # Panics
    ///
    /// Panics if the argument is not integer-sorted.
    pub fn neg(&mut self, a: TermId) -> TermId {
        self.expect_int(a, "neg");
        self.mk(TermData::Neg(a), Sort::Int)
    }

    /// `c * a` for a constant `c`.
    ///
    /// # Panics
    ///
    /// Panics if the argument is not integer-sorted.
    pub fn mul_const(&mut self, c: i64, a: TermId) -> TermId {
        self.expect_int(a, "mul_const");
        self.mk(TermData::MulConst(c, a), Sort::Int)
    }

    // ----- atom builders -----

    /// `a <= b`.
    ///
    /// # Panics
    ///
    /// Panics if either argument is not integer-sorted.
    pub fn le(&mut self, a: TermId, b: TermId) -> TermId {
        self.expect_int(a, "le");
        self.expect_int(b, "le");
        self.mk(TermData::Le(a, b), Sort::Bool)
    }

    /// `a < b`.
    ///
    /// # Panics
    ///
    /// Panics if either argument is not integer-sorted.
    pub fn lt(&mut self, a: TermId, b: TermId) -> TermId {
        self.expect_int(a, "lt");
        self.expect_int(b, "lt");
        self.mk(TermData::Lt(a, b), Sort::Bool)
    }

    /// `a >= b` (encoded as `b <= a`).
    pub fn ge(&mut self, a: TermId, b: TermId) -> TermId {
        self.le(b, a)
    }

    /// `a > b` (encoded as `b < a`).
    pub fn gt(&mut self, a: TermId, b: TermId) -> TermId {
        self.lt(b, a)
    }

    /// Equality between two terms of the same sort.
    ///
    /// # Panics
    ///
    /// Panics if the argument sorts differ.
    pub fn eq(&mut self, a: TermId, b: TermId) -> TermId {
        assert_eq!(
            self.sort(a),
            self.sort(b),
            "eq between terms of different sorts: {} vs {}",
            self.display(a),
            self.display(b)
        );
        if a == b {
            return self.tt();
        }
        // Order the operands for better hash-consing.
        let (a, b) = if a <= b { (a, b) } else { (b, a) };
        self.mk(TermData::Eq(a, b), Sort::Bool)
    }

    /// Disequality (`not (a = b)`).
    pub fn neq(&mut self, a: TermId, b: TermId) -> TermId {
        let e = self.eq(a, b);
        self.not(e)
    }

    // ----- boolean builders -----

    /// Logical negation, with double negation collapsed.
    ///
    /// # Panics
    ///
    /// Panics if the argument is not boolean-sorted.
    pub fn not(&mut self, a: TermId) -> TermId {
        self.expect_bool(a, "not");
        match self.data(a) {
            TermData::BoolConst(b) => {
                let v = !*b;
                self.mk(TermData::BoolConst(v), Sort::Bool)
            }
            TermData::Not(inner) => *inner,
            _ => self.mk(TermData::Not(a), Sort::Bool),
        }
    }

    /// N-ary conjunction with constant folding.
    ///
    /// # Panics
    ///
    /// Panics if any conjunct is not boolean-sorted.
    pub fn and(&mut self, conjuncts: Vec<TermId>) -> TermId {
        let mut flat = Vec::new();
        for c in conjuncts {
            self.expect_bool(c, "and");
            match self.data(c) {
                TermData::BoolConst(true) => {}
                TermData::BoolConst(false) => return self.ff(),
                TermData::And(inner) => flat.extend(inner.iter().copied()),
                _ => flat.push(c),
            }
        }
        flat.dedup();
        match flat.len() {
            0 => self.tt(),
            1 => flat[0],
            _ => self.mk(TermData::And(flat), Sort::Bool),
        }
    }

    /// Binary conjunction convenience.
    pub fn and2(&mut self, a: TermId, b: TermId) -> TermId {
        self.and(vec![a, b])
    }

    /// N-ary disjunction with constant folding.
    ///
    /// # Panics
    ///
    /// Panics if any disjunct is not boolean-sorted.
    pub fn or(&mut self, disjuncts: Vec<TermId>) -> TermId {
        let mut flat = Vec::new();
        for d in disjuncts {
            self.expect_bool(d, "or");
            match self.data(d) {
                TermData::BoolConst(false) => {}
                TermData::BoolConst(true) => return self.tt(),
                TermData::Or(inner) => flat.extend(inner.iter().copied()),
                _ => flat.push(d),
            }
        }
        flat.dedup();
        match flat.len() {
            0 => self.ff(),
            1 => flat[0],
            _ => self.mk(TermData::Or(flat), Sort::Bool),
        }
    }

    /// Binary disjunction convenience.
    pub fn or2(&mut self, a: TermId, b: TermId) -> TermId {
        self.or(vec![a, b])
    }

    /// Implication `a => b`.
    pub fn implies(&mut self, a: TermId, b: TermId) -> TermId {
        self.expect_bool(a, "implies");
        self.expect_bool(b, "implies");
        self.mk(TermData::Implies(a, b), Sort::Bool)
    }

    /// Bi-implication `a <=> b`.
    pub fn iff(&mut self, a: TermId, b: TermId) -> TermId {
        self.expect_bool(a, "iff");
        self.expect_bool(b, "iff");
        if a == b {
            return self.tt();
        }
        let (a, b) = if a <= b { (a, b) } else { (b, a) };
        self.mk(TermData::Iff(a, b), Sort::Bool)
    }

    // ----- queries -----

    /// Whether a boolean term is a *theory atom*: an integer comparison, an
    /// equality, an uninterpreted predicate application, a boolean variable, or
    /// a boolean constant.
    pub fn is_atom(&self, t: TermId) -> bool {
        matches!(
            self.data(t),
            TermData::Le(..)
                | TermData::Lt(..)
                | TermData::Eq(..)
                | TermData::App(_, _, Sort::Bool)
                | TermData::Var(_, Sort::Bool)
                | TermData::BoolConst(_)
        )
    }

    /// Collects the free variables of a term (transitively).
    pub fn free_vars(&self, t: TermId) -> Vec<TermId> {
        let mut seen = HashSet::new();
        let mut out = Vec::new();
        self.walk(t, &mut seen, &mut |store, id| {
            if matches!(store.data(id), TermData::Var(..)) && !out.contains(&id) {
                out.push(id);
            }
        });
        out
    }

    /// Collects all theory atoms appearing in a formula.
    pub fn atoms(&self, t: TermId) -> Vec<TermId> {
        let mut seen = HashSet::new();
        let mut out = Vec::new();
        self.collect_atoms(t, &mut seen, &mut out);
        out
    }

    fn collect_atoms(&self, t: TermId, seen: &mut HashSet<TermId>, out: &mut Vec<TermId>) {
        if !seen.insert(t) {
            return;
        }
        if self.is_atom(t) {
            if !matches!(self.data(t), TermData::BoolConst(_)) {
                out.push(t);
            }
            return;
        }
        match self.data(t).clone() {
            TermData::Not(a) => self.collect_atoms(a, seen, out),
            TermData::And(xs) | TermData::Or(xs) => {
                for x in xs {
                    self.collect_atoms(x, seen, out);
                }
            }
            TermData::Implies(a, b) | TermData::Iff(a, b) => {
                self.collect_atoms(a, seen, out);
                self.collect_atoms(b, seen, out);
            }
            _ => {}
        }
    }

    fn walk(&self, t: TermId, seen: &mut HashSet<TermId>, f: &mut impl FnMut(&TermStore, TermId)) {
        if !seen.insert(t) {
            return;
        }
        f(self, t);
        match self.data(t).clone() {
            TermData::App(_, args, _) => {
                for a in args {
                    self.walk(a, seen, f);
                }
            }
            TermData::Add(a, b)
            | TermData::Sub(a, b)
            | TermData::Le(a, b)
            | TermData::Lt(a, b)
            | TermData::Eq(a, b)
            | TermData::Implies(a, b)
            | TermData::Iff(a, b) => {
                self.walk(a, seen, f);
                self.walk(b, seen, f);
            }
            TermData::Neg(a) | TermData::MulConst(_, a) | TermData::Not(a) => self.walk(a, seen, f),
            TermData::And(xs) | TermData::Or(xs) => {
                for x in xs {
                    self.walk(x, seen, f);
                }
            }
            TermData::BoolConst(_) | TermData::IntConst(_) | TermData::Var(..) => {}
        }
    }

    /// Substitutes terms for variables: every occurrence of a key of `map`
    /// (which must be a `Var`) is replaced by its value.
    pub fn substitute(&mut self, t: TermId, map: &HashMap<TermId, TermId>) -> TermId {
        if let Some(&r) = map.get(&t) {
            return r;
        }
        match self.data(t).clone() {
            TermData::BoolConst(_) | TermData::IntConst(_) | TermData::Var(..) => t,
            TermData::App(sym, args, sort) => {
                let args: Vec<_> = args.iter().map(|a| self.substitute(*a, map)).collect();
                let name = self.symbol_name(sym).to_owned();
                self.app(&name, args, sort)
            }
            TermData::Add(a, b) => {
                let (a, b) = (self.substitute(a, map), self.substitute(b, map));
                self.add(a, b)
            }
            TermData::Sub(a, b) => {
                let (a, b) = (self.substitute(a, map), self.substitute(b, map));
                self.sub(a, b)
            }
            TermData::Neg(a) => {
                let a = self.substitute(a, map);
                self.neg(a)
            }
            TermData::MulConst(c, a) => {
                let a = self.substitute(a, map);
                self.mul_const(c, a)
            }
            TermData::Le(a, b) => {
                let (a, b) = (self.substitute(a, map), self.substitute(b, map));
                self.le(a, b)
            }
            TermData::Lt(a, b) => {
                let (a, b) = (self.substitute(a, map), self.substitute(b, map));
                self.lt(a, b)
            }
            TermData::Eq(a, b) => {
                let (a, b) = (self.substitute(a, map), self.substitute(b, map));
                self.eq(a, b)
            }
            TermData::Not(a) => {
                let a = self.substitute(a, map);
                self.not(a)
            }
            TermData::And(xs) => {
                let xs: Vec<_> = xs.iter().map(|x| self.substitute(*x, map)).collect();
                self.and(xs)
            }
            TermData::Or(xs) => {
                let xs: Vec<_> = xs.iter().map(|x| self.substitute(*x, map)).collect();
                self.or(xs)
            }
            TermData::Implies(a, b) => {
                let (a, b) = (self.substitute(a, map), self.substitute(b, map));
                self.implies(a, b)
            }
            TermData::Iff(a, b) => {
                let (a, b) = (self.substitute(a, map), self.substitute(b, map));
                self.iff(a, b)
            }
        }
    }

    /// Human-readable rendering of a term for diagnostics.
    pub fn display(&self, t: TermId) -> String {
        match self.data(t) {
            TermData::BoolConst(b) => b.to_string(),
            TermData::IntConst(n) => n.to_string(),
            TermData::Var(sym, _) => self.symbol_name(*sym).to_owned(),
            TermData::App(sym, args, _) => {
                let args: Vec<_> = args.iter().map(|a| self.display(*a)).collect();
                format!("{}({})", self.symbol_name(*sym), args.join(", "))
            }
            TermData::Add(a, b) => format!("({} + {})", self.display(*a), self.display(*b)),
            TermData::Sub(a, b) => format!("({} - {})", self.display(*a), self.display(*b)),
            TermData::Neg(a) => format!("(- {})", self.display(*a)),
            TermData::MulConst(c, a) => format!("({} * {})", c, self.display(*a)),
            TermData::Le(a, b) => format!("({} <= {})", self.display(*a), self.display(*b)),
            TermData::Lt(a, b) => format!("({} < {})", self.display(*a), self.display(*b)),
            TermData::Eq(a, b) => format!("({} = {})", self.display(*a), self.display(*b)),
            TermData::Not(a) => format!("!{}", self.display(*a)),
            TermData::And(xs) => {
                let xs: Vec<_> = xs.iter().map(|x| self.display(*x)).collect();
                format!("({})", xs.join(" && "))
            }
            TermData::Or(xs) => {
                let xs: Vec<_> = xs.iter().map(|x| self.display(*x)).collect();
                format!("({})", xs.join(" || "))
            }
            TermData::Implies(a, b) => {
                format!("({} => {})", self.display(*a), self.display(*b))
            }
            TermData::Iff(a, b) => format!("({} <=> {})", self.display(*a), self.display(*b)),
        }
    }

    fn expect_int(&self, t: TermId, op: &str) {
        assert!(
            self.sort(t).is_int(),
            "{op}: expected Int-sorted operand, got {} : {}",
            self.display(t),
            self.sort(t)
        );
    }

    fn expect_bool(&self, t: TermId, op: &str) {
        assert!(
            self.sort(t).is_bool(),
            "{op}: expected Bool-sorted operand, got {} : {}",
            self.display(t),
            self.sort(t)
        );
    }
}

impl fmt::Display for TermId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t#{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_consing_dedups() {
        let mut s = TermStore::new();
        let x1 = s.var("x", Sort::Int);
        let x2 = s.var("x", Sort::Int);
        assert_eq!(x1, x2);
        let one = s.int(1);
        let a = s.add(x1, one);
        let b = s.add(x2, one);
        assert_eq!(a, b);
    }

    #[test]
    fn folding_in_boolean_builders() {
        let mut s = TermStore::new();
        let t = s.tt();
        let f = s.ff();
        let x = s.var("p", Sort::Bool);
        assert_eq!(s.and(vec![t, x]), x);
        assert_eq!(s.and(vec![f, x]), f);
        assert_eq!(s.or(vec![f, x]), x);
        assert_eq!(s.or(vec![t, x]), t);
        let nx = s.not(x);
        assert_eq!(s.not(nx), x);
        assert_eq!(s.not(t), f);
    }

    #[test]
    fn eq_is_reflexive_true_and_symmetric() {
        let mut s = TermStore::new();
        let x = s.var("x", Sort::Int);
        let y = s.var("y", Sort::Int);
        let t = s.tt();
        assert_eq!(s.eq(x, x), t);
        assert_eq!(s.eq(x, y), s.eq(y, x));
    }

    #[test]
    #[should_panic(expected = "eq between terms of different sorts")]
    fn eq_sort_mismatch_panics() {
        let mut s = TermStore::new();
        let x = s.var("x", Sort::Int);
        let p = s.var("p", Sort::Bool);
        s.eq(x, p);
    }

    #[test]
    fn free_vars_and_atoms() {
        let mut s = TermStore::new();
        let x = s.var("x", Sort::Int);
        let y = s.var("y", Sort::Int);
        let zero = s.int(0);
        let a1 = s.le(zero, x);
        let a2 = s.lt(x, y);
        let f = s.and2(a1, a2);
        let vars = s.free_vars(f);
        assert!(vars.contains(&x) && vars.contains(&y));
        let atoms = s.atoms(f);
        assert_eq!(atoms.len(), 2);
        assert!(atoms.contains(&a1) && atoms.contains(&a2));
    }

    #[test]
    fn substitution_replaces_vars() {
        let mut s = TermStore::new();
        let x = s.var("x", Sort::Int);
        let y = s.var("y", Sort::Int);
        let zero = s.int(0);
        let f = s.le(zero, x);
        let mut map = HashMap::new();
        map.insert(x, y);
        let g = s.substitute(f, &map);
        let expected = s.le(zero, y);
        assert_eq!(g, expected);
    }

    #[test]
    fn fresh_vars_are_distinct() {
        let mut s = TermStore::new();
        let a = s.fresh_var("k", Sort::Int);
        let b = s.fresh_var("k", Sort::Int);
        assert_ne!(a, b);
    }

    #[test]
    fn display_is_readable() {
        let mut s = TermStore::new();
        let x = s.var("x", Sort::Int);
        let one = s.int(1);
        let sum = s.add(x, one);
        let f = s.le(sum, x);
        assert_eq!(s.display(f), "((x + 1) <= x)");
    }
}
