//! Abstract syntax for the JMatch 2.0 dialect.
//!
//! The grammar follows the paper: Java-like class and interface declarations
//! extended with
//!
//! * **modes** on methods (`returns(..)` / `iterates(..)`),
//! * **named constructors** declarable in interfaces and classes (§3.1),
//! * **equality constructors** (`constructor equals(...)`, §3.2),
//! * **class/interface invariants** (§4.1),
//! * **`matches` and `ensures` clauses** (§4.2, §4.5),
//! * declarative method bodies that are boolean **formulas**, and
//! * pattern forms `as`, `#`, `|`, tuples and `where` (§3.3).

use crate::lexer::Pos;
use std::fmt;

/// A whole compilation unit (one or more declarations).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    /// Top-level declarations.
    pub decls: Vec<Decl>,
}

impl Program {
    /// All interface declarations.
    pub fn interfaces(&self) -> impl Iterator<Item = &InterfaceDecl> {
        self.decls.iter().filter_map(|d| match d {
            Decl::Interface(i) => Some(i),
            _ => None,
        })
    }

    /// All class declarations.
    pub fn classes(&self) -> impl Iterator<Item = &ClassDecl> {
        self.decls.iter().filter_map(|d| match d {
            Decl::Class(c) => Some(c),
            _ => None,
        })
    }

    /// All free-standing (top-level) methods.
    pub fn methods(&self) -> impl Iterator<Item = &MethodDecl> {
        self.decls.iter().filter_map(|d| match d {
            Decl::Method(m) => Some(m),
            _ => None,
        })
    }

    /// Finds a class by name.
    pub fn class(&self, name: &str) -> Option<&ClassDecl> {
        self.classes().find(|c| c.name == name)
    }

    /// Finds an interface by name.
    pub fn interface(&self, name: &str) -> Option<&InterfaceDecl> {
        self.interfaces().find(|i| i.name == name)
    }
}

/// A top-level declaration.
// The variants intentionally carry their declarations inline; programs hold
// few `Decl`s, so the size skew has no practical cost.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq)]
pub enum Decl {
    /// An interface.
    Interface(InterfaceDecl),
    /// A class.
    Class(ClassDecl),
    /// A free-standing method (used for example/driver code such as `plus`).
    Method(MethodDecl),
}

/// Member visibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Visibility {
    /// `public`
    Public,
    /// `protected`
    Protected,
    /// package-private (no modifier)
    #[default]
    Package,
    /// `private`
    Private,
}

impl fmt::Display for Visibility {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Visibility::Public => write!(f, "public"),
            Visibility::Protected => write!(f, "protected"),
            Visibility::Package => write!(f, "package"),
            Visibility::Private => write!(f, "private"),
        }
    }
}

/// An interface declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct InterfaceDecl {
    /// Interface name.
    pub name: String,
    /// Extended interfaces.
    pub extends: Vec<String>,
    /// Declared invariants.
    pub invariants: Vec<InvariantDecl>,
    /// Method and named-constructor signatures.
    pub methods: Vec<MethodDecl>,
    /// Source position.
    pub pos: Pos,
}

/// A class declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassDecl {
    /// Class name.
    pub name: String,
    /// Implemented interfaces.
    pub implements: Vec<String>,
    /// Superclass, if any.
    pub extends: Option<String>,
    /// Whether the class is abstract.
    pub is_abstract: bool,
    /// Fields.
    pub fields: Vec<FieldDecl>,
    /// Declared invariants.
    pub invariants: Vec<InvariantDecl>,
    /// Methods, named constructors and class constructors.
    pub methods: Vec<MethodDecl>,
    /// Source position.
    pub pos: Pos,
}

/// A field declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct FieldDecl {
    /// Visibility.
    pub visibility: Visibility,
    /// Whether the field is static.
    pub is_static: bool,
    /// Declared type.
    pub ty: Type,
    /// Field name.
    pub name: String,
    /// Optional initializer.
    pub init: Option<Expr>,
    /// Source position.
    pub pos: Pos,
}

/// A class or interface invariant (§4.1).
#[derive(Debug, Clone, PartialEq)]
pub struct InvariantDecl {
    /// Visibility of the invariant.
    pub visibility: Visibility,
    /// The invariant formula (implicitly about `this`).
    pub formula: Formula,
    /// Source position.
    pub pos: Pos,
}

/// What kind of callable a [`MethodDecl`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MethodKind {
    /// An ordinary method with a return type.
    Method,
    /// A named constructor (`constructor zero() ...`, §3.1). The special name
    /// `equals` makes it an equality constructor (§3.2).
    NamedConstructor,
    /// A class constructor (same name as the class, e.g. `private ZNat(int n)`).
    ClassConstructor,
}

/// A mode declaration: which parameters (and implicitly `result`) are solved
/// for when the method is used backwards.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ModeDecl {
    /// `true` for `iterates(..)` (many solutions), `false` for `returns(..)`.
    pub iterative: bool,
    /// Names of the parameters that are unknowns in this mode. The return
    /// value (`result`) is an unknown exactly when it is *not* listed and the
    /// mode is not the forward mode — mode resolution in `jmatch-core`
    /// prepends the implicit forward mode and applies this rule.
    pub outputs: Vec<String>,
}

/// A method, named constructor, or class constructor.
#[derive(Debug, Clone, PartialEq)]
pub struct MethodDecl {
    /// Visibility.
    pub visibility: Visibility,
    /// Whether declared `static`.
    pub is_static: bool,
    /// Whether declared `abstract` (or declared in an interface).
    pub is_abstract: bool,
    /// The kind of callable.
    pub kind: MethodKind,
    /// Return type (`None` for constructors, whose result is the object).
    pub return_type: Option<Type>,
    /// Name.
    pub name: String,
    /// Parameters.
    pub params: Vec<Param>,
    /// Declared backward/iterative modes.
    pub modes: Vec<ModeDecl>,
    /// The `matches` clause, if any (§4.2). Defaults to `false` semantically.
    pub matches: Option<Formula>,
    /// The `ensures` clause, if any (§4.5). Defaults to `true` semantically.
    pub ensures: Option<Formula>,
    /// The body.
    pub body: MethodBody,
    /// Source position.
    pub pos: Pos,
}

impl MethodDecl {
    /// Whether this is an equality constructor (`constructor equals(...)`).
    pub fn is_equality_constructor(&self) -> bool {
        self.kind == MethodKind::NamedConstructor && self.name == "equals"
    }

    /// Whether the method has a declarative (formula) body.
    pub fn is_declarative(&self) -> bool {
        matches!(self.body, MethodBody::Formula(_))
    }
}

/// A method body.
#[derive(Debug, Clone, PartialEq, Hash)]
pub enum MethodBody {
    /// No body (interface or abstract method).
    Absent,
    /// A declarative body: a boolean formula over parameters, fields and
    /// `result`.
    Formula(Formula),
    /// An imperative block of statements.
    Block(Vec<Stmt>),
}

/// A formal parameter.
#[derive(Debug, Clone, PartialEq, Hash)]
pub struct Param {
    /// Declared type.
    pub ty: Type,
    /// Parameter name.
    pub name: String,
}

/// A (simplified Java) type.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Type {
    /// `int`
    Int,
    /// `boolean`
    Boolean,
    /// `void`
    Void,
    /// `Object`
    Object,
    /// A named class or interface type.
    Named(String),
    /// An array type.
    Array(Box<Type>),
}

impl Type {
    /// The type name used for diagnostics and sort names.
    pub fn name(&self) -> String {
        match self {
            Type::Int => "int".into(),
            Type::Boolean => "boolean".into(),
            Type::Void => "void".into(),
            Type::Object => "Object".into(),
            Type::Named(n) => n.clone(),
            Type::Array(inner) => format!("{}[]", inner.name()),
        }
    }

    /// Whether this is a reference (object) type.
    pub fn is_reference(&self) -> bool {
        matches!(self, Type::Object | Type::Named(_) | Type::Array(_))
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// Comparison operators usable at the formula level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `=` — equality / pattern match.
    Eq,
    /// `!=`
    Ne,
    /// `<=`
    Le,
    /// `<`
    Lt,
    /// `>=`
    Ge,
    /// `>`
    Gt,
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Le => "<=",
            CmpOp::Lt => "<",
            CmpOp::Ge => ">=",
            CmpOp::Gt => ">",
        };
        write!(f, "{s}")
    }
}

/// Binary arithmetic operators inside patterns/expressions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Rem => "%",
        };
        write!(f, "{s}")
    }
}

/// A boolean formula (the declarative layer of JMatch).
#[derive(Debug, Clone, PartialEq, Hash)]
pub enum Formula {
    /// `true` or `false`.
    Bool(bool),
    /// A comparison / pattern-match between two patterns.
    Cmp(CmpOp, Expr, Expr),
    /// Conjunction.
    And(Box<Formula>, Box<Formula>),
    /// Disjunction.
    Or(Box<Formula>, Box<Formula>),
    /// Disjoint disjunction at the formula level (`f1 | f2`, §3.3): at most
    /// one arm may be satisfiable for any assignment of the knowns; the
    /// compiler verifies this.
    DisjointOr(Box<Formula>, Box<Formula>),
    /// Negation.
    Not(Box<Formula>),
    /// A boolean-valued pattern: a predicate-mode method call
    /// (`n.zero()`, `zero()`, `notall(x, y)`), a boolean variable or field.
    Atom(Expr),
}

impl Formula {
    /// Convenience constructor for conjunction.
    pub fn and(a: Formula, b: Formula) -> Formula {
        Formula::And(Box::new(a), Box::new(b))
    }

    /// Convenience constructor for disjunction.
    pub fn or(a: Formula, b: Formula) -> Formula {
        Formula::Or(Box::new(a), Box::new(b))
    }

    /// Convenience constructor for negation.
    #[allow(clippy::should_implement_trait)]
    pub fn not(a: Formula) -> Formula {
        Formula::Not(Box::new(a))
    }
}

/// A pattern (also used as an expression; JMatch patterns and expressions
/// share one syntax).
#[derive(Debug, Clone, PartialEq, Hash)]
pub enum Expr {
    /// Integer literal.
    IntLit(i64),
    /// Boolean literal.
    BoolLit(bool),
    /// String literal.
    StrLit(String),
    /// `null`.
    Null,
    /// `this`.
    This,
    /// `result` (the method result inside bodies and specs).
    Result,
    /// `_` — matches anything, binds nothing.
    Wildcard,
    /// A variable reference (or class name in a static call receiver).
    Var(String),
    /// A declaration pattern `T x`, introducing `x` as an unknown.
    Decl(Type, String),
    /// Field access `e.f`.
    Field(Box<Expr>, String),
    /// A call `recv.name(args)`, `name(args)`, or `Class.name(args)`.
    ///
    /// Covers ordinary method calls, named-constructor invocations and class
    /// constructor invocations; resolution happens in `jmatch-core`.
    Call {
        /// Optional receiver (object expression or class name as `Var`).
        receiver: Option<Box<Expr>>,
        /// Method / constructor name.
        name: String,
        /// Argument patterns.
        args: Vec<Expr>,
    },
    /// Array or collection indexing `a[i]`.
    Index(Box<Expr>, Box<Expr>),
    /// `new T[len]` array allocation.
    NewArray(Type, Box<Expr>),
    /// Binary arithmetic.
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// Unary minus.
    Neg(Box<Expr>),
    /// A tuple pattern `(p1, ..., pn)` (§3.3). Tuples are not first-class
    /// values; they are eliminated during mode planning.
    Tuple(Vec<Expr>),
    /// `p1 as p2` — both patterns match the same value.
    As(Box<Expr>, Box<Expr>),
    /// `p1 # p2` — pattern disjunction (§3.3), may yield several solutions.
    OrPat(Box<Expr>, Box<Expr>),
    /// `p1 | p2` — disjoint pattern disjunction (§3.3), at most one solution;
    /// disjointness is verified statically.
    DisjointOr(Box<Expr>, Box<Expr>),
    /// `p where (f)` — refines a pattern with a formula (§3.3).
    Where(Box<Expr>, Box<Formula>),
}

impl Expr {
    /// Convenience: a call without a receiver.
    pub fn call(name: impl Into<String>, args: Vec<Expr>) -> Expr {
        Expr::Call {
            receiver: None,
            name: name.into(),
            args,
        }
    }

    /// Convenience: a call with a receiver.
    pub fn method(receiver: Expr, name: impl Into<String>, args: Vec<Expr>) -> Expr {
        Expr::Call {
            receiver: Some(Box::new(receiver)),
            name: name.into(),
            args,
        }
    }

    /// Collects all variables *declared* by this pattern (via `T x`
    /// declaration patterns), in source order.
    pub fn declared_vars(&self) -> Vec<(Type, String)> {
        let mut out = Vec::new();
        self.collect_declared(&mut out);
        out
    }

    fn collect_declared(&self, out: &mut Vec<(Type, String)>) {
        match self {
            Expr::Decl(ty, name) => out.push((ty.clone(), name.clone())),
            Expr::Field(e, _) => e.collect_declared(out),
            Expr::Call { receiver, args, .. } => {
                if let Some(r) = receiver {
                    r.collect_declared(out);
                }
                for a in args {
                    a.collect_declared(out);
                }
            }
            Expr::Index(a, b) | Expr::Binary(_, a, b) => {
                a.collect_declared(out);
                b.collect_declared(out);
            }
            Expr::NewArray(_, e) | Expr::Neg(e) => e.collect_declared(out),
            Expr::Tuple(xs) => {
                for x in xs {
                    x.collect_declared(out);
                }
            }
            Expr::As(a, b) | Expr::OrPat(a, b) | Expr::DisjointOr(a, b) => {
                a.collect_declared(out);
                b.collect_declared(out);
            }
            Expr::Where(p, f) => {
                p.collect_declared(out);
                f.collect_declared_vars(out);
            }
            _ => {}
        }
    }
}

impl Formula {
    /// Collects all variables declared anywhere in the formula (via `T x`
    /// declaration patterns), in source order.
    pub fn declared_vars(&self) -> Vec<(Type, String)> {
        let mut out = Vec::new();
        self.collect_declared_vars(&mut out);
        out
    }

    fn collect_declared_vars(&self, out: &mut Vec<(Type, String)>) {
        match self {
            Formula::Bool(_) => {}
            Formula::Cmp(_, a, b) => {
                a.collect_declared(out);
                b.collect_declared(out);
            }
            Formula::And(a, b) | Formula::Or(a, b) | Formula::DisjointOr(a, b) => {
                a.collect_declared_vars(out);
                b.collect_declared_vars(out);
            }
            Formula::Not(a) => a.collect_declared_vars(out),
            Formula::Atom(e) => e.collect_declared(out),
        }
    }
}

/// A statement in an imperative method body.
#[derive(Debug, Clone, PartialEq, Hash)]
pub enum Stmt {
    /// `let f;` — solve formula `f`; bindings remain in scope. Variable
    /// declarations `int x = e;` are sugar for this.
    Let(Formula),
    /// `switch (e1, ..., en) { case p: ... default: ... }`.
    Switch {
        /// Scrutinee expressions (more than one forms an implicit tuple).
        scrutinees: Vec<Expr>,
        /// The cases, in order.
        cases: Vec<SwitchCase>,
        /// The default arm, if present.
        default: Option<Vec<Stmt>>,
    },
    /// `cond { (f1) {s1} ... else {s} }` — execute the first arm whose
    /// formula is satisfiable.
    Cond {
        /// The `(formula) { body }` arms.
        arms: Vec<(Formula, Vec<Stmt>)>,
        /// The `else` arm, if present.
        else_arm: Option<Vec<Stmt>>,
    },
    /// `if (f) s else s` — sugar for `cond`.
    If {
        /// Condition formula.
        cond: Formula,
        /// Then branch.
        then: Vec<Stmt>,
        /// Else branch.
        els: Option<Vec<Stmt>>,
    },
    /// `foreach (f) { s }` — iterate over all solutions of `f`.
    Foreach {
        /// The iterated formula.
        formula: Formula,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// `while (f) { s }`.
    While {
        /// Loop condition.
        cond: Formula,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// `return e;` / `return;`.
    Return(Option<Expr>),
    /// Imperative assignment `x = e;` (to an already-bound variable or field).
    Assign(Expr, Expr),
    /// An expression evaluated for effect.
    ExprStmt(Expr),
    /// A nested block.
    Block(Vec<Stmt>),
}

/// One `case` arm of a `switch`.
#[derive(Debug, Clone, PartialEq)]
pub struct SwitchCase {
    /// The case patterns (one per scrutinee).
    pub patterns: Vec<Expr>,
    /// The body; empty means fall through to the next case's body.
    pub body: Vec<Stmt>,
    /// Source position of the `case`.
    pub pos: Pos,
}

// `Hash` deliberately skips `pos`: incremental recompilation fingerprints
// statements by content, and an edit above a case must not dirty it just by
// shifting its line number.
impl std::hash::Hash for SwitchCase {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.patterns.hash(state);
        self.body.hash(state);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn declared_vars_are_collected_in_order() {
        // succ(Nat k) as Nat m
        let pat = Expr::As(
            Box::new(Expr::call(
                "succ",
                vec![Expr::Decl(Type::Named("Nat".into()), "k".into())],
            )),
            Box::new(Expr::Decl(Type::Named("Nat".into()), "m".into())),
        );
        let vars = pat.declared_vars();
        assert_eq!(
            vars,
            vec![
                (Type::Named("Nat".into()), "k".into()),
                (Type::Named("Nat".into()), "m".into()),
            ]
        );
    }

    #[test]
    fn formula_declared_vars() {
        // val >= 1 && ZNat(val - 1) = n  declares nothing
        let f = Formula::and(
            Formula::Cmp(CmpOp::Ge, Expr::Var("val".into()), Expr::IntLit(1)),
            Formula::Cmp(
                CmpOp::Eq,
                Expr::call(
                    "ZNat",
                    vec![Expr::Binary(
                        BinOp::Sub,
                        Box::new(Expr::Var("val".into())),
                        Box::new(Expr::IntLit(1)),
                    )],
                ),
                Expr::Var("n".into()),
            ),
        );
        assert!(f.declared_vars().is_empty());
        // int x = y - 1 declares x
        let g = Formula::Cmp(
            CmpOp::Eq,
            Expr::Decl(Type::Int, "x".into()),
            Expr::Binary(
                BinOp::Sub,
                Box::new(Expr::Var("y".into())),
                Box::new(Expr::IntLit(1)),
            ),
        );
        assert_eq!(g.declared_vars(), vec![(Type::Int, "x".into())]);
    }

    #[test]
    fn type_names() {
        assert_eq!(Type::Int.name(), "int");
        assert_eq!(Type::Named("Nat".into()).name(), "Nat");
        assert_eq!(Type::Array(Box::new(Type::Object)).name(), "Object[]");
        assert!(Type::Named("Nat".into()).is_reference());
        assert!(!Type::Int.is_reference());
    }
}
