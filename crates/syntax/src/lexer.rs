//! Lexer for the JMatch 2.0 dialect (and, at the token level, for the Java
//! comparison sources used by the Table 1 token counts).

use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Token {
    /// Identifier or keyword-like word (keywords are distinguished by the
    /// parser so the same lexer serves both JMatch and Java sources).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// String literal (contents without the quotes).
    Str(String),
    /// Character literal.
    Char(char),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `:`
    Colon,
    /// `.`
    Dot,
    /// `=`
    Eq,
    /// `==`
    EqEq,
    /// `!=`
    Ne,
    /// `<=`
    Le,
    /// `<`
    Lt,
    /// `>=`
    Ge,
    /// `>`
    Gt,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `!`
    Bang,
    /// `&&`
    AndAnd,
    /// `&`
    Amp,
    /// `||`
    OrOr,
    /// `|`
    Pipe,
    /// `#`
    Hash,
    /// `_`
    Underscore,
    /// `?` (used by the Java comparison sources)
    Question,
    /// `@` (annotations in Java comparison sources)
    At,
    /// `++`
    PlusPlus,
    /// `--`
    MinusMinus,
    /// `+=`
    PlusEq,
    /// `-=`
    MinusEq,
    /// End of input.
    Eof,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "{s}"),
            Token::Int(n) => write!(f, "{n}"),
            Token::Str(s) => write!(f, "\"{s}\""),
            Token::Char(c) => write!(f, "'{c}'"),
            Token::LParen => write!(f, "("),
            Token::RParen => write!(f, ")"),
            Token::LBrace => write!(f, "{{"),
            Token::RBrace => write!(f, "}}"),
            Token::LBracket => write!(f, "["),
            Token::RBracket => write!(f, "]"),
            Token::Comma => write!(f, ","),
            Token::Semi => write!(f, ";"),
            Token::Colon => write!(f, ":"),
            Token::Dot => write!(f, "."),
            Token::Eq => write!(f, "="),
            Token::EqEq => write!(f, "=="),
            Token::Ne => write!(f, "!="),
            Token::Le => write!(f, "<="),
            Token::Lt => write!(f, "<"),
            Token::Ge => write!(f, ">="),
            Token::Gt => write!(f, ">"),
            Token::Plus => write!(f, "+"),
            Token::Minus => write!(f, "-"),
            Token::Star => write!(f, "*"),
            Token::Slash => write!(f, "/"),
            Token::Percent => write!(f, "%"),
            Token::Bang => write!(f, "!"),
            Token::AndAnd => write!(f, "&&"),
            Token::Amp => write!(f, "&"),
            Token::OrOr => write!(f, "||"),
            Token::Pipe => write!(f, "|"),
            Token::Hash => write!(f, "#"),
            Token::Underscore => write!(f, "_"),
            Token::Question => write!(f, "?"),
            Token::At => write!(f, "@"),
            Token::PlusPlus => write!(f, "++"),
            Token::MinusMinus => write!(f, "--"),
            Token::PlusEq => write!(f, "+="),
            Token::MinusEq => write!(f, "-="),
            Token::Eof => write!(f, "<eof>"),
        }
    }
}

/// A source position (1-based line and column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Pos {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number.
    pub col: u32,
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// A token paired with its source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Spanned {
    /// The token.
    pub token: Token,
    /// Where it starts.
    pub pos: Pos,
}

/// A lexical error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// Explanation of the problem.
    pub message: String,
    /// Where it occurred.
    pub pos: Pos,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at {}: {}", self.pos, self.message)
    }
}

impl std::error::Error for LexError {}

/// Lexes a complete source string into tokens (excluding the final `Eof`).
///
/// Line comments (`//`) and block comments (`/* */`) are skipped.
///
/// # Errors
///
/// Returns a [`LexError`] on unterminated strings/comments or unexpected
/// characters.
pub fn lex(source: &str) -> Result<Vec<Spanned>, LexError> {
    Lexer::new(source).run()
}

struct Lexer<'a> {
    chars: Vec<char>,
    idx: usize,
    line: u32,
    col: u32,
    _source: &'a str,
}

impl<'a> Lexer<'a> {
    fn new(source: &'a str) -> Self {
        Lexer {
            chars: source.chars().collect(),
            idx: 0,
            line: 1,
            col: 1,
            _source: source,
        }
    }

    fn pos(&self) -> Pos {
        Pos {
            line: self.line,
            col: self.col,
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.idx).copied()
    }

    fn peek2(&self) -> Option<char> {
        self.chars.get(self.idx + 1).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.idx += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn error(&self, message: impl Into<String>) -> LexError {
        LexError {
            message: message.into(),
            pos: self.pos(),
        }
    }

    fn run(mut self) -> Result<Vec<Spanned>, LexError> {
        let mut out = Vec::new();
        loop {
            self.skip_trivia()?;
            let pos = self.pos();
            let Some(c) = self.peek() else { break };
            let token = self.next_token(c)?;
            out.push(Spanned { token, pos });
        }
        Ok(out)
    }

    fn skip_trivia(&mut self) -> Result<(), LexError> {
        loop {
            match self.peek() {
                Some(c) if c.is_whitespace() => {
                    self.bump();
                }
                Some('/') if self.peek2() == Some('/') => {
                    while let Some(c) = self.peek() {
                        if c == '\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                Some('/') if self.peek2() == Some('*') => {
                    self.bump();
                    self.bump();
                    loop {
                        match self.peek() {
                            None => return Err(self.error("unterminated block comment")),
                            Some('*') if self.peek2() == Some('/') => {
                                self.bump();
                                self.bump();
                                break;
                            }
                            _ => {
                                self.bump();
                            }
                        }
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn next_token(&mut self, c: char) -> Result<Token, LexError> {
        if c.is_ascii_digit() {
            return self.lex_number();
        }
        if c == '_' && !self.ident_continues_at(self.idx + 1) {
            self.bump();
            return Ok(Token::Underscore);
        }
        if c.is_alphabetic() || c == '_' || c == '$' {
            return Ok(self.lex_ident());
        }
        if c == '"' {
            return self.lex_string();
        }
        if c == '\'' {
            return self.lex_char();
        }
        self.bump();
        let token = match c {
            '(' => Token::LParen,
            ')' => Token::RParen,
            '{' => Token::LBrace,
            '}' => Token::RBrace,
            '[' => Token::LBracket,
            ']' => Token::RBracket,
            ',' => Token::Comma,
            ';' => Token::Semi,
            ':' => Token::Colon,
            '.' => Token::Dot,
            '#' => Token::Hash,
            '?' => Token::Question,
            '@' => Token::At,
            '%' => Token::Percent,
            '*' => Token::Star,
            '/' => Token::Slash,
            '=' => {
                if self.peek() == Some('=') {
                    self.bump();
                    Token::EqEq
                } else {
                    Token::Eq
                }
            }
            '!' => {
                if self.peek() == Some('=') {
                    self.bump();
                    Token::Ne
                } else {
                    Token::Bang
                }
            }
            '<' => {
                if self.peek() == Some('=') {
                    self.bump();
                    Token::Le
                } else {
                    Token::Lt
                }
            }
            '>' => {
                if self.peek() == Some('=') {
                    self.bump();
                    Token::Ge
                } else {
                    Token::Gt
                }
            }
            '+' => match self.peek() {
                Some('+') => {
                    self.bump();
                    Token::PlusPlus
                }
                Some('=') => {
                    self.bump();
                    Token::PlusEq
                }
                _ => Token::Plus,
            },
            '-' => match self.peek() {
                Some('-') => {
                    self.bump();
                    Token::MinusMinus
                }
                Some('=') => {
                    self.bump();
                    Token::MinusEq
                }
                _ => Token::Minus,
            },
            '&' => {
                if self.peek() == Some('&') {
                    self.bump();
                    Token::AndAnd
                } else {
                    Token::Amp
                }
            }
            '|' => {
                if self.peek() == Some('|') {
                    self.bump();
                    Token::OrOr
                } else {
                    Token::Pipe
                }
            }
            other => return Err(self.error(format!("unexpected character {other:?}"))),
        };
        Ok(token)
    }

    fn ident_continues_at(&self, idx: usize) -> bool {
        self.chars
            .get(idx)
            .map(|c| c.is_alphanumeric() || *c == '_' || *c == '$')
            .unwrap_or(false)
    }

    fn lex_number(&mut self) -> Result<Token, LexError> {
        let mut value: i64 = 0;
        while let Some(c) = self.peek() {
            if let Some(d) = c.to_digit(10) {
                value = value
                    .checked_mul(10)
                    .and_then(|v| v.checked_add(d as i64))
                    .ok_or_else(|| self.error("integer literal too large"))?;
                self.bump();
            } else {
                break;
            }
        }
        Ok(Token::Int(value))
    }

    fn lex_ident(&mut self) -> Token {
        let mut s = String::new();
        while let Some(c) = self.peek() {
            if c.is_alphanumeric() || c == '_' || c == '$' {
                s.push(c);
                self.bump();
            } else {
                break;
            }
        }
        Token::Ident(s)
    }

    fn lex_string(&mut self) -> Result<Token, LexError> {
        self.bump(); // opening quote
        let mut s = String::new();
        loop {
            match self.bump() {
                None => return Err(self.error("unterminated string literal")),
                Some('"') => break,
                Some('\\') => match self.bump() {
                    Some('n') => s.push('\n'),
                    Some('t') => s.push('\t'),
                    Some('\\') => s.push('\\'),
                    Some('"') => s.push('"'),
                    Some(other) => s.push(other),
                    None => return Err(self.error("unterminated escape sequence")),
                },
                Some(c) => s.push(c),
            }
        }
        Ok(Token::Str(s))
    }

    fn lex_char(&mut self) -> Result<Token, LexError> {
        self.bump(); // opening quote
        let c = match self.bump() {
            None => return Err(self.error("unterminated character literal")),
            Some('\\') => match self.bump() {
                Some('n') => '\n',
                Some('t') => '\t',
                Some(other) => other,
                None => return Err(self.error("unterminated character literal")),
            },
            Some(c) => c,
        };
        match self.bump() {
            Some('\'') => Ok(Token::Char(c)),
            _ => Err(self.error("unterminated character literal")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Token> {
        lex(src).unwrap().into_iter().map(|s| s.token).collect()
    }

    #[test]
    fn basic_tokens() {
        assert_eq!(
            toks("class Nat { int val; }"),
            vec![
                Token::Ident("class".into()),
                Token::Ident("Nat".into()),
                Token::LBrace,
                Token::Ident("int".into()),
                Token::Ident("val".into()),
                Token::Semi,
                Token::RBrace,
            ]
        );
    }

    #[test]
    fn operators_and_comparisons() {
        assert_eq!(
            toks("a = b && c <= d || e != f # g | h"),
            vec![
                Token::Ident("a".into()),
                Token::Eq,
                Token::Ident("b".into()),
                Token::AndAnd,
                Token::Ident("c".into()),
                Token::Le,
                Token::Ident("d".into()),
                Token::OrOr,
                Token::Ident("e".into()),
                Token::Ne,
                Token::Ident("f".into()),
                Token::Hash,
                Token::Ident("g".into()),
                Token::Pipe,
                Token::Ident("h".into()),
            ]
        );
    }

    #[test]
    fn underscore_is_wildcard_but_not_in_idents() {
        assert_eq!(
            toks("succ(_, _x, x_)"),
            vec![
                Token::Ident("succ".into()),
                Token::LParen,
                Token::Underscore,
                Token::Comma,
                Token::Ident("_x".into()),
                Token::Comma,
                Token::Ident("x_".into()),
                Token::RParen,
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            toks("a // line comment\n b /* block\n comment */ c"),
            vec![
                Token::Ident("a".into()),
                Token::Ident("b".into()),
                Token::Ident("c".into()),
            ]
        );
    }

    #[test]
    fn numbers_and_strings() {
        assert_eq!(
            toks(r#"freshVar("k", 42)"#),
            vec![
                Token::Ident("freshVar".into()),
                Token::LParen,
                Token::Str("k".into()),
                Token::Comma,
                Token::Int(42),
                Token::RParen,
            ]
        );
    }

    #[test]
    fn positions_are_tracked() {
        let spanned = lex("a\n  b").unwrap();
        assert_eq!(spanned[0].pos, Pos { line: 1, col: 1 });
        assert_eq!(spanned[1].pos, Pos { line: 2, col: 3 });
    }

    #[test]
    fn unterminated_comment_errors() {
        assert!(lex("/* oops").is_err());
        assert!(lex("\"oops").is_err());
    }

    #[test]
    fn java_specific_tokens() {
        assert_eq!(
            toks("i++; j--; x += 1; y -= 2; a == b; o instanceof T ? x : y"),
            vec![
                Token::Ident("i".into()),
                Token::PlusPlus,
                Token::Semi,
                Token::Ident("j".into()),
                Token::MinusMinus,
                Token::Semi,
                Token::Ident("x".into()),
                Token::PlusEq,
                Token::Int(1),
                Token::Semi,
                Token::Ident("y".into()),
                Token::MinusEq,
                Token::Int(2),
                Token::Semi,
                Token::Ident("a".into()),
                Token::EqEq,
                Token::Ident("b".into()),
                Token::Semi,
                Token::Ident("o".into()),
                Token::Ident("instanceof".into()),
                Token::Ident("T".into()),
                Token::Question,
                Token::Ident("x".into()),
                Token::Colon,
                Token::Ident("y".into()),
            ]
        );
    }
}
