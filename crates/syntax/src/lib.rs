//! # jmatch-syntax
//!
//! Front end for the JMatch 2.0 dialect used by this reproduction of
//! *Reconciling Exhaustive Pattern Matching with Objects* (PLDI 2013):
//! lexer, abstract syntax, recursive-descent parser, and the token counter
//! used for the paper's Table 1 conciseness comparison.
//!
//! The language is Java-like, extended with the paper's features: method
//! modes (`returns` / `iterates`), named constructors, equality constructors,
//! class and interface invariants, `matches` / `ensures` clauses, declarative
//! formula bodies, and the pattern operators `as`, `#`, `|`, tuples and
//! `where`.
//!
//! ## Example
//!
//! ```
//! use jmatch_syntax::parse_program;
//!
//! let program = parse_program(
//!     "interface Nat {
//!          invariant(this = zero() | succ(_));
//!          constructor zero() returns();
//!          constructor succ(Nat n) returns(n);
//!      }",
//! )?;
//! let nat = program.interface("Nat").unwrap();
//! assert_eq!(nat.methods.len(), 2);
//! # Ok::<(), jmatch_syntax::ParseError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod ast;
pub mod lexer;
pub mod parser;
pub mod tokens;

pub use ast::{
    BinOp, ClassDecl, CmpOp, Decl, Expr, FieldDecl, Formula, InterfaceDecl, InvariantDecl,
    MethodBody, MethodDecl, MethodKind, ModeDecl, Param, Program, Stmt, SwitchCase, Type,
    Visibility,
};
pub use lexer::{lex, LexError, Pos, Token};
pub use parser::{parse_formula, parse_program, ParseError};
pub use tokens::{count_tokens, TokenComparison};
