//! Recursive-descent parser for the JMatch 2.0 dialect.
//!
//! ## Operator precedence
//!
//! Formula level (loosest to tightest): `||`, then `|` / `#`, then `&&`,
//! then `!`, then comparisons. Pattern-level `|` / `#` are recognized on the
//! right-hand side of a comparison (`x = 1 | 2`, `this = zero() | succ(_)`),
//! which matches how the paper's examples read; a disjunction of comparisons
//! therefore needs no parentheses (`h = nil() && ... | h = cons(...) && ...`
//! groups as `(h = nil() && ...) | (h = cons(...) && ...)`).

use crate::ast::*;
use crate::lexer::{lex, LexError, Pos, Spanned, Token};
use std::fmt;

/// A parse error with position information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Explanation.
    pub message: String,
    /// Position where the error occurred.
    pub pos: Pos,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at {}: {}", self.pos, self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError {
            message: e.message,
            pos: e.pos,
        }
    }
}

/// Parses a complete JMatch program.
///
/// # Errors
///
/// Returns the first lexical or syntactic error encountered.
pub fn parse_program(source: &str) -> Result<Program, ParseError> {
    let tokens = lex(source)?;
    let mut parser = Parser { tokens, idx: 0 };
    parser.program()
}

/// Parses a single formula (used by tests and by the verification API).
///
/// # Errors
///
/// Returns the first lexical or syntactic error encountered.
pub fn parse_formula(source: &str) -> Result<Formula, ParseError> {
    let tokens = lex(source)?;
    let mut parser = Parser { tokens, idx: 0 };
    let f = parser.formula()?;
    parser.expect_eof()?;
    Ok(f)
}

struct Parser {
    tokens: Vec<Spanned>,
    idx: usize,
}

const MODIFIER_WORDS: &[&str] = &[
    "public",
    "private",
    "protected",
    "static",
    "abstract",
    "final",
];

impl Parser {
    fn peek(&self) -> &Token {
        self.tokens
            .get(self.idx)
            .map(|s| &s.token)
            .unwrap_or(&Token::Eof)
    }

    fn peek_at(&self, offset: usize) -> &Token {
        self.tokens
            .get(self.idx + offset)
            .map(|s| &s.token)
            .unwrap_or(&Token::Eof)
    }

    fn pos(&self) -> Pos {
        self.tokens
            .get(self.idx)
            .map(|s| s.pos)
            .unwrap_or_else(|| self.tokens.last().map(|s| s.pos).unwrap_or_default())
    }

    fn bump(&mut self) -> Token {
        let t = self.peek().clone();
        self.idx += 1;
        t
    }

    fn error<T>(&self, message: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError {
            message: message.into(),
            pos: self.pos(),
        })
    }

    fn expect(&mut self, token: Token) -> Result<(), ParseError> {
        if *self.peek() == token {
            self.bump();
            Ok(())
        } else {
            self.error(format!("expected `{}`, found `{}`", token, self.peek()))
        }
    }

    fn expect_eof(&self) -> Result<(), ParseError> {
        if self.idx >= self.tokens.len() {
            Ok(())
        } else {
            self.error(format!("expected end of input, found `{}`", self.peek()))
        }
    }

    fn is_kw(&self, word: &str) -> bool {
        matches!(self.peek(), Token::Ident(s) if s == word)
    }

    fn is_kw_at(&self, offset: usize, word: &str) -> bool {
        matches!(self.peek_at(offset), Token::Ident(s) if s == word)
    }

    fn eat_kw(&mut self, word: &str) -> bool {
        if self.is_kw(word) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, word: &str) -> Result<(), ParseError> {
        if self.eat_kw(word) {
            Ok(())
        } else {
            self.error(format!("expected `{word}`, found `{}`", self.peek()))
        }
    }

    fn expect_ident(&mut self) -> Result<String, ParseError> {
        match self.peek().clone() {
            Token::Ident(s) => {
                self.bump();
                Ok(s)
            }
            other => self.error(format!("expected identifier, found `{other}`")),
        }
    }

    // ----- declarations -----

    fn program(&mut self) -> Result<Program, ParseError> {
        let mut decls = Vec::new();
        while !matches!(self.peek(), Token::Eof) && self.idx < self.tokens.len() {
            decls.push(self.decl()?);
        }
        Ok(Program { decls })
    }

    fn decl(&mut self) -> Result<Decl, ParseError> {
        // Look ahead past modifiers for `interface` / `class`.
        let mut look = 0;
        while let Token::Ident(word) = self.peek_at(look) {
            if MODIFIER_WORDS.contains(&word.as_str()) {
                look += 1;
            } else {
                break;
            }
        }
        if self.is_kw_at(look, "interface") {
            Ok(Decl::Interface(self.interface_decl()?))
        } else if self.is_kw_at(look, "class") {
            Ok(Decl::Class(self.class_decl()?))
        } else {
            let (vis, is_static, is_abstract) = self.modifiers();
            let m = self.method_decl(vis, is_static, is_abstract, None)?;
            Ok(Decl::Method(m))
        }
    }

    fn modifiers(&mut self) -> (Visibility, bool, bool) {
        let mut vis = Visibility::Package;
        let mut is_static = false;
        let mut is_abstract = false;
        loop {
            if self.eat_kw("public") {
                vis = Visibility::Public;
            } else if self.eat_kw("private") {
                vis = Visibility::Private;
            } else if self.eat_kw("protected") {
                vis = Visibility::Protected;
            } else if self.eat_kw("static") {
                is_static = true;
            } else if self.eat_kw("abstract") {
                is_abstract = true;
            } else if self.eat_kw("final") {
                // accepted and ignored
            } else {
                break;
            }
        }
        (vis, is_static, is_abstract)
    }

    fn interface_decl(&mut self) -> Result<InterfaceDecl, ParseError> {
        let pos = self.pos();
        let _ = self.modifiers();
        self.expect_kw("interface")?;
        let name = self.expect_ident()?;
        let mut extends = Vec::new();
        if self.eat_kw("extends") {
            extends.push(self.expect_ident()?);
            while *self.peek() == Token::Comma {
                self.bump();
                extends.push(self.expect_ident()?);
            }
        }
        self.expect(Token::LBrace)?;
        let mut invariants = Vec::new();
        let mut methods = Vec::new();
        while *self.peek() != Token::RBrace {
            let (vis, is_static, _) = self.modifiers();
            if self.is_kw("invariant") {
                invariants.push(self.invariant_decl(vis)?);
            } else {
                let mut m = self.method_decl(vis, is_static, true, None)?;
                m.is_abstract = true;
                methods.push(m);
            }
        }
        self.expect(Token::RBrace)?;
        Ok(InterfaceDecl {
            name,
            extends,
            invariants,
            methods,
            pos,
        })
    }

    fn class_decl(&mut self) -> Result<ClassDecl, ParseError> {
        let pos = self.pos();
        let (_vis, _is_static, is_abstract) = self.modifiers();
        self.expect_kw("class")?;
        let name = self.expect_ident()?;
        let mut implements = Vec::new();
        let mut extends = None;
        loop {
            if self.eat_kw("implements") {
                implements.push(self.expect_ident()?);
                while *self.peek() == Token::Comma {
                    self.bump();
                    implements.push(self.expect_ident()?);
                }
            } else if self.eat_kw("extends") {
                extends = Some(self.expect_ident()?);
            } else {
                break;
            }
        }
        self.expect(Token::LBrace)?;
        let mut fields = Vec::new();
        let mut invariants = Vec::new();
        let mut methods = Vec::new();
        while *self.peek() != Token::RBrace {
            let member_pos = self.pos();
            let (vis, is_static, member_abstract) = self.modifiers();
            if self.is_kw("invariant") {
                invariants.push(self.invariant_decl(vis)?);
                continue;
            }
            if self.is_kw("constructor") {
                methods.push(self.method_decl(vis, is_static, member_abstract, Some(&name))?);
                continue;
            }
            // Class constructor: `Name ( ...` where Name is the class name.
            if self.is_kw(&name) && *self.peek_at(1) == Token::LParen {
                methods.push(self.method_decl(vis, is_static, member_abstract, Some(&name))?);
                continue;
            }
            // Otherwise: a type followed by a name, then either a field or a
            // method.
            let ty = self.parse_type()?;
            let member_name = self.expect_ident()?;
            if *self.peek() == Token::LParen {
                methods.push(self.method_rest(
                    vis,
                    is_static,
                    member_abstract,
                    MethodKind::Method,
                    Some(ty),
                    member_name,
                    member_pos,
                )?);
            } else {
                let init = if *self.peek() == Token::Eq {
                    self.bump();
                    Some(self.pattern_or()?)
                } else {
                    None
                };
                self.expect(Token::Semi)?;
                fields.push(FieldDecl {
                    visibility: vis,
                    is_static,
                    ty,
                    name: member_name,
                    init,
                    pos: member_pos,
                });
            }
        }
        self.expect(Token::RBrace)?;
        Ok(ClassDecl {
            name,
            implements,
            extends,
            is_abstract,
            fields,
            invariants,
            methods,
            pos,
        })
    }

    fn invariant_decl(&mut self, visibility: Visibility) -> Result<InvariantDecl, ParseError> {
        let pos = self.pos();
        self.expect_kw("invariant")?;
        self.expect(Token::LParen)?;
        let formula = self.formula()?;
        self.expect(Token::RParen)?;
        self.expect(Token::Semi)?;
        Ok(InvariantDecl {
            visibility,
            formula,
            pos,
        })
    }

    /// Parses a method, named constructor, or class constructor declaration,
    /// starting at the type / `constructor` keyword / class name.
    fn method_decl(
        &mut self,
        vis: Visibility,
        is_static: bool,
        is_abstract: bool,
        enclosing_class: Option<&str>,
    ) -> Result<MethodDecl, ParseError> {
        let pos = self.pos();
        if self.eat_kw("constructor") {
            let name = self.expect_ident()?;
            return self.method_rest(
                vis,
                is_static,
                is_abstract,
                MethodKind::NamedConstructor,
                None,
                name,
                pos,
            );
        }
        if let Some(class_name) = enclosing_class {
            if self.is_kw(class_name) && *self.peek_at(1) == Token::LParen {
                let name = self.expect_ident()?;
                return self.method_rest(
                    vis,
                    is_static,
                    is_abstract,
                    MethodKind::ClassConstructor,
                    None,
                    name,
                    pos,
                );
            }
        }
        let ty = self.parse_type()?;
        let name = self.expect_ident()?;
        self.method_rest(
            vis,
            is_static,
            is_abstract,
            MethodKind::Method,
            Some(ty),
            name,
            pos,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn method_rest(
        &mut self,
        visibility: Visibility,
        is_static: bool,
        is_abstract: bool,
        kind: MethodKind,
        return_type: Option<Type>,
        name: String,
        pos: Pos,
    ) -> Result<MethodDecl, ParseError> {
        self.expect(Token::LParen)?;
        let mut params = Vec::new();
        while *self.peek() != Token::RParen {
            let ty = self.parse_type()?;
            let pname = self.expect_ident()?;
            params.push(Param { ty, name: pname });
            if *self.peek() == Token::Comma {
                self.bump();
            }
        }
        self.expect(Token::RParen)?;

        // Mode and specification clauses, in any order.
        let mut modes = Vec::new();
        let mut matches = None;
        let mut ensures = None;
        loop {
            if self.is_kw("returns") || self.is_kw("iterates") {
                let iterative = self.is_kw("iterates");
                self.bump();
                self.expect(Token::LParen)?;
                let mut outputs = Vec::new();
                while *self.peek() != Token::RParen {
                    outputs.push(self.expect_ident()?);
                    if *self.peek() == Token::Comma {
                        self.bump();
                    }
                }
                self.expect(Token::RParen)?;
                modes.push(ModeDecl { iterative, outputs });
            } else if self.is_kw("matches") {
                self.bump();
                if self.is_kw("ensures") {
                    // `matches ensures(f)` shorthand.
                    self.bump();
                    self.expect(Token::LParen)?;
                    let f = self.formula()?;
                    self.expect(Token::RParen)?;
                    matches = Some(f.clone());
                    ensures = Some(f);
                } else {
                    self.expect(Token::LParen)?;
                    let f = self.formula()?;
                    self.expect(Token::RParen)?;
                    matches = Some(f);
                }
            } else if self.is_kw("ensures") {
                self.bump();
                self.expect(Token::LParen)?;
                let f = self.formula()?;
                self.expect(Token::RParen)?;
                ensures = Some(f);
            } else {
                break;
            }
        }

        // Body: `;` (absent), `(formula)`, or `{ statements }`.
        let body = match self.peek() {
            Token::Semi => {
                self.bump();
                MethodBody::Absent
            }
            Token::LParen => {
                self.bump();
                let f = self.formula()?;
                self.expect(Token::RParen)?;
                MethodBody::Formula(f)
            }
            Token::LBrace => {
                let stmts = self.block()?;
                MethodBody::Block(stmts)
            }
            other => {
                return self.error(format!(
                    "expected method body (`;`, `(formula)`, or `{{...}}`), found `{other}`"
                ))
            }
        };

        Ok(MethodDecl {
            visibility,
            is_static,
            is_abstract: is_abstract && matches!(body, MethodBody::Absent),
            kind,
            return_type,
            name,
            params,
            modes,
            matches,
            ensures,
            body,
            pos,
        })
    }

    fn parse_type(&mut self) -> Result<Type, ParseError> {
        let base = match self.peek().clone() {
            Token::Ident(s) => {
                self.bump();
                match s.as_str() {
                    "int" => Type::Int,
                    "boolean" => Type::Boolean,
                    "void" => Type::Void,
                    "Object" => Type::Object,
                    _ => Type::Named(s),
                }
            }
            other => return self.error(format!("expected a type, found `{other}`")),
        };
        let mut ty = base;
        while *self.peek() == Token::LBracket && *self.peek_at(1) == Token::RBracket {
            self.bump();
            self.bump();
            ty = Type::Array(Box::new(ty));
        }
        Ok(ty)
    }

    // ----- statements -----

    fn block(&mut self) -> Result<Vec<Stmt>, ParseError> {
        self.expect(Token::LBrace)?;
        let mut stmts = Vec::new();
        while *self.peek() != Token::RBrace {
            stmts.push(self.stmt()?);
        }
        self.expect(Token::RBrace)?;
        Ok(stmts)
    }

    fn stmt(&mut self) -> Result<Stmt, ParseError> {
        match self.peek().clone() {
            Token::LBrace => Ok(Stmt::Block(self.block()?)),
            Token::Ident(word) => match word.as_str() {
                "let" => {
                    self.bump();
                    let f = self.formula()?;
                    self.expect(Token::Semi)?;
                    Ok(Stmt::Let(f))
                }
                "return" => {
                    self.bump();
                    if *self.peek() == Token::Semi {
                        self.bump();
                        Ok(Stmt::Return(None))
                    } else {
                        let e = self.pattern_or()?;
                        self.expect(Token::Semi)?;
                        Ok(Stmt::Return(Some(e)))
                    }
                }
                "switch" => self.switch_stmt(),
                "cond" => self.cond_stmt(),
                "if" => self.if_stmt(),
                "foreach" => {
                    self.bump();
                    self.expect(Token::LParen)?;
                    let f = self.formula()?;
                    self.expect(Token::RParen)?;
                    let body = self.stmt_or_block()?;
                    Ok(Stmt::Foreach { formula: f, body })
                }
                "while" => {
                    self.bump();
                    self.expect(Token::LParen)?;
                    let f = self.formula()?;
                    self.expect(Token::RParen)?;
                    let body = self.stmt_or_block()?;
                    Ok(Stmt::While { cond: f, body })
                }
                _ => self.simple_stmt(),
            },
            _ => self.simple_stmt(),
        }
    }

    fn stmt_or_block(&mut self) -> Result<Vec<Stmt>, ParseError> {
        if *self.peek() == Token::LBrace {
            self.block()
        } else {
            Ok(vec![self.stmt()?])
        }
    }

    /// Variable declarations, assignments and expression statements.
    fn simple_stmt(&mut self) -> Result<Stmt, ParseError> {
        // Variable declaration: `Type name ...` where Type is an identifier
        // (possibly with []) and name is another identifier.
        if self.looks_like_var_decl() {
            let ty = self.parse_type()?;
            let name = self.expect_ident()?;
            if *self.peek() == Token::Eq {
                self.bump();
                let rhs = self.pattern_or()?;
                self.expect(Token::Semi)?;
                return Ok(Stmt::Let(Formula::Cmp(
                    CmpOp::Eq,
                    Expr::Decl(ty, name),
                    rhs,
                )));
            }
            self.expect(Token::Semi)?;
            // An uninitialized declaration: bind the variable to an arbitrary
            // value of its type (a declaration pattern equal to a wildcard).
            return Ok(Stmt::Let(Formula::Atom(Expr::Decl(ty, name))));
        }
        let lhs = self.pattern_no_or()?;
        if *self.peek() == Token::Eq {
            self.bump();
            let rhs = self.pattern_or()?;
            self.expect(Token::Semi)?;
            return Ok(Stmt::Assign(lhs, rhs));
        }
        self.expect(Token::Semi)?;
        Ok(Stmt::ExprStmt(lhs))
    }

    fn looks_like_var_decl(&self) -> bool {
        let Token::Ident(first) = self.peek() else {
            return false;
        };
        if MODIFIER_WORDS.contains(&first.as_str()) {
            return true;
        }
        let mut offset = 1;
        // Skip array brackets.
        while *self.peek_at(offset) == Token::LBracket
            && *self.peek_at(offset + 1) == Token::RBracket
        {
            offset += 2;
        }
        matches!(self.peek_at(offset), Token::Ident(_))
            && matches!(self.peek_at(offset + 1), Token::Eq | Token::Semi)
    }

    fn switch_stmt(&mut self) -> Result<Stmt, ParseError> {
        self.expect_kw("switch")?;
        self.expect(Token::LParen)?;
        let mut scrutinees = vec![self.pattern_no_or()?];
        while *self.peek() == Token::Comma {
            self.bump();
            scrutinees.push(self.pattern_no_or()?);
        }
        self.expect(Token::RParen)?;
        self.expect(Token::LBrace)?;
        let mut cases = Vec::new();
        let mut default = None;
        while *self.peek() != Token::RBrace {
            if self.eat_kw("default") {
                self.expect(Token::Colon)?;
                let mut body = Vec::new();
                while !self.is_kw("case") && !self.is_kw("default") && *self.peek() != Token::RBrace
                {
                    body.push(self.stmt()?);
                }
                default = Some(body);
                continue;
            }
            let pos = self.pos();
            self.expect_kw("case")?;
            let pattern = self.pattern_or()?;
            // A tuple case `(p1, p2)` arrives as a Tuple expression; a single
            // pattern stays as is. Normalize to one pattern per scrutinee.
            let patterns = match pattern {
                Expr::Tuple(ps) if scrutinees.len() > 1 => ps,
                other => vec![other],
            };
            self.expect(Token::Colon)?;
            let mut body = Vec::new();
            while !self.is_kw("case") && !self.is_kw("default") && *self.peek() != Token::RBrace {
                body.push(self.stmt()?);
            }
            cases.push(SwitchCase {
                patterns,
                body,
                pos,
            });
        }
        self.expect(Token::RBrace)?;
        Ok(Stmt::Switch {
            scrutinees,
            cases,
            default,
        })
    }

    fn cond_stmt(&mut self) -> Result<Stmt, ParseError> {
        self.expect_kw("cond")?;
        self.expect(Token::LBrace)?;
        let mut arms = Vec::new();
        let mut else_arm = None;
        while *self.peek() != Token::RBrace {
            if self.eat_kw("else") {
                else_arm = Some(self.block()?);
                continue;
            }
            self.expect(Token::LParen)?;
            let f = self.formula()?;
            self.expect(Token::RParen)?;
            let body = self.block()?;
            arms.push((f, body));
        }
        self.expect(Token::RBrace)?;
        Ok(Stmt::Cond { arms, else_arm })
    }

    fn if_stmt(&mut self) -> Result<Stmt, ParseError> {
        self.expect_kw("if")?;
        self.expect(Token::LParen)?;
        let cond = self.formula()?;
        self.expect(Token::RParen)?;
        let then = self.stmt_or_block()?;
        let els = if self.eat_kw("else") {
            Some(self.stmt_or_block()?)
        } else {
            None
        };
        Ok(Stmt::If { cond, then, els })
    }

    // ----- formulas -----

    /// formula := disj ("||" disj)*
    pub(crate) fn formula(&mut self) -> Result<Formula, ParseError> {
        let mut f = self.formula_disj()?;
        while *self.peek() == Token::OrOr {
            self.bump();
            let rhs = self.formula_disj()?;
            f = Formula::or(f, rhs);
        }
        Ok(f)
    }

    /// disj := conj (("|" | "#") conj)*
    fn formula_disj(&mut self) -> Result<Formula, ParseError> {
        let mut f = self.formula_conj()?;
        loop {
            match self.peek() {
                Token::Pipe => {
                    self.bump();
                    let rhs = self.formula_conj()?;
                    f = Formula::DisjointOr(Box::new(f), Box::new(rhs));
                }
                Token::Hash => {
                    self.bump();
                    let rhs = self.formula_conj()?;
                    f = Formula::or(f, rhs);
                }
                _ => break,
            }
        }
        Ok(f)
    }

    /// conj := unary ("&&" unary)*
    fn formula_conj(&mut self) -> Result<Formula, ParseError> {
        let mut f = self.formula_unary()?;
        while *self.peek() == Token::AndAnd {
            self.bump();
            let rhs = self.formula_unary()?;
            f = Formula::and(f, rhs);
        }
        Ok(f)
    }

    fn formula_unary(&mut self) -> Result<Formula, ParseError> {
        if *self.peek() == Token::Bang {
            self.bump();
            let f = self.formula_unary()?;
            return Ok(Formula::not(f));
        }
        self.formula_primary()
    }

    /// primary := "(" formula ")" | pattern (cmpOp patternOr)?
    ///
    /// A leading `(` is ambiguous between a parenthesized formula
    /// (`(y = x || y.greater(x))`) and a parenthesized or tuple pattern
    /// (`(e, result) = ...`). We first try the formula reading and fall back
    /// to the pattern reading if the formula parse fails or the parenthesized
    /// group is followed by an operator that can only apply to patterns.
    fn formula_primary(&mut self) -> Result<Formula, ParseError> {
        if *self.peek() == Token::LParen {
            let save = self.idx;
            self.bump();
            if let Ok(f) = self.formula() {
                if *self.peek() == Token::RParen {
                    self.bump();
                    let continues_as_pattern = matches!(
                        self.peek(),
                        Token::Eq
                            | Token::EqEq
                            | Token::Ne
                            | Token::Le
                            | Token::Lt
                            | Token::Ge
                            | Token::Gt
                            | Token::Plus
                            | Token::Minus
                            | Token::Star
                            | Token::Slash
                            | Token::Percent
                            | Token::Dot
                            | Token::LBracket
                    ) || self.is_kw("as")
                        || self.is_kw("where");
                    if !continues_as_pattern {
                        return Ok(f);
                    }
                }
            }
            self.idx = save;
        }
        let lhs = self.pattern_no_or()?;
        let op = match self.peek() {
            Token::Eq => Some(CmpOp::Eq),
            Token::EqEq => Some(CmpOp::Eq),
            Token::Ne => Some(CmpOp::Ne),
            Token::Le => Some(CmpOp::Le),
            Token::Lt => Some(CmpOp::Lt),
            Token::Ge => Some(CmpOp::Ge),
            Token::Gt => Some(CmpOp::Gt),
            _ => None,
        };
        match op {
            Some(op) => {
                self.bump();
                let rhs = self.pattern_or()?;
                Ok(Formula::Cmp(op, lhs, rhs))
            }
            None => match lhs {
                Expr::BoolLit(b) => Ok(Formula::Bool(b)),
                other => Ok(Formula::Atom(other)),
            },
        }
    }

    // ----- patterns / expressions -----

    /// A pattern that may use `|` / `#` at its top level (comparison RHS).
    fn pattern_or(&mut self) -> Result<Expr, ParseError> {
        let mut p = self.pattern_no_or()?;
        loop {
            match self.peek() {
                Token::Pipe => {
                    self.bump();
                    let rhs = self.pattern_no_or()?;
                    p = Expr::DisjointOr(Box::new(p), Box::new(rhs));
                }
                Token::Hash => {
                    self.bump();
                    let rhs = self.pattern_no_or()?;
                    p = Expr::OrPat(Box::new(p), Box::new(rhs));
                }
                _ => break,
            }
        }
        Ok(p)
    }

    /// A pattern without top-level `|` / `#` (so formula-level disjunction
    /// still sees those operators).
    fn pattern_no_or(&mut self) -> Result<Expr, ParseError> {
        self.pattern_as()
    }

    /// as-patterns: `p1 as p2`.
    fn pattern_as(&mut self) -> Result<Expr, ParseError> {
        let mut p = self.pattern_additive()?;
        loop {
            if self.is_kw("as") {
                self.bump();
                let rhs = self.pattern_additive()?;
                p = Expr::As(Box::new(p), Box::new(rhs));
            } else if self.is_kw("where") {
                self.bump();
                let f = if *self.peek() == Token::LParen {
                    self.bump();
                    let f = self.formula()?;
                    self.expect(Token::RParen)?;
                    f
                } else {
                    self.formula()?
                };
                p = Expr::Where(Box::new(p), Box::new(f));
            } else {
                break;
            }
        }
        Ok(p)
    }

    fn pattern_additive(&mut self) -> Result<Expr, ParseError> {
        let mut p = self.pattern_multiplicative()?;
        loop {
            let op = match self.peek() {
                Token::Plus => BinOp::Add,
                Token::Minus => BinOp::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.pattern_multiplicative()?;
            p = Expr::Binary(op, Box::new(p), Box::new(rhs));
        }
        Ok(p)
    }

    fn pattern_multiplicative(&mut self) -> Result<Expr, ParseError> {
        let mut p = self.pattern_unary()?;
        loop {
            let op = match self.peek() {
                Token::Star => BinOp::Mul,
                Token::Slash => BinOp::Div,
                Token::Percent => BinOp::Rem,
                _ => break,
            };
            self.bump();
            let rhs = self.pattern_unary()?;
            p = Expr::Binary(op, Box::new(p), Box::new(rhs));
        }
        Ok(p)
    }

    fn pattern_unary(&mut self) -> Result<Expr, ParseError> {
        if *self.peek() == Token::Minus {
            self.bump();
            let p = self.pattern_unary()?;
            return Ok(Expr::Neg(Box::new(p)));
        }
        self.pattern_postfix()
    }

    fn pattern_postfix(&mut self) -> Result<Expr, ParseError> {
        let mut p = self.pattern_primary()?;
        loop {
            match self.peek() {
                Token::Dot => {
                    self.bump();
                    let name = self.expect_ident()?;
                    if *self.peek() == Token::LParen {
                        let args = self.call_args()?;
                        p = Expr::Call {
                            receiver: Some(Box::new(p)),
                            name,
                            args,
                        };
                    } else {
                        p = Expr::Field(Box::new(p), name);
                    }
                }
                Token::LBracket => {
                    self.bump();
                    let idx = self.pattern_or()?;
                    self.expect(Token::RBracket)?;
                    p = Expr::Index(Box::new(p), Box::new(idx));
                }
                _ => break,
            }
        }
        Ok(p)
    }

    fn call_args(&mut self) -> Result<Vec<Expr>, ParseError> {
        self.expect(Token::LParen)?;
        let mut args = Vec::new();
        while *self.peek() != Token::RParen {
            args.push(self.pattern_or()?);
            if *self.peek() == Token::Comma {
                self.bump();
            }
        }
        self.expect(Token::RParen)?;
        Ok(args)
    }

    fn pattern_primary(&mut self) -> Result<Expr, ParseError> {
        match self.peek().clone() {
            Token::Int(n) => {
                self.bump();
                Ok(Expr::IntLit(n))
            }
            Token::Str(s) => {
                self.bump();
                Ok(Expr::StrLit(s))
            }
            Token::Underscore => {
                self.bump();
                Ok(Expr::Wildcard)
            }
            Token::LParen => {
                self.bump();
                let first = self.pattern_or()?;
                if *self.peek() == Token::Comma {
                    let mut elems = vec![first];
                    while *self.peek() == Token::Comma {
                        self.bump();
                        elems.push(self.pattern_or()?);
                    }
                    self.expect(Token::RParen)?;
                    Ok(Expr::Tuple(elems))
                } else {
                    self.expect(Token::RParen)?;
                    Ok(first)
                }
            }
            Token::Ident(word) => match word.as_str() {
                "true" => {
                    self.bump();
                    Ok(Expr::BoolLit(true))
                }
                "false" => {
                    self.bump();
                    Ok(Expr::BoolLit(false))
                }
                "null" => {
                    self.bump();
                    Ok(Expr::Null)
                }
                "this" => {
                    self.bump();
                    Ok(Expr::This)
                }
                "result" => {
                    self.bump();
                    Ok(Expr::Result)
                }
                "new" => {
                    self.bump();
                    let ty = self.parse_type()?;
                    if *self.peek() == Token::LBracket {
                        self.bump();
                        let len = self.pattern_or()?;
                        self.expect(Token::RBracket)?;
                        return Ok(Expr::NewArray(ty, Box::new(len)));
                    }
                    let args = self.call_args()?;
                    Ok(Expr::call(ty.name(), args))
                }
                _ => {
                    self.bump();
                    // `T x` / `T _` declaration patterns, `f(args)` calls,
                    // plain variables.
                    match self.peek().clone() {
                        Token::Ident(second)
                            if !MODIFIER_WORDS.contains(&second.as_str())
                                && !self.is_reserved_follower(&second) =>
                        {
                            self.bump();
                            Ok(Expr::Decl(named_type(&word), second))
                        }
                        Token::Underscore => {
                            self.bump();
                            Ok(Expr::Decl(named_type(&word), "_".into()))
                        }
                        Token::LParen => {
                            let args = self.call_args()?;
                            Ok(Expr::call(word, args))
                        }
                        Token::LBracket
                            if *self.peek_at(1) == Token::RBracket
                                && matches!(self.peek_at(2), Token::Ident(_)) =>
                        {
                            // `T[] x` declaration pattern.
                            self.bump();
                            self.bump();
                            let name = self.expect_ident()?;
                            Ok(Expr::Decl(Type::Array(Box::new(named_type(&word))), name))
                        }
                        _ => Ok(Expr::Var(word)),
                    }
                }
            },
            other => self.error(format!("expected a pattern, found `{other}`")),
        }
    }

    /// Words that may directly follow an identifier without forming a
    /// declaration pattern (`x as y`, `p where f`, etc.).
    fn is_reserved_follower(&self, word: &str) -> bool {
        matches!(word, "as" | "where" | "instanceof")
    }
}

fn named_type(name: &str) -> Type {
    match name {
        "int" => Type::Int,
        "boolean" => Type::Boolean,
        "void" => Type::Void,
        "Object" => Type::Object,
        _ => Type::Named(name.to_owned()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_nat_interface() {
        let src = r#"
            interface Nat {
                invariant(this = zero() | succ(_));
                constructor zero() returns();
                constructor succ(Nat n) returns(n);
                constructor equals(Nat n);
            }
        "#;
        let p = parse_program(src).unwrap();
        let nat = p.interface("Nat").unwrap();
        assert_eq!(nat.invariants.len(), 1);
        assert_eq!(nat.methods.len(), 3);
        assert!(nat
            .methods
            .iter()
            .all(|m| m.kind == MethodKind::NamedConstructor));
        assert!(nat.methods[2].is_equality_constructor());
        // The invariant should be `this = (zero() | succ(_))`.
        match &nat.invariants[0].formula {
            Formula::Cmp(CmpOp::Eq, Expr::This, Expr::DisjointOr(a, b)) => {
                assert!(matches!(**a, Expr::Call { ref name, .. } if name == "zero"));
                assert!(matches!(**b, Expr::Call { ref name, .. } if name == "succ"));
            }
            other => panic!("unexpected invariant parse: {other:?}"),
        }
    }

    #[test]
    fn parse_znat_class() {
        let src = r#"
            class ZNat implements Nat {
                int val;
                private invariant(val >= 0);
                private ZNat(int n) matches(n >= 0) returns(n)
                    ( val = n && n >= 0 )
                constructor zero() returns()
                    ( val = 0 )
                constructor succ(Nat n) returns(n)
                    ( val >= 1 && ZNat(val - 1) = n )
            }
        "#;
        let p = parse_program(src).unwrap();
        let znat = p.class("ZNat").unwrap();
        assert_eq!(znat.fields.len(), 1);
        assert_eq!(znat.fields[0].name, "val");
        assert_eq!(znat.invariants.len(), 1);
        assert_eq!(znat.invariants[0].visibility, Visibility::Private);
        assert_eq!(znat.methods.len(), 3);
        let ctor = &znat.methods[0];
        assert_eq!(ctor.kind, MethodKind::ClassConstructor);
        assert!(ctor.matches.is_some());
        assert_eq!(ctor.modes.len(), 1);
        assert_eq!(ctor.modes[0].outputs, vec!["n".to_string()]);
        assert!(matches!(ctor.body, MethodBody::Formula(_)));
    }

    #[test]
    fn parse_plus_with_switch() {
        let src = r#"
            static Nat plus(Nat m, Nat n) {
                switch (m, n) {
                    case (zero(), Nat x):
                    case (x, zero()):
                        return x;
                    case (succ(Nat k), _):
                        return plus(k, Nat.succ(n));
                }
            }
        "#;
        let p = parse_program(src).unwrap();
        let plus = p.methods().next().unwrap();
        assert!(plus.is_static);
        let MethodBody::Block(stmts) = &plus.body else {
            panic!("expected block body")
        };
        let Stmt::Switch {
            scrutinees, cases, ..
        } = &stmts[0]
        else {
            panic!("expected switch")
        };
        assert_eq!(scrutinees.len(), 2);
        assert_eq!(cases.len(), 3);
        assert!(cases[0].body.is_empty(), "first case falls through");
        assert_eq!(cases[0].patterns.len(), 2);
        assert_eq!(cases[1].body.len(), 1);
    }

    #[test]
    fn parse_iterative_mode_and_foreach() {
        let src = r#"
            class NatOps {
                boolean greater(Nat x) iterates(x)
                    (this = succ(Nat y) && (y = x || y.greater(x)))
                void demo(Nat n) {
                    foreach (n.greater(Nat x)) {
                        use(x);
                    }
                }
            }
        "#;
        let p = parse_program(src).unwrap();
        let c = p.class("NatOps").unwrap();
        let greater = &c.methods[0];
        assert!(greater.modes[0].iterative);
        let MethodBody::Block(body) = &c.methods[1].body else {
            panic!()
        };
        assert!(matches!(body[0], Stmt::Foreach { .. }));
    }

    #[test]
    fn parse_matches_ensures_shorthand() {
        let src = r#"
            interface List {
                constructor snoc(List hd, Object tl)
                    matches ensures(cons(_, _)) returns(hd, tl);
            }
        "#;
        let p = parse_program(src).unwrap();
        let list = p.interface("List").unwrap();
        let snoc = &list.methods[0];
        assert!(snoc.matches.is_some());
        assert_eq!(snoc.matches, snoc.ensures);
    }

    #[test]
    fn parse_formula_level_disjunction() {
        // Figure 4: equality constructor of ZNat.
        let f = parse_formula("zero() && n.zero() | succ(Nat y) && n.succ(y)").unwrap();
        match f {
            Formula::DisjointOr(a, b) => {
                assert!(matches!(*a, Formula::And(..)));
                assert!(matches!(*b, Formula::And(..)));
            }
            other => panic!("unexpected parse: {other:?}"),
        }
    }

    #[test]
    fn parse_pattern_level_disjunction() {
        let f = parse_formula("int x = y - 1 # y + 1").unwrap();
        match f {
            Formula::Cmp(CmpOp::Eq, Expr::Decl(Type::Int, x), Expr::OrPat(..)) => {
                assert_eq!(x, "x");
            }
            other => panic!("unexpected parse: {other:?}"),
        }
        let g = parse_formula("x = 1 | 2").unwrap();
        assert!(matches!(
            g,
            Formula::Cmp(CmpOp::Eq, Expr::Var(_), Expr::DisjointOr(..))
        ));
    }

    #[test]
    fn parse_where_and_as_patterns() {
        let f =
            parse_formula(r#"e = (Var("v") as Var va where Var f = freshVar("f", arg))"#).unwrap();
        let Formula::Cmp(CmpOp::Eq, _, rhs) = f else {
            panic!()
        };
        assert!(matches!(rhs, Expr::Where(..)));
    }

    #[test]
    fn parse_cond_with_else() {
        let src = r#"
            class C {
                int f(int x) {
                    cond {
                        (x >= 1) { return 1; }
                        (x <= -1) { return -1; }
                        else { return 0; }
                    }
                }
            }
        "#;
        let p = parse_program(src).unwrap();
        let MethodBody::Block(b) = &p.class("C").unwrap().methods[0].body else {
            panic!()
        };
        let Stmt::Cond { arms, else_arm } = &b[0] else {
            panic!()
        };
        assert_eq!(arms.len(), 2);
        assert!(else_arm.is_some());
    }

    #[test]
    fn parse_tuple_comparison() {
        let f = parse_formula("(e, result) = (Var(_), Lambda(k, Apply(k, e))) | (x, y)").unwrap();
        let Formula::Cmp(CmpOp::Eq, lhs, rhs) = f else {
            panic!()
        };
        assert!(matches!(lhs, Expr::Tuple(ref xs) if xs.len() == 2));
        assert!(matches!(rhs, Expr::DisjointOr(..)));
    }

    #[test]
    fn parse_field_access_and_arithmetic() {
        let f = parse_formula("result = Nat(n.value + 1)").unwrap();
        let Formula::Cmp(CmpOp::Eq, Expr::Result, rhs) = f else {
            panic!()
        };
        let Expr::Call { name, args, .. } = rhs else {
            panic!()
        };
        assert_eq!(name, "Nat");
        assert!(matches!(args[0], Expr::Binary(BinOp::Add, ..)));
    }

    #[test]
    fn parse_var_decl_statements() {
        let src = r#"
            class C {
                void m() {
                    Nat n;
                    int x = 2;
                    List l = EmptyList.nil();
                    l = ConsList.snoc(l, 1);
                    let l = reverse(List r1);
                }
            }
        "#;
        let p = parse_program(src).unwrap();
        let MethodBody::Block(b) = &p.class("C").unwrap().methods[0].body else {
            panic!()
        };
        assert_eq!(b.len(), 5);
        assert!(matches!(b[0], Stmt::Let(Formula::Atom(Expr::Decl(..)))));
        assert!(matches!(b[1], Stmt::Let(Formula::Cmp(..))));
        assert!(matches!(b[2], Stmt::Let(Formula::Cmp(..))));
        assert!(matches!(b[3], Stmt::Assign(..)));
        assert!(matches!(b[4], Stmt::Let(Formula::Cmp(..))));
    }

    #[test]
    fn parse_interface_with_plain_methods() {
        let src = r#"
            interface Tree {
                invariant(leaf() | branch(_, _, _));
                constructor leaf() matches(height() = 0) ensures(height() = 0);
                constructor branch(Tree l, int v, Tree r)
                    matches(height() > 0)
                    ensures(height() > 0)
                    returns(l, v, r);
                int height() ensures(result >= 0);
            }
        "#;
        let p = parse_program(src).unwrap();
        let t = p.interface("Tree").unwrap();
        assert_eq!(t.methods.len(), 3);
        assert!(matches!(t.invariants[0].formula, Formula::DisjointOr(..)));
        let height = &t.methods[2];
        assert_eq!(height.kind, MethodKind::Method);
        assert!(height.ensures.is_some());
    }

    #[test]
    fn error_reporting_has_position() {
        let err = parse_program("class C { int }").unwrap_err();
        assert!(err.pos.line >= 1);
        assert!(!err.message.is_empty());
    }

    #[test]
    fn parse_notall_in_matches() {
        let src = r#"
            interface List {
                constructor nil() matches(notall(result));
                constructor cons(Object hd, List tl)
                    matches(notall(result)) returns(hd, tl);
            }
        "#;
        let p = parse_program(src).unwrap();
        let l = p.interface("List").unwrap();
        let nil = &l.methods[0];
        assert!(matches!(
            nil.matches,
            Some(Formula::Atom(Expr::Call { ref name, .. })) if name == "notall"
        ));
    }
}
