//! Token counting for the Table 1 conciseness comparison.
//!
//! The paper compares implementations by the *number of language tokens*
//! (§7.2, Table 1), not lines, so formatting differences do not matter. The
//! JMatch dialect and Java share the same token-level syntax, so a single
//! lexer serves both; a count is simply the number of non-comment tokens.

use crate::lexer::{lex, LexError};

/// Counts the language tokens of a JMatch or Java source file.
///
/// Comments and whitespace are not counted. String and character literals
/// count as one token each.
///
/// # Errors
///
/// Returns a [`LexError`] if the source cannot be tokenized.
pub fn count_tokens(source: &str) -> Result<usize, LexError> {
    Ok(lex(source)?.len())
}

/// A token-count comparison between a JMatch implementation and its Java
/// counterpart, as reported in one row of Table 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TokenComparison {
    /// Token count of the JMatch 2.0 implementation.
    pub jmatch: usize,
    /// Token count of the Java implementation.
    pub java: usize,
}

impl TokenComparison {
    /// Computes the comparison for a pair of sources.
    ///
    /// # Errors
    ///
    /// Returns a [`LexError`] if either source cannot be tokenized.
    pub fn measure(jmatch_source: &str, java_source: &str) -> Result<Self, LexError> {
        Ok(TokenComparison {
            jmatch: count_tokens(jmatch_source)?,
            java: count_tokens(java_source)?,
        })
    }

    /// How much shorter the JMatch implementation is, as a fraction of the
    /// Java token count (the paper reports 42.5 % on average).
    pub fn savings(&self) -> f64 {
        if self.java == 0 {
            0.0
        } else {
            1.0 - (self.jmatch as f64 / self.java as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_ignore_comments_and_whitespace() {
        let a = count_tokens("class C { int x; }").unwrap();
        let b = count_tokens("class   C {\n  // comment\n  int x; /* more */ }").unwrap();
        assert_eq!(a, b);
        assert_eq!(a, 7);
    }

    #[test]
    fn savings_computation() {
        let cmp = TokenComparison {
            jmatch: 60,
            java: 100,
        };
        assert!((cmp.savings() - 0.4).abs() < 1e-9);
        let zero = TokenComparison {
            jmatch: 10,
            java: 0,
        };
        assert_eq!(zero.savings(), 0.0);
    }

    #[test]
    fn measure_pairs() {
        let jm = "class Nat { constructor zero() returns() ( val = 0 ) }";
        let java = "class Nat { public boolean isZero() { return this.val == 0; } }";
        let cmp = TokenComparison::measure(jm, java).unwrap();
        assert!(cmp.jmatch > 0 && cmp.java > 0);
    }
}
