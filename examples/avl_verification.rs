//! Verifying the AVL tree of Figure 13: the `Tree` invariant and the
//! `ensures` clause of `branch` are what let the verifier reason about the
//! rebalance `cond`, and removing the invariant loses that information.
//!
//! Run with `cargo run --example avl_verification`.

use jmatch::core::WarningKind;
use jmatch::Workspace;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let entry = jmatch::corpus::entry("AVLTree").expect("corpus entry");
    let program = Workspace::new()
        .verify(true)
        .max_expansion_depth(2)
        .compile(&entry.combined_jmatch())?;
    println!("AVL tree verification diagnostics:");
    if program.warnings().is_empty() {
        println!("  (none)");
    }
    for w in program.warnings() {
        println!("  {w}");
    }
    // The insert/member switches over leaf()/branch() must not be flagged
    // non-exhaustive: the Tree invariant covers them.
    let spurious: Vec<_> = program
        .diagnostics()
        .warnings_of(WarningKind::NonExhaustive)
        .into_iter()
        .filter(|w| w.context.contains("insert") || w.context.contains("member"))
        .collect();
    assert!(
        spurious.is_empty(),
        "insert/member should verify exhaustive: {spurious:?}"
    );

    // The same switch without the interface invariant cannot be proven
    // exhaustive (mirrors the paper's TreeMap observation in §7.3).
    let no_invariant = r#"
        interface Tree {
            constructor leaf() matches(height() = 0) ensures(height() = 0);
            constructor branch(Tree l, int v, Tree r)
                matches(height() > 0) ensures(height() > 0) returns(l, v, r);
            int height() ensures(result >= 0);
        }
        static int depth(Tree t) {
            switch (t) {
                case leaf(): return 0;
                case branch(Tree l, _, Tree r): return 1;
            }
        }
    "#;
    let program = Workspace::new().verify(true).compile(no_invariant)?;
    println!("\nwithout the Tree invariant:");
    for w in program.warnings() {
        println!("  {w}");
    }
    assert!(
        program
            .diagnostics()
            .has_warning(WarningKind::NonExhaustive)
            || program.diagnostics().has_warning(WarningKind::Unknown)
    );
    Ok(())
}
