//! List pattern matching with data abstraction (Figure 12): the same `List`
//! interface is checked for exhaustiveness and redundancy regardless of which
//! implementation (`EmptyList`, `ConsList`, `SnocList`, `ArrList`) is used.
//!
//! Run with `cargo run --example list_views`.

use jmatch::core::{compile, CompileOptions, WarningKind};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let list = jmatch::corpus::jmatch::LIST_INTERFACE;

    // Figure 12's `length`: the cons arm after snoc is redundant because
    // snoc's matches clause already guarantees a cons shape.
    let fig12 = format!(
        "{list}
         static int length(List l) {{
             switch (l) {{
                 case nil(): return 0;
                 case snoc(List t, _): return length(t) + 1;
                 case cons(_, List t): return length(t) + 1;
             }}
         }}"
    );
    let compiled = compile(&fig12, &CompileOptions::default())?;
    println!("Figure 12 (nil / snoc / cons):");
    for w in &compiled.diagnostics.warnings {
        println!("  {w}");
    }
    assert!(compiled.diagnostics.has_warning(WarningKind::RedundantArm));
    assert!(!compiled.diagnostics.has_warning(WarningKind::NonExhaustive));

    // Dropping the redundant arm keeps the switch exhaustive and clean.
    let clean = format!(
        "{list}
         static int length(List l) {{
             switch (l) {{
                 case nil(): return 0;
                 case cons(_, List t): return length(t) + 1;
             }}
         }}"
    );
    let compiled = compile(&clean, &CompileOptions::default())?;
    println!("\nnil / cons only:");
    println!(
        "  warnings: {} (expected none)",
        compiled.diagnostics.warnings.len()
    );
    assert!(!compiled.diagnostics.has_warning(WarningKind::RedundantArm));
    assert!(!compiled.diagnostics.has_warning(WarningKind::NonExhaustive));

    // Forgetting nil() is caught.
    let missing = format!(
        "{list}
         static int length(List l) {{
             switch (l) {{
                 case cons(_, List t): return length(t) + 1;
             }}
         }}"
    );
    let compiled = compile(&missing, &CompileOptions::default())?;
    println!("\ncons only:");
    for w in &compiled.diagnostics.warnings {
        println!("  {w}");
    }
    assert!(
        compiled.diagnostics.has_warning(WarningKind::NonExhaustive)
            || compiled.diagnostics.has_warning(WarningKind::Unknown)
    );
    Ok(())
}
