//! List pattern matching with data abstraction (Figure 12): the same `List`
//! interface is checked for exhaustiveness and redundancy regardless of which
//! implementation (`EmptyList`, `ConsList`, `SnocList`, `ArrList`) is used.
//!
//! Run with `cargo run --example list_views`.

use jmatch::core::WarningKind;
use jmatch::Compiler;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let list = jmatch::corpus::jmatch::LIST_INTERFACE;
    let compiler = Compiler::new().verify(true);

    // Figure 12's `length`: the cons arm after snoc is redundant because
    // snoc's matches clause already guarantees a cons shape.
    let fig12 = format!(
        "{list}
         static int length(List l) {{
             switch (l) {{
                 case nil(): return 0;
                 case snoc(List t, _): return length(t) + 1;
                 case cons(_, List t): return length(t) + 1;
             }}
         }}"
    );
    let program = compiler.compile(&fig12)?;
    println!("Figure 12 (nil / snoc / cons):");
    for w in program.warnings() {
        println!("  {w}");
    }
    assert!(program.diagnostics().has_warning(WarningKind::RedundantArm));
    assert!(!program
        .diagnostics()
        .has_warning(WarningKind::NonExhaustive));

    // Dropping the redundant arm keeps the switch exhaustive and clean.
    let clean = format!(
        "{list}
         static int length(List l) {{
             switch (l) {{
                 case nil(): return 0;
                 case cons(_, List t): return length(t) + 1;
             }}
         }}"
    );
    let program = compiler.compile(&clean)?;
    println!("\nnil / cons only:");
    println!("  warnings: {} (expected none)", program.warnings().len());
    assert!(!program.diagnostics().has_warning(WarningKind::RedundantArm));
    assert!(!program
        .diagnostics()
        .has_warning(WarningKind::NonExhaustive));

    // Forgetting nil() is caught.
    let missing = format!(
        "{list}
         static int length(List l) {{
             switch (l) {{
                 case cons(_, List t): return length(t) + 1;
             }}
         }}"
    );
    let program = compiler.compile(&missing)?;
    println!("\ncons only:");
    for w in program.warnings() {
        println!("  {w}");
    }
    assert!(
        program
            .diagnostics()
            .has_warning(WarningKind::NonExhaustive)
            || program.diagnostics().has_warning(WarningKind::Unknown)
    );
    Ok(())
}
