//! List pattern matching with data abstraction (Figure 12): the same `List`
//! interface is checked for exhaustiveness and redundancy regardless of which
//! implementation (`EmptyList`, `ConsList`, `SnocList`, `ArrList`) is used.
//!
//! The three variants below differ only in the body of `length`, so they are
//! also a showcase for [`Workspace`] incremental rebuilds: after the first
//! full build, each edit re-verifies just the changed method instead of the
//! whole program.
//!
//! Run with `cargo run --example list_views`.

use jmatch::core::WarningKind;
use jmatch::Workspace;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let list = jmatch::corpus::jmatch::LIST_INTERFACE;
    let mut workspace = Workspace::new().verify(true);

    // Figure 12's `length`: the cons arm after snoc is redundant because
    // snoc's matches clause already guarantees a cons shape.
    let fig12 = format!(
        "{list}
         static int length(List l) {{
             switch (l) {{
                 case nil(): return 0;
                 case snoc(List t, _): return length(t) + 1;
                 case cons(_, List t): return length(t) + 1;
             }}
         }}"
    );
    let generation = workspace.load(&fig12)?;
    let program = generation.program();
    println!("Figure 12 (nil / snoc / cons):");
    for w in program.warnings() {
        println!("  {w}");
    }
    assert!(program.diagnostics().has_warning(WarningKind::RedundantArm));
    assert!(!program
        .diagnostics()
        .has_warning(WarningKind::NonExhaustive));

    // Dropping the redundant arm keeps the switch exhaustive and clean.
    // Only `length` changed, so only `length` is re-verified.
    let clean = format!(
        "{list}
         static int length(List l) {{
             switch (l) {{
                 case nil(): return 0;
                 case cons(_, List t): return length(t) + 1;
             }}
         }}"
    );
    let generation = workspace.update_source(&clean)?;
    let program = generation.program();
    println!("\nnil / cons only:");
    println!("  warnings: {} (expected none)", program.warnings().len());
    println!("  re-verified: {:?}", generation.report().reverified);
    assert!(!program.diagnostics().has_warning(WarningKind::RedundantArm));
    assert!(!program
        .diagnostics()
        .has_warning(WarningKind::NonExhaustive));
    assert_eq!(generation.report().reverified, ["<toplevel>.length"]);

    // Forgetting nil() is caught — again with an incremental rebuild.
    let missing = format!(
        "{list}
         static int length(List l) {{
             switch (l) {{
                 case cons(_, List t): return length(t) + 1;
             }}
         }}"
    );
    let generation = workspace.update_source(&missing)?;
    let program = generation.program();
    println!("\ncons only:");
    for w in program.warnings() {
        println!("  {w}");
    }
    assert!(
        program
            .diagnostics()
            .has_warning(WarningKind::NonExhaustive)
            || program.diagnostics().has_warning(WarningKind::Unknown)
    );
    Ok(())
}
