//! Natural-number arithmetic across three different implementations of the
//! same `Nat` interface (Figure 1–4 of the paper): the int-backed `ZNat` and
//! the Peano-style `PZero`/`PSucc` interoperate through named constructors
//! and equality constructors.
//!
//! Run with `cargo run --example nat_arithmetic`.

use jmatch::core::{compile, CompileOptions};
use jmatch::runtime::{Interp, Value};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let entry = jmatch::corpus::entry("ZNat").expect("corpus entry");
    let compiled = compile(
        &entry.combined_jmatch(),
        &CompileOptions {
            verify: false,
            ..CompileOptions::default()
        },
    )?;
    let interp = Interp::new(compiled.table.clone());

    // Build 2 and 3 with the int-backed representation.
    let mut two = interp.construct("ZNat", "zero", vec![])?;
    for _ in 0..2 {
        two = interp.construct("ZNat", "succ", vec![two])?;
    }
    let mut three = interp.construct("ZNat", "zero", vec![])?;
    for _ in 0..3 {
        three = interp.construct("ZNat", "succ", vec![three])?;
    }

    // plus() pattern-matches on zero()/succ() without knowing the class.
    let five = interp.call_free("plus", vec![two.clone(), three.clone()])?;
    println!("2 + 3 = {five}");

    // The backward mode of succ() recovers the predecessor.
    let rows = interp.deconstruct(&five, "succ")?;
    println!("pred(5) = {}", rows[0][0]);

    // Check the result via the named constructor predicates.
    assert!(!interp.matches_constructor(&five, "zero")?);
    let as_int = interp.call_method(&five, "toInt", vec![])?;
    assert_eq!(as_int, Value::Int(5));
    println!("toInt(5) = {as_int}");
    Ok(())
}
