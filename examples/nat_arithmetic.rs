//! Natural-number arithmetic across three different implementations of the
//! same `Nat` interface (Figure 1–4 of the paper): the int-backed `ZNat` and
//! the Peano-style `PZero`/`PSucc` interoperate through named constructors
//! and equality constructors — driven through the `Program` embedding API.
//!
//! Run with `cargo run --example nat_arithmetic`.

use jmatch::{args, Value, Workspace};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let entry = jmatch::corpus::entry("ZNat").expect("corpus entry");
    let program = Workspace::new()
        .verify(false)
        .compile(&entry.combined_jmatch())?;

    // Resolve the handles once.
    let zero = program.ctor("ZNat", "zero")?;
    let succ = program.ctor("ZNat", "succ")?;
    let plus = program.free_method("plus")?;
    let to_int = program.method("ZNat", "toInt")?;

    // Build 2 and 3 with the int-backed representation.
    let mut two = zero.construct(args![])?;
    for _ in 0..2 {
        two = succ.construct(args![two])?;
    }
    let mut three = zero.construct(args![])?;
    for _ in 0..3 {
        three = succ.construct(args![three])?;
    }

    // plus() pattern-matches on zero()/succ() without knowing the class.
    let five = plus.call(None, args![two, three])?;
    println!("2 + 3 = {five}");

    // The backward mode of succ() recovers the predecessor — lazily: the
    // query pulls exactly one solution.
    let pred = succ.deconstruct(&five)?.first().expect("5 = succ(4)");
    println!("pred(5) = {}", pred["n"]);

    // Check the result via the named constructor predicates.
    assert!(!program.matches(&five, "zero")?);
    let as_int = to_int.call(Some(&five), args![])?;
    assert_eq!(as_int, Value::Int(5));
    println!("toInt(5) = {as_int}");
    Ok(())
}
