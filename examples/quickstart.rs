//! Quickstart: compile a JMatch 2.0 program with the fluent [`Workspace`],
//! inspect the verifier's exhaustiveness warnings, fix the program, and run
//! it through resolved [`jmatch::MethodRef`] / [`jmatch::CtorRef`] handles.
//!
//! Run with `cargo run --example quickstart`.

use jmatch::core::WarningKind;
use jmatch::{args, Value, Workspace};

const MISSING_CASE: &str = r#"
interface Nat {
    invariant(this = zero() | succ(_));
    constructor zero() returns();
    constructor succ(Nat n) returns(n);
}
class ZNat implements Nat {
    int val;
    private invariant(val >= 0);
    private ZNat(int n) matches(n >= 0) returns(n) ( val = n && n >= 0 )
    constructor zero() returns() ( val = 0 )
    constructor succ(Nat n) returns(n) ( val >= 1 && ZNat(val - 1) = n )
}
static int toInt(Nat m) {
    switch (m) {
        case succ(Nat k): return toInt(k) + 1;
    }
}
"#;

const FIXED: &str = r#"
interface Nat {
    invariant(this = zero() | succ(_));
    constructor zero() returns();
    constructor succ(Nat n) returns(n);
}
class ZNat implements Nat {
    int val;
    private invariant(val >= 0);
    private ZNat(int n) matches(n >= 0) returns(n) ( val = n && n >= 0 )
    constructor zero() returns() ( val = 0 )
    constructor succ(Nat n) returns(n) ( val >= 1 && ZNat(val - 1) = n )
}
static int toInt(Nat m) {
    switch (m) {
        case zero(): return 0;
        case succ(Nat k): return toInt(k) + 1;
    }
}
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The incomplete switch: the verifier reports the missing zero() case.
    let broken = Workspace::new().verify(true).compile(MISSING_CASE)?;
    println!("verifying the incomplete program:");
    for w in broken.warnings() {
        println!("  {w}");
    }
    assert!(
        broken.diagnostics().has_warning(WarningKind::NonExhaustive)
            || broken.diagnostics().has_warning(WarningKind::Unknown)
    );

    // 2. The fixed program verifies without exhaustiveness warnings.
    let program = Workspace::new().verify(true).compile(FIXED)?;
    println!("\nverifying the fixed program:");
    println!(
        "  non-exhaustive warnings: {}",
        program
            .diagnostics()
            .warnings_of(WarningKind::NonExhaustive)
            .len()
    );

    // 3. And it runs: resolve the handles once, then call through them.
    let zero = program.ctor("ZNat", "zero")?;
    let succ = program.ctor("ZNat", "succ")?;
    let to_int = program.free_method("toInt")?;
    let mut n = zero.construct(args![])?;
    for _ in 0..3 {
        n = succ.construct(args![n])?;
    }
    let as_int = to_int.call(None, args![n.clone()])?;
    println!("\ntoInt(succ(succ(succ(zero())))) = {as_int}");
    assert_eq!(as_int, Value::Int(3));

    // 4. Backward mode is a lazy query: `first()` does only the work of the
    // first solution.
    let pred = program
        .deconstruct(&n, "succ")?
        .first()
        .expect("n = succ(_)");
    println!("succ(pred) = n with pred = {}", pred["n"]);
    assert_eq!(pred["n"].field("val"), Some(&Value::Int(2)));
    Ok(())
}
