//! Quickstart: compile a JMatch 2.0 program, inspect the verifier's
//! exhaustiveness warnings, fix the program, and run it.
//!
//! Run with `cargo run --example quickstart`.

use jmatch::core::{compile, CompileOptions, WarningKind};
use jmatch::runtime::{Interp, Value};

const MISSING_CASE: &str = r#"
interface Nat {
    invariant(this = zero() | succ(_));
    constructor zero() returns();
    constructor succ(Nat n) returns(n);
}
class ZNat implements Nat {
    int val;
    private invariant(val >= 0);
    private ZNat(int n) matches(n >= 0) returns(n) ( val = n && n >= 0 )
    constructor zero() returns() ( val = 0 )
    constructor succ(Nat n) returns(n) ( val >= 1 && ZNat(val - 1) = n )
}
static int toInt(Nat m) {
    switch (m) {
        case succ(Nat k): return toInt(k) + 1;
    }
}
"#;

const FIXED: &str = r#"
interface Nat {
    invariant(this = zero() | succ(_));
    constructor zero() returns();
    constructor succ(Nat n) returns(n);
}
class ZNat implements Nat {
    int val;
    private invariant(val >= 0);
    private ZNat(int n) matches(n >= 0) returns(n) ( val = n && n >= 0 )
    constructor zero() returns() ( val = 0 )
    constructor succ(Nat n) returns(n) ( val >= 1 && ZNat(val - 1) = n )
}
static int toInt(Nat m) {
    switch (m) {
        case zero(): return 0;
        case succ(Nat k): return toInt(k) + 1;
    }
}
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The incomplete switch: the verifier reports the missing zero() case.
    let broken = compile(MISSING_CASE, &CompileOptions::default())?;
    println!("verifying the incomplete program:");
    for w in &broken.diagnostics.warnings {
        println!("  {w}");
    }
    assert!(
        broken.diagnostics.has_warning(WarningKind::NonExhaustive)
            || broken.diagnostics.has_warning(WarningKind::Unknown)
    );

    // 2. The fixed program verifies without exhaustiveness warnings.
    let fixed = compile(FIXED, &CompileOptions::default())?;
    println!("\nverifying the fixed program:");
    println!(
        "  non-exhaustive warnings: {}",
        fixed
            .diagnostics
            .warnings_of(WarningKind::NonExhaustive)
            .len()
    );

    // 3. And it runs: build succ(succ(succ(zero))) and convert it to an int.
    let interp = Interp::new(fixed.table.clone());
    let mut n = interp.construct("ZNat", "zero", vec![])?;
    for _ in 0..3 {
        n = interp.construct("ZNat", "succ", vec![n])?;
    }
    let as_int = interp.call_free("toInt", vec![n])?;
    println!("\ntoInt(succ(succ(succ(zero())))) = {as_int}");
    assert_eq!(as_int, Value::Int(3));
    Ok(())
}
