//! Serving: boot an in-process [`Server`], speak the `jmatch-serve` wire
//! protocol through the blocking reference [`Client`], and stream
//! solutions over a socket.
//!
//! The same `Client` calls work against a standalone `jmatch-serve`
//! process (see `PROTOCOL.md` and the README's "Serving" section); the
//! example embeds the server so it is a self-contained, CI-runnable
//! round trip.
//!
//! Run with `cargo run --example serve_client`.

use jmatch::runtime::serve::json::Json;
use jmatch::runtime::serve::{Client, QueryOptions, ServeConfig, Server};
use jmatch::Value;

const SRC: &str = r#"
class Gen {
    boolean pair(int x, int y) iterates(x, y)
        ( (x = 1 || x = 2 || x = 3) && (y = 10 || y = 20) )
}
static boolean below(int n, int x) iterates(x) ( x = 0 || x = 1 || x = 2 )
static int add(int a, int b) { return a + b; }
"#;

fn main() {
    // An in-process server on an ephemeral loopback port. A standalone
    // deployment would run `jmatch-serve --addr 127.0.0.1:7733` instead
    // and connect to that address.
    let server = Server::start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        ..ServeConfig::default()
    })
    .expect("server start");
    println!("serving on {}", server.local_addr());

    let mut client = Client::connect(server.local_addr()).expect("connect");

    // Compile once; the reply carries the cache key that later requests
    // use to name the program. A second compile of the same source is a
    // cache hit and returns the same key without recompiling.
    let reply = client.compile(SRC, true).expect("compile");
    assert_eq!(reply.get("ok"), Some(&Json::Bool(true)), "{reply}");
    let key = reply
        .get("program")
        .and_then(Json::as_str)
        .expect("program key")
        .to_owned();
    let again = client.compile(SRC, true).expect("re-compile");
    println!(
        "compiled as {key} (second compile cached: {})",
        again.get("cached") == Some(&Json::Bool(true))
    );

    // A forward call, a collect query, and a streamed enumeration.
    let reply = client
        .call("default", &key, "add", &[Value::Int(40), Value::Int(2)])
        .expect("call");
    println!("add(40, 2) = {}", reply.get("value").expect("value"));

    let mut options = QueryOptions::new(&key, "below");
    options.known = vec![("n".into(), Value::Int(3))];
    let reply = client.query(&options).expect("query");
    let solutions = reply
        .get("solutions")
        .and_then(Json::as_arr)
        .expect("solutions");
    println!("below(3, x) has {} solutions:", solutions.len());
    for solution in solutions {
        println!("  {solution}");
    }

    let mut options = QueryOptions::new(&key, "pair");
    options.class = Some("Gen".into());
    let frames = client.stream(&options, 2).expect("stream");
    println!("Gen.pair(x, y) streamed in {} frames:", frames.len());
    for frame in &frames {
        if let Some(batch) = frame.get("solutions").and_then(Json::as_arr) {
            for solution in batch {
                println!("  {solution}");
            }
        }
    }
    let last = frames.last().expect("terminal frame");
    assert_eq!(last.get("done"), Some(&Json::Bool(true)));
    println!(
        "stream done: {} solutions, cancelled: {}",
        last.get("count").expect("count"),
        last.get("cancelled").expect("cancelled"),
    );

    let metrics = server.metrics();
    println!(
        "server metrics: {} frames, cache {} hits / {} misses",
        metrics.frames, metrics.cache.hits, metrics.cache.misses
    );
    server.shutdown();
    println!("server shut down cleanly");
}
