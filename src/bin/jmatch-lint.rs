//! `jmatch-lint` — the standalone lint driver over `jmatch_core::analysis`.
//!
//! Compiles each input (files, inline `--source`, or the built-in Table 1
//! corpus via `--corpus`), runs the plan-analysis pass, and reports its
//! lints: unused bindings, always-failing invokes, dead modes, unbounded
//! left recursion. Verification is off by default (`--verify` turns it on,
//! folding the §5 verifier warnings into the report).
//!
//! Output is human-readable by default; `--json` emits one stable JSON
//! document for the whole run (the CI `lint-corpus` golden uses this).

use jmatch_runtime::serve::json::Json;
use jmatch_runtime::{Program, Workspace};
use std::process::ExitCode;

const USAGE: &str = "\
jmatch-lint — static lints over compiled JMatch plans

USAGE:
    jmatch-lint [OPTIONS] [FILES...]

OPTIONS:
    --corpus         lint every built-in Table 1 corpus entry
    --source SRC     lint an inline source string
    --json           emit one JSON document instead of human-readable lines
    --verify         also run the static verification passes (their
                     warnings are folded into the report)
    -h, --help       print this help

EXIT STATUS:
    0  no lints (and no compile errors)
    1  at least one lint was reported
    2  a compile error or bad usage
";

struct Options {
    corpus: bool,
    json: bool,
    verify: bool,
    sources: Vec<(String, String)>,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        corpus: false,
        json: false,
        verify: false,
        sources: Vec::new(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--corpus" => opts.corpus = true,
            "--json" => opts.json = true,
            "--verify" => opts.verify = true,
            "--source" => {
                let src = args.next().ok_or("--source needs an argument")?;
                opts.sources.push(("<source>".to_owned(), src));
            }
            "-h" | "--help" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            flag if flag.starts_with('-') => {
                return Err(format!("unknown flag `{flag}`"));
            }
            path => {
                let text = std::fs::read_to_string(path)
                    .map_err(|e| format!("cannot read `{path}`: {e}"))?;
                opts.sources.push((path.to_owned(), text));
            }
        }
    }
    if opts.corpus {
        for entry in jmatch_corpus::entries() {
            opts.sources
                .push((entry.name.to_owned(), entry.combined_jmatch()));
        }
    }
    if opts.sources.is_empty() {
        return Err("nothing to lint: pass FILES, --source, or --corpus".into());
    }
    Ok(opts)
}

/// One input's lint report: analysis lints first, then (with `--verify`)
/// the verifier's warnings, in production order.
fn lint_one(name: &str, source: &str, verify: bool) -> Result<Vec<Json>, String> {
    let program: Program = Workspace::new()
        .verify(verify)
        .compile(source)
        .map_err(|e| format!("{name}: parse error: {e}"))?;
    let errors = &program.diagnostics().errors;
    if !errors.is_empty() {
        return Err(format!("{name}: compile error: {}", errors[0]));
    }
    let mut out = Vec::new();
    for w in program.lints().iter().chain(program.warnings()) {
        out.push(Json::obj(vec![
            ("kind", Json::Str(w.kind.to_string())),
            ("context", Json::Str(w.context.clone())),
            ("message", Json::Str(w.message.clone())),
        ]));
    }
    Ok(out)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(opts) => opts,
        Err(message) => {
            eprintln!("jmatch-lint: {message}");
            eprint!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    let mut total = 0usize;
    let mut inputs = Vec::new();
    for (name, source) in &opts.sources {
        match lint_one(name, source, opts.verify) {
            Ok(lints) => {
                total += lints.len();
                if !opts.json {
                    for l in &lints {
                        let kind = l.get("kind").and_then(Json::as_str).unwrap_or("");
                        let context = l.get("context").and_then(Json::as_str).unwrap_or("");
                        let message = l.get("message").and_then(Json::as_str).unwrap_or("");
                        println!("{name}: warning[{kind}] {context}: {message}");
                    }
                }
                inputs.push(Json::obj(vec![
                    ("name", Json::Str(name.clone())),
                    ("lints", Json::Arr(lints)),
                ]));
            }
            Err(message) => {
                eprintln!("jmatch-lint: {message}");
                return ExitCode::from(2);
            }
        }
    }
    if opts.json {
        let doc = Json::obj(vec![
            ("total", Json::Int(total as i64)),
            ("inputs", Json::Arr(inputs)),
        ]);
        println!("{doc}");
    } else if total == 0 {
        println!("jmatch-lint: clean ({} input(s))", opts.sources.len());
    }
    if total == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
