//! # jmatch
//!
//! Facade crate for the reproduction of *Reconciling Exhaustive Pattern
//! Matching with Objects* (Isradisaikul & Myers, PLDI 2013): JMatch 2.0 as a
//! Rust library.
//!
//! The workspace is split into focused crates, all re-exported here:
//!
//! | crate | contents |
//! |---|---|
//! | [`syntax`] | lexer, AST, parser, token counter for the JMatch 2.0 dialect |
//! | [`smt`] | the from-scratch incremental SMT solver standing in for Z3 |
//! | [`core`] | class table, modes, `ExtractM`, VC generation, the verifier, and the [`core::lower`] plan compiler |
//! | [`runtime`] | dynamic semantics: the plan evaluator plus the legacy tree-walking oracle |
//! | [`corpus`] | the paper's Table 1 evaluation programs |
//!
//! ## One solver session per compilation
//!
//! Just as the paper keeps a single Z3 process alive across its checks
//! (§6.2), [`core::compile`] discharges **all** verification conditions of a
//! compilation through one shared [`smt::Solver`] session: each VC query is
//! delimited with `push`/`pop`, the hash-consed term store and atom
//! encodings persist, invariant/`matches`/`ensures` expansion lemmas are
//! replayed from a session cache instead of being re-derived, and query
//! results are memoized by their canonicalized fact sets.
//!
//! ## One lowering pass per program
//!
//! The paper's translation picks a solved form per mode *statically* (§2.3).
//! [`core::lower`] is that pass: after class-table and mode resolution it
//! compiles every method body — declarative formulas, `switch` dispatch,
//! `foreach` enumeration, imperative blocks — into a mode-specialized query
//! plan, and [`runtime::Interp`] executes those plans over flat slot frames.
//! The pre-lowering tree-walking interpreter stays available behind
//! [`runtime::Engine::TreeWalk`] as a differential-testing oracle.
//!
//! ## Quick start
//!
//! ```
//! use jmatch::core::{compile, CompileOptions, WarningKind};
//!
//! let source = "
//!     interface Nat {
//!         invariant(this = zero() | succ(_));
//!         constructor zero() returns();
//!         constructor succ(Nat n) returns(n);
//!     }
//!     static Nat pred(Nat m) {
//!         switch (m) {
//!             case succ(Nat k): return k;
//!         }
//!     }
//! ";
//! let compiled = compile(source, &CompileOptions::default())?;
//! assert!(compiled.diagnostics.has_warning(WarningKind::NonExhaustive)
//!     || compiled.diagnostics.has_warning(WarningKind::Unknown));
//! # Ok::<(), jmatch::syntax::ParseError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use jmatch_core as core;
pub use jmatch_corpus as corpus;
pub use jmatch_runtime as runtime;
pub use jmatch_smt as smt;
pub use jmatch_syntax as syntax;
