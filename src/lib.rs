//! # jmatch
//!
//! Facade crate for the reproduction of *Reconciling Exhaustive Pattern
//! Matching with Objects* (Isradisaikul & Myers, PLDI 2013): JMatch 2.0 as a
//! Rust library.
//!
//! The workspace is split into focused crates, all re-exported here:
//!
//! | crate | contents |
//! |---|---|
//! | [`syntax`] | lexer, AST, parser, token counter for the JMatch 2.0 dialect |
//! | [`smt`] | the from-scratch incremental SMT solver standing in for Z3 |
//! | [`core`] | class table, modes, `ExtractM`, VC generation, the verifier, and the [`core::lower`] plan compiler |
//! | [`runtime`] | dynamic semantics: the plan evaluator plus the legacy tree-walking oracle |
//! | [`corpus`] | the paper's Table 1 evaluation programs |
//!
//! ## One solver session per compilation
//!
//! Just as the paper keeps a single Z3 process alive across its checks
//! (§6.2), [`core::compile`] discharges **all** verification conditions of a
//! compilation through one shared [`smt::Solver`] session: each VC query is
//! delimited with `push`/`pop`, the hash-consed term store and atom
//! encodings persist, invariant/`matches`/`ensures` expansion lemmas are
//! replayed from a session cache instead of being re-derived, and query
//! results are memoized by their canonicalized fact sets.
//!
//! ## One lowering pass per program
//!
//! The paper's translation picks a solved form per mode *statically* (§2.3).
//! [`core::lower`] is that pass: after class-table and mode resolution it
//! compiles every method body — declarative formulas, `switch` dispatch,
//! `foreach` enumeration, imperative blocks — into a mode-specialized query
//! plan, and [`runtime::Program`] executes those plans over flat slot frames.
//! The pre-lowering tree-walking interpreter stays available behind
//! [`runtime::Engine::TreeWalk`] as a differential-testing oracle.
//!
//! ## Quick start
//!
//! ```
//! use jmatch::core::{compile, CompileOptions, WarningKind};
//!
//! let source = "
//!     interface Nat {
//!         invariant(this = zero() | succ(_));
//!         constructor zero() returns();
//!         constructor succ(Nat n) returns(n);
//!     }
//!     static Nat pred(Nat m) {
//!         switch (m) {
//!             case succ(Nat k): return k;
//!         }
//!     }
//! ";
//! let compiled = compile(source, &CompileOptions::default())?;
//! assert!(compiled.diagnostics.has_warning(WarningKind::NonExhaustive)
//!     || compiled.diagnostics.has_warning(WarningKind::Unknown));
//! # Ok::<(), jmatch::syntax::ParseError>(())
//! ```
//!
//! ## The embedding API: compile once, query many, pull lazily
//!
//! The paper's compilation story targets Java_yield — coroutines that
//! *lazily* yield one solution at a time (§2.3, §5). The embedding surface
//! mirrors that shape: a [`Workspace`] builds a cheap-to-clone, `Send +
//! Sync` [`Program`] (class table + lowered plans, lowered exactly once),
//! [`MethodRef`] / [`CtorRef`] handles resolve string lookups once, and
//! every enumeration is a [`Query`] whose [`Solutions`] is a pull-based
//! [`Iterator`] — `take(1)` does O(first solution) work. Keep the
//! [`Workspace`] around and later edits ([`Workspace::update_source`] /
//! [`Workspace::update_method`]) rebuild incrementally: only changed
//! methods and their dependents are re-verified and re-lowered.
//!
//! ```
//! use jmatch::{args, Value, Workspace};
//!
//! let source = "
//!     interface Nat {
//!         invariant(this = zero() | succ(_));
//!         constructor zero() returns();
//!         constructor succ(Nat n) returns(n);
//!     }
//!     class ZNat implements Nat {
//!         int val;
//!         private invariant(val >= 0);
//!         private ZNat(int n) matches(n >= 0) returns(n) ( val = n && n >= 0 )
//!         constructor zero() returns() ( val = 0 )
//!         constructor succ(Nat n) returns(n) ( val >= 1 && ZNat(val - 1) = n )
//!     }
//! ";
//! // Compile (and verify) once; `Program` is Send + Sync and cheap to clone.
//! let program = Workspace::new().verify(true).compile(source)?;
//! assert!(program.diagnostics().errors.is_empty());
//!
//! // Resolve handles once, call through them with no per-call lookups.
//! let zero = program.ctor("ZNat", "zero")?;
//! let succ = program.ctor("ZNat", "succ")?;
//! let mut three = zero.construct(args![])?;
//! for _ in 0..3 {
//!     three = succ.construct(args![three])?;
//! }
//!
//! // Backward mode as a lazy query: only the pulled solutions are computed.
//! let pred = program.deconstruct(&three, "succ")?;
//! let first = pred.first().expect("three = succ(two)");
//! assert_eq!(first["n"].field("val"), Some(&Value::Int(2)));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use jmatch_core as core;
pub use jmatch_corpus as corpus;
pub use jmatch_runtime as runtime;
pub use jmatch_smt as smt;
pub use jmatch_syntax as syntax;

#[allow(deprecated)]
pub use jmatch_runtime::Compiler;
pub use jmatch_runtime::{
    args, Bindings, CtorRef, Engine, Generation, Limits, MethodRef, Program, Query, RebuildReport,
    Solutions, Value, Workspace,
};
