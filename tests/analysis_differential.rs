//! Observation-equivalence of the plan-analysis pass (`jmatch_core::analysis`).
//!
//! The pass rewrites plans (dead-alternative pruning) and annotates forms
//! (`Det` commits), so its correctness contract is differential: a program
//! compiled with `analysis(false)` is the unanalyzed oracle, and every
//! workload must produce an identical transcript — same values, same
//! solution rows, same enumeration order, same failures — with the pass on
//! or off, sequentially and across OR-parallel thread counts.
//!
//! The pruning side is additionally cross-checked against the paper's §5
//! verifier: every arm the analysis removes as `CatchAllDominated` or
//! `DuplicateArm` must also be flagged `RedundantArm` by the SMT-backed
//! redundancy check (`AnalysisOptions::smt`); `StaticallyFalse` prunes
//! carry their own guard-mask justification (a branch that lowered to
//! `Fail` admits no store).

use jmatch::core::lower::{PlanOptions, ProgramPlan};
use jmatch::core::{compile, CompileOptions, Justification, WarningKind};
use jmatch::{args, Bindings, Limits, Program, Value, Workspace};

mod harness;
use harness::transcript;

fn thread_counts() -> Vec<usize> {
    match std::env::var("JMATCH_PAR_THREADS") {
        Ok(v) => vec![v
            .parse()
            .expect("JMATCH_PAR_THREADS must be a thread count")],
        Err(_) => vec![1, 2, 8],
    }
}

fn program_with(src: &str, analysis: bool, bytecode: bool) -> Program {
    let program = Workspace::new()
        .verify(false)
        .analysis(analysis)
        .bytecode(bytecode)
        .compile(src)
        .unwrap();
    assert!(program.diagnostics().errors.is_empty());
    program
}

/// Every corpus program must be observation-equivalent with the analysis
/// pass on (both machine representations) and off.
#[test]
fn every_corpus_program_agrees_with_the_unanalyzed_oracle() {
    for entry in jmatch::corpus::entries() {
        let src = entry.combined_jmatch();
        let oracle = transcript(&program_with(&src, false, true));
        let analyzed_bc = transcript(&program_with(&src, true, true));
        let analyzed_tree = transcript(&program_with(&src, true, false));
        assert_eq!(
            oracle, analyzed_bc,
            "{}: analyzed (bytecode) plan diverges from the unanalyzed oracle",
            entry.name
        );
        assert_eq!(
            oracle, analyzed_tree,
            "{}: analyzed (goal-tree) plan diverges from the unanalyzed oracle",
            entry.name
        );
    }
}

/// Compiles through `jmatch_core` directly with the SMT prune cross-check
/// enabled, returning the plan (with its analysis report) plus the full
/// verifier diagnostics for the same source.
fn plan_with_smt_check(src: &str) -> (std::sync::Arc<ProgramPlan>, jmatch::core::Diagnostics) {
    let compiled = compile(src, &CompileOptions::default()).unwrap();
    assert!(compiled.diagnostics.errors.is_empty());
    let plan = ProgramPlan::compile_with(
        compiled.table,
        PlanOptions {
            smt_prune_check: true,
            ..PlanOptions::default()
        },
    );
    (plan, compiled.diagnostics)
}

/// Every pruned switch arm must be independently flagged `RedundantArm` by
/// the §5 verifier (the SMT cross-check), or be a `StaticallyFalse` prune,
/// which carries its own guard-mask justification.
fn assert_prunes_cross_checked(name: &str, src: &str) {
    let (plan, diags) = plan_with_smt_check(src);
    let report = plan.analysis().expect("analysis ran");
    for p in &report.prunes {
        match p.justification {
            Justification::StaticallyFalse => {}
            Justification::CatchAllDominated | Justification::DuplicateArm => {
                let confirmed = p.smt_confirmed == Some(true)
                    || diags
                        .warnings_of(WarningKind::RedundantArm)
                        .iter()
                        .any(|w| w.context == p.context);
                assert!(
                    confirmed,
                    "{name}: prune {{context: {}, site: {}, justification: {}}} \
                     was not confirmed redundant by the verifier",
                    p.context, p.site, p.justification
                );
            }
        }
    }
}

#[test]
fn pruned_arms_are_cross_checked_against_the_verifier() {
    // A literal arm duplicating an earlier arm, and an arm dominated by an
    // irrefutable catch-all: both are pruned by the analysis and flagged
    // `RedundantArm` by the verifier.
    let src = r#"
        static int dup(int x) {
            switch (x) {
                case 0: return 1;
                case 0: return 2;
                default: return 3;
            }
        }
        static int dominated(int x) {
            switch (x) {
                case int y: return y;
                case 7: return 9;
            }
        }
    "#;
    let (plan, _) = plan_with_smt_check(src);
    let report = plan.analysis().expect("analysis ran");
    assert!(
        report
            .prunes
            .iter()
            .any(|p| p.justification == Justification::DuplicateArm),
        "expected a DuplicateArm prune; got {:?}",
        report.prunes
    );
    assert!(
        report
            .prunes
            .iter()
            .any(|p| p.justification == Justification::CatchAllDominated),
        "expected a CatchAllDominated prune; got {:?}",
        report.prunes
    );
    assert_prunes_cross_checked("handcrafted", src);

    // The pruned program still computes the same results as the oracle.
    for analysis in [true, false] {
        let program = Workspace::new()
            .verify(false)
            .analysis(analysis)
            .compile(src)
            .unwrap();
        let dup = program.free_method("dup").unwrap();
        assert_eq!(dup.call(None, args![0]).unwrap(), Value::Int(1));
        assert_eq!(dup.call(None, args![5]).unwrap(), Value::Int(3));
        let dominated = program.free_method("dominated").unwrap();
        assert_eq!(dominated.call(None, args![7]).unwrap(), Value::Int(7));
    }
}

#[test]
fn corpus_prunes_are_cross_checked_against_the_verifier() {
    for entry in jmatch::corpus::entries() {
        assert_prunes_cross_checked(entry.name, &entry.combined_jmatch());
    }
}

/// The flagship deterministic workload: `min` over a binary tree descends
/// the left spine. Its two body branches are guarded by disjoint
/// constructor masks (`Leaf.min` and `Node.empty` both lower to `Fail`),
/// so the analysis proves the matching mode `Det`.
const TREE: &str = r#"
    interface Tree {
        constructor leaf() returns();
        constructor node(int k, Tree l, Tree r) returns(k, l, r);
        boolean min(int m) returns(m);
        boolean empty();
    }
    class Leaf implements Tree {
        constructor leaf() returns() ( true )
        constructor node(int k, Tree l, Tree r) returns(k, l, r) ( false )
        boolean min(int m) returns(m) ( false )
        boolean empty() ( true )
    }
    class Node implements Tree {
        int key;
        Tree left;
        Tree right;
        constructor leaf() returns() ( false )
        constructor node(int k, Tree l, Tree r) returns(k, l, r)
            ( key = k && left = l && right = r )
        boolean min(int m) returns(m)
            ( left.min(int lm) && m = lm || left.empty() && m = key )
        boolean empty() ( false )
    }
"#;

const LIST: &str = r#"
    interface IntList {
        constructor nil() returns();
        constructor cons(int h, IntList t) returns(h, t);
        boolean elem(int x) iterates(x);
    }
    class Nil implements IntList {
        constructor nil() returns() ( true )
        constructor cons(int h, IntList t) returns(h, t) ( false )
        boolean elem(int x) iterates(x) ( false )
    }
    class Cons implements IntList {
        int head;
        IntList tail;
        constructor nil() returns() ( false )
        constructor cons(int h, IntList t) returns(h, t) ( head = h && tail = t )
        boolean elem(int x) iterates(x) ( cons(x, _) || cons(_, IntList t) && t.elem(x) )
    }
"#;

/// Builds a left-chain of `n` nodes (min sits at the deepest node).
fn left_chain(program: &Program, n: i64) -> Value {
    let leaf = program.ctor("Leaf", "leaf").unwrap();
    let node = program.ctor("Node", "node").unwrap();
    let mut t = leaf.construct(args![]).unwrap();
    for i in (0..n).rev() {
        let sibling = leaf.construct(args![]).unwrap();
        t = node.construct(args![i + 1000, t, sibling]).unwrap();
    }
    t
}

#[test]
fn determinism_facts_are_inferred_where_expected() {
    let tree = program_with(TREE, true, true);
    let report = tree.analysis().expect("analysis ran");
    let min = tree.plan().lookup_impl("Node", "min").unwrap();
    let facts = report.matching_facts(min).expect("min has matching facts");
    assert!(
        facts.det(),
        "Node.min's matching mode should be Det: {facts:?}"
    );

    // An iterative mode that genuinely enumerates must NOT be Det.
    let list = program_with(LIST, true, true);
    let report = list.analysis().expect("analysis ran");
    let elem = list.plan().lookup_impl("Cons", "elem").unwrap();
    let facts = report
        .matching_facts(elem)
        .expect("elem has matching facts");
    assert!(
        !facts.det(),
        "Cons.elem enumerates every member; Det would drop solutions: {facts:?}"
    );
}

/// The determinism commit must not change what a query returns, in any
/// execution mode: sequential, and OR-parallel at every swept thread
/// count, ordered and unordered.
#[test]
fn det_workload_agrees_across_analysis_and_thread_counts() {
    let deep = Limits {
        max_depth: 1_000_000,
        max_steps: u64::MAX,
    };
    let run = |analysis: bool| -> (Vec<String>, Vec<Vec<String>>) {
        let program = Workspace::new()
            .verify(false)
            .analysis(analysis)
            .limits(deep)
            .compile(TREE)
            .unwrap();
        let t = left_chain(&program, 300);
        let min = program.method("Node", "min").unwrap();
        let query = min.iterate(Some(&t), &Bindings::new()).unwrap();
        let fmt = |b: &Bindings| {
            let mut pairs: Vec<String> = b.iter().map(|(k, v)| format!("{k}={v}")).collect();
            pairs.sort();
            pairs.join(",")
        };
        let seq: Vec<String> = query.solutions().map(|b| fmt(&b)).collect();
        let par: Vec<Vec<String>> = thread_counts()
            .into_iter()
            .map(|t| query.par_solutions(t).map(|b| fmt(&b)).collect())
            .collect();
        (seq, par)
    };
    let (seq_on, par_on) = run(true);
    let (seq_off, par_off) = run(false);
    // `min` tries the recursive branch first, so it walks the left spine to
    // the deepest node (key 1299) — one solution, found after a full spine
    // of committed-away choice points. The local `lm` of the outermost call
    // is part of the solution row.
    assert_eq!(seq_on, vec!["lm=1299,m=1299".to_owned()]);
    assert_eq!(seq_on, seq_off, "sequential transcripts diverge");
    for (t, (a, b)) in thread_counts().into_iter().zip(par_on.iter().zip(&par_off)) {
        assert_eq!(&seq_on, a, "analyzed parallel ({t} threads) diverges");
        assert_eq!(a, b, "parallel transcripts diverge at {t} threads");
    }
}

/// The built-in corpus is lint-clean: the CI `lint-corpus` golden pins the
/// same fact through the `jmatch-lint --json` output.
#[test]
fn corpus_is_lint_clean() {
    for entry in jmatch::corpus::entries() {
        let program = program_with(&entry.combined_jmatch(), true, true);
        assert!(
            program.lints().is_empty(),
            "{}: unexpected lints: {:?}",
            entry.name,
            program.lints()
        );
    }
}
