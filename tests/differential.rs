//! Differential testing: the plan engine (resumable stack machine) versus
//! the legacy tree-walking interpreter, driven through the `Program` /
//! `Query` embedding API.
//!
//! Every corpus program is driven through both engines by the same generic
//! workload — constructions, lazy deconstruction queries (backward mode),
//! constructor predicates, the deep-equality matrix, and forward method
//! calls with synthesized arguments — and the resulting transcripts
//! (values, solution rows, enumeration order, and failures) must be
//! identical line by line. A separate test pins that both engines honor
//! the same `Limits` (the legacy `Interp::solve` honored `depth` on one
//! engine and ignored it on the other).

use jmatch::{args, Bindings, Engine, Limits, Program, Value, Workspace};

mod harness;
use harness::transcript;

fn engines_for(src: &str) -> (Program, Program) {
    let program = Workspace::new().verify(false).compile(src).unwrap();
    assert!(program.diagnostics().errors.is_empty());
    (
        program.clone().with_engine(Engine::Plan),
        program.with_engine(Engine::TreeWalk),
    )
}

#[test]
fn every_corpus_program_agrees_across_engines() {
    for entry in jmatch::corpus::entries() {
        let (plan, tree) = engines_for(&entry.combined_jmatch());
        let got = transcript(&plan);
        let want = transcript(&tree);
        // Interface-only entries (no concrete class, no free method) have
        // nothing to drive; everything else must yield a real workload.
        let has_concrete = plan
            .table()
            .types()
            .any(|t| !t.is_interface && !t.is_abstract)
            || !plan.table().free_methods().is_empty();
        if has_concrete {
            assert!(
                got.len() >= 20,
                "{}: workload too small ({} ops) to be meaningful",
                entry.name,
                got.len()
            );
            assert!(
                got.iter().any(|line| !line.ends_with("err")),
                "{}: every operation failed; the workload exercised nothing",
                entry.name
            );
        }
        assert_eq!(
            got.len(),
            want.len(),
            "{}: transcript lengths diverge",
            entry.name
        );
        for (g, w) in got.iter().zip(&want) {
            assert_eq!(g, w, "{}: engines diverge", entry.name);
        }
    }
}

#[test]
fn enumeration_order_agrees_on_iterative_formulas() {
    let src = r#"
        class Gen {
            boolean pick(int n, int x) iterates(x)
                ( x = 0 # 1 # 2 || x = n + 1 || x = n - 1 # 7 )
        }
    "#;
    let (plan, tree) = engines_for(src);
    let collect = |program: &Program| -> Vec<i64> {
        let pick = program.method("Gen", "pick").unwrap();
        let mut env = Bindings::new();
        env.insert("n".into(), Value::Int(10));
        // `pick` is an instance method, but its body only mentions `n` and
        // `x`; iterate without a receiver like the legacy `solve` test did.
        let query = pick.iterate(None, &env).unwrap();
        query
            .solutions()
            .map(|b| b["x"].as_int().unwrap())
            .collect()
    };
    let a = collect(&plan);
    let b = collect(&tree);
    assert_eq!(a, b);
    assert_eq!(a, vec![0, 1, 2, 11, 9, 7]);
}

#[test]
fn imperative_statements_agree_across_engines() {
    let src = r#"
        class Acc {
            int grind(int n) {
                int total = 0;
                int i = 0;
                while (i < n) {
                    foreach (int x = 0 # 1 # 2 # i) {
                        total = total + total + x;
                    }
                    i = i + 1;
                }
                switch (total - total) {
                    case 0: total = total + 1;
                    default: total = -1;
                }
                cond {
                    (total > 100) { return total; }
                    (total > 0)   { return total + 1000; }
                    else          { return 0 - total; }
                }
            }
        }
    "#;
    let (plan, tree) = engines_for(src);
    for n in 0..5i64 {
        let mk = |program: &Program| {
            // No constructor declared: build the instance through the
            // program (all fields Null).
            let obj = program.instance("Acc").unwrap();
            program
                .method("Acc", "grind")
                .unwrap()
                .call(Some(&obj), args![n])
        };
        let a = mk(&plan);
        let b = mk(&tree);
        assert_eq!(a.is_ok(), b.is_ok(), "n={n}");
        if let (Ok(a), Ok(b)) = (a, b) {
            assert_eq!(a, b, "n={n}");
        }
    }
}

/// A deep-recursion workload both engines can run out of budget on: `elem`
/// descends one constructor match per list cell.
const DEEP_LIST: &str = r#"
    interface IntList {
        constructor nil() returns();
        constructor cons(int h, IntList t) returns(h, t);
        boolean elem(int x) iterates(x);
    }
    class Nil implements IntList {
        constructor nil() returns() ( true )
        constructor cons(int h, IntList t) returns(h, t) ( false )
        boolean elem(int x) iterates(x) ( false )
    }
    class Cons implements IntList {
        int head;
        IntList tail;
        constructor nil() returns() ( false )
        constructor cons(int h, IntList t) returns(h, t) ( head = h && tail = t )
        boolean elem(int x) iterates(x) ( cons(x, _) || cons(_, IntList t) && t.elem(x) )
    }
"#;

fn int_list(program: &Program, n: i64) -> Value {
    let nil = program.ctor("Nil", "nil").unwrap();
    let cons = program.ctor("Cons", "cons").unwrap();
    let mut l = nil.construct(args![]).unwrap();
    for i in 0..n {
        l = cons.construct(args![i, l]).unwrap();
    }
    l
}

/// Satellite fix for the old `Interp::solve` inconsistency: the `depth`
/// parameter was honored by the tree-walker and silently ignored by the
/// plan engine. The `Query` API takes explicit `Limits` and both engines
/// must honor them: generous limits yield identical full enumerations;
/// tight limits make *both* engines stop with a `LimitExceeded` error.
#[test]
fn limits_are_honored_identically_by_both_engines() {
    use jmatch::runtime::RtErrorKind;

    let (plan, tree) = engines_for(DEEP_LIST);
    let enumerate = |program: &Program, limits: Limits| {
        let list = int_list(program, 40);
        let elem = program.method("Cons", "elem").unwrap();
        let query = elem
            .iterate(Some(&list), &Bindings::new())
            .unwrap()
            .limits(limits);
        let mut solutions = query.solutions();
        let seen: Vec<i64> = solutions
            .by_ref()
            .map(|b| b["x"].as_int().unwrap())
            .collect();
        (seen, solutions.take_error())
    };

    // Generous limits: both engines enumerate the full list identically.
    let generous = Limits::default();
    let (plan_seen, plan_err) = enumerate(&plan, generous);
    let (tree_seen, tree_err) = enumerate(&tree, generous);
    assert_eq!(plan_seen, (0..40).rev().collect::<Vec<i64>>());
    assert_eq!(plan_seen, tree_seen);
    assert!(plan_err.is_none(), "{plan_err:?}");
    assert!(tree_err.is_none(), "{tree_err:?}");

    // Tight step budget: both engines stop with a LimitExceeded error.
    let tight_steps = Limits {
        max_steps: 50,
        ..Limits::default()
    };
    for (name, program) in [("plan", &plan), ("tree", &tree)] {
        let (seen, err) = enumerate(program, tight_steps);
        assert!(
            seen.len() < 40,
            "{name}: step budget did not cut the enumeration short"
        );
        let err = err.unwrap_or_else(|| panic!("{name}: no limit error"));
        assert!(
            matches!(&err.kind, RtErrorKind::LimitExceeded { resource, .. } if resource == "steps"),
            "{name}: {err:?}"
        );
    }

    // Tight depth ceiling: both engines stop with a LimitExceeded error.
    let tight_depth = Limits {
        max_depth: 5,
        ..Limits::default()
    };
    for (name, program) in [("plan", &plan), ("tree", &tree)] {
        let (seen, err) = enumerate(program, tight_depth);
        assert!(
            seen.len() < 40,
            "{name}: depth ceiling did not cut the enumeration short"
        );
        let err = err.unwrap_or_else(|| panic!("{name}: no limit error"));
        assert!(
            matches!(&err.kind, RtErrorKind::LimitExceeded { resource, .. } if resource == "depth"),
            "{name}: {err:?}"
        );
    }

    // Deconstruction queries honor limits too (the plan engine used to have
    // a fixed internal ceiling only). Step *units* are engine-specific, so
    // the budget is chosen below what either engine needs for one row.
    let tight_call = Limits {
        max_steps: 1,
        ..Limits::default()
    };
    for (name, program) in [("plan", &plan), ("tree", &tree)] {
        let list = int_list(program, 10);
        let err = program
            .deconstruct(&list, "cons")
            .unwrap()
            .limits(tight_call)
            .try_collect()
            .unwrap_err();
        assert!(
            matches!(&err.kind, RtErrorKind::LimitExceeded { .. }),
            "{name}: {err:?}"
        );
    }
}
