//! Differential testing: the plan evaluator versus the legacy tree-walking
//! interpreter.
//!
//! Every corpus program is driven through both engines by the same generic
//! workload — constructions, deconstructions (backward mode), constructor
//! predicates, the deep-equality matrix, and forward method calls with
//! synthesized arguments — and the resulting transcripts (values, solution
//! rows, enumeration order, and failures) must be identical line by line.

use jmatch::core::table::ClassTable;
use jmatch::core::{compile, CompileOptions};
use jmatch::runtime::{Bindings, Engine, Interp, Value};
use jmatch::syntax::ast::{MethodKind, Type};

const MAX_POOL: usize = 24;

/// Deterministically synthesizes an argument of the given type: small
/// integers by round, the most recently constructed suitable object for
/// reference types, `null` when nothing fits.
fn synth(ty: &Type, round: i64, pool: &[Value], table: &ClassTable) -> Value {
    match ty {
        Type::Int => Value::Int(round),
        Type::Boolean => Value::Bool(round % 2 == 0),
        Type::Named(t) => pool
            .iter()
            .rev()
            .find(|v| v.class().map(|c| table.is_subtype(c, t)).unwrap_or(false))
            .cloned()
            .unwrap_or(Value::Null),
        Type::Object => pool.last().cloned().unwrap_or(Value::Null),
        _ => Value::Null,
    }
}

fn row_text(rows: &[Vec<Value>]) -> String {
    rows.iter()
        .map(|r| {
            let cells: Vec<String> = r.iter().map(Value::to_string).collect();
            format!("[{}]", cells.join(","))
        })
        .collect::<Vec<_>>()
        .join(";")
}

/// Runs the generic workload, recording every operation and its outcome.
fn transcript(interp: &Interp) -> Vec<String> {
    let table = interp.table();
    let mut log = Vec::new();
    let mut pool: Vec<Value> = Vec::new();

    // Phase 1: construct instances of every concrete class with every
    // constructor, three rounds deep so recursive structures build up.
    let classes: Vec<String> = table
        .types()
        .filter(|t| !t.is_interface && !t.is_abstract)
        .map(|t| t.name.clone())
        .collect();
    for round in 0..3i64 {
        for class in &classes {
            let ctors: Vec<_> = table
                .type_info(class)
                .unwrap()
                .methods
                .iter()
                .filter(|m| m.decl.kind != MethodKind::Method)
                .map(|m| (m.decl.name.clone(), m.decl.params.clone()))
                .collect();
            for (ctor, params) in ctors {
                let args: Vec<Value> = params
                    .iter()
                    .map(|p| synth(&p.ty, round, &pool, table))
                    .collect();
                match interp.construct(class, &ctor, args) {
                    Ok(v) => {
                        log.push(format!("construct {class}.{ctor} r{round} -> {v}"));
                        if matches!(v, Value::Obj(_)) && pool.len() < MAX_POOL {
                            pool.push(v);
                        }
                    }
                    Err(_) => log.push(format!("construct {class}.{ctor} r{round} -> err")),
                }
            }
        }
    }

    // Phase 2: backward mode — deconstruct every pooled value with every
    // named constructor, capturing solution rows in enumeration order, and
    // probe the constructor predicates.
    let mut ctor_names: Vec<String> = Vec::new();
    for t in table.types() {
        for m in &t.methods {
            if m.decl.kind == MethodKind::NamedConstructor && !ctor_names.contains(&m.decl.name) {
                ctor_names.push(m.decl.name.clone());
            }
        }
    }
    for (i, v) in pool.iter().enumerate() {
        for name in &ctor_names {
            match interp.deconstruct(v, name) {
                Ok(rows) => log.push(format!("deconstruct #{i} {name} -> {}", row_text(&rows))),
                Err(_) => log.push(format!("deconstruct #{i} {name} -> err")),
            }
            match interp.matches_constructor(v, name) {
                Ok(b) => log.push(format!("matches #{i} {name} -> {b}")),
                Err(_) => log.push(format!("matches #{i} {name} -> err")),
            }
        }
    }

    // Phase 3: the deep-equality matrix (exercises equality constructors
    // across implementations, §3.2).
    for i in 0..pool.len() {
        for j in 0..pool.len() {
            match interp.values_equal(&pool[i], &pool[j]) {
                Ok(b) => log.push(format!("equal #{i} #{j} -> {b}")),
                Err(_) => log.push(format!("equal #{i} #{j} -> err")),
            }
        }
    }

    // Phase 4: forward mode — every (ordinary) method reachable from each
    // pooled value, with synthesized arguments.
    for (i, v) in pool.iter().enumerate() {
        let Some(class) = v.class().map(str::to_owned) else {
            continue;
        };
        let mut names: Vec<(String, Vec<Type>)> = Vec::new();
        collect_methods(table, &class, &mut names);
        for (name, param_tys) in names {
            for round in 0..2i64 {
                let args: Vec<Value> = param_tys
                    .iter()
                    .map(|t| synth(t, round, &pool, table))
                    .collect();
                match interp.call_method(v, &name, args) {
                    Ok(out) => log.push(format!("call #{i}.{name} r{round} -> {out}")),
                    Err(_) => log.push(format!("call #{i}.{name} r{round} -> err")),
                }
            }
        }
    }

    // Phase 5: free-standing methods.
    let free: Vec<(String, Vec<Type>)> = table
        .free_methods()
        .iter()
        .map(|m| {
            (
                m.decl.name.clone(),
                m.decl.params.iter().map(|p| p.ty.clone()).collect(),
            )
        })
        .collect();
    for (name, param_tys) in free {
        for round in 0..3i64 {
            let args: Vec<Value> = param_tys
                .iter()
                .map(|t| synth(t, round, &pool, table))
                .collect();
            match interp.call_free(&name, args) {
                Ok(out) => log.push(format!("free {name} r{round} -> {out}")),
                Err(_) => log.push(format!("free {name} r{round} -> err")),
            }
        }
    }
    log
}

/// Ordinary methods visible on a class (the class itself, then supertypes).
fn collect_methods(table: &ClassTable, ty: &str, out: &mut Vec<(String, Vec<Type>)>) {
    let Some(info) = table.type_info(ty) else {
        return;
    };
    for m in &info.methods {
        if m.decl.kind == MethodKind::Method && !out.iter().any(|(n, _)| n == &m.decl.name) {
            out.push((
                m.decl.name.clone(),
                m.decl.params.iter().map(|p| p.ty.clone()).collect(),
            ));
        }
    }
    for sup in &info.supertypes {
        collect_methods(table, sup, out);
    }
}

fn engines_for(src: &str) -> (Interp, Interp) {
    let compiled = compile(
        src,
        &CompileOptions {
            verify: false,
            ..CompileOptions::default()
        },
    )
    .unwrap();
    (
        Interp::with_engine(compiled.table.clone(), Engine::Plan),
        Interp::with_engine(compiled.table.clone(), Engine::TreeWalk),
    )
}

#[test]
fn every_corpus_program_agrees_across_engines() {
    for entry in jmatch::corpus::entries() {
        let (plan, tree) = engines_for(&entry.combined_jmatch());
        let got = transcript(&plan);
        let want = transcript(&tree);
        // Interface-only entries (no concrete class, no free method) have
        // nothing to drive; everything else must yield a real workload.
        let has_concrete = plan
            .table()
            .types()
            .any(|t| !t.is_interface && !t.is_abstract)
            || !plan.table().free_methods().is_empty();
        if has_concrete {
            assert!(
                got.len() >= 20,
                "{}: workload too small ({} ops) to be meaningful",
                entry.name,
                got.len()
            );
            assert!(
                got.iter().any(|line| !line.ends_with("err")),
                "{}: every operation failed; the workload exercised nothing",
                entry.name
            );
        }
        assert_eq!(
            got.len(),
            want.len(),
            "{}: transcript lengths diverge",
            entry.name
        );
        for (g, w) in got.iter().zip(&want) {
            assert_eq!(g, w, "{}: engines diverge", entry.name);
        }
    }
}

#[test]
fn enumeration_order_agrees_on_iterative_formulas() {
    let src = r#"
        class Gen {
            boolean pick(int n, int x) iterates(x)
                ( x = 0 # 1 # 2 || x = n + 1 || x = n - 1 # 7 )
        }
    "#;
    let (plan, tree) = engines_for(src);
    let collect = |interp: &Interp| -> Vec<i64> {
        let table = interp.table();
        let m = table.lookup_method("Gen", "pick").unwrap().clone();
        let jmatch::syntax::ast::MethodBody::Formula(f) = &m.decl.body else {
            panic!()
        };
        let mut env = Bindings::new();
        env.insert("n".into(), Value::Int(10));
        let mut seen = Vec::new();
        interp
            .solve(&env, None, f, 0, &mut |b| {
                seen.push(b.get("x").and_then(|v| v.as_int()).unwrap());
                true
            })
            .unwrap();
        seen
    };
    let a = collect(&plan);
    let b = collect(&tree);
    assert_eq!(a, b);
    assert_eq!(a, vec![0, 1, 2, 11, 9, 7]);
}

#[test]
fn imperative_statements_agree_across_engines() {
    let src = r#"
        class Acc {
            int grind(int n) {
                int total = 0;
                int i = 0;
                while (i < n) {
                    foreach (int x = 0 # 1 # 2 # i) {
                        total = total + total + x;
                    }
                    i = i + 1;
                }
                switch (total - total) {
                    case 0: total = total + 1;
                    default: total = -1;
                }
                cond {
                    (total > 100) { return total; }
                    (total > 0)   { return total + 1000; }
                    else          { return 0 - total; }
                }
            }
        }
    "#;
    let (plan, tree) = engines_for(src);
    for n in 0..5i64 {
        let mk = |interp: &Interp| {
            let obj = {
                // No constructor declared: build the instance by hand.
                use std::collections::HashMap;
                use std::sync::Arc;
                Value::Obj(Arc::new(jmatch::runtime::Object {
                    class: "Acc".into(),
                    fields: HashMap::new(),
                }))
            };
            interp.call_method(&obj, "grind", vec![Value::Int(n)])
        };
        let a = mk(&plan);
        let b = mk(&tree);
        assert_eq!(a.is_ok(), b.is_ok(), "n={n}");
        if let (Ok(a), Ok(b)) = (a, b) {
            assert_eq!(a, b, "n={n}");
        }
    }
}
