//! Golden-text tests for the bytecode disassembler.
//!
//! The disassembly is a public, stable surface (`Program::disasm`): these
//! pins catch accidental changes to instruction selection — a lost
//! superinstruction, a regressed unify-mode analysis, or a switch that
//! stopped compiling to a jump table shows up as a text diff here long
//! before it shows up on a benchmark.

use jmatch::corpus;
use jmatch::Workspace;

fn program(src: &str) -> jmatch::Program {
    Workspace::new().verify(false).compile(src).expect("parse")
}

/// `ZNat.succ` is Figure 3's binary-representation successor: one body,
/// two mode-specialized forms. The pins document what the static unify-mode
/// analysis is expected to prove — forward mode knows `val` and emits a
/// match-eval unification (`me`: solve the pattern side against the
/// evaluated right side); matching mode cannot direct the same equation
/// statically and keeps it dynamic (`dyn`).
#[test]
fn znat_succ_disassembles_to_pinned_text() {
    let entry = corpus::entry("ZNat").unwrap();
    let program = program(entry.jmatch_source);
    let text = program.disasm(Some("ZNat"), "succ").unwrap();
    // Note every `-> next` address is smaller than the pc holding it: the
    // threaded form is emitted right-to-left, which is what lets both
    // engines chase continuations inline without a termination check.
    let expected = "\
; ZNat.succ [forward]
entry: 2
   0: emit
   1: cmp val@2 >= 1 -> 0
   2: unify.me ZNat((val@2 - 1)) = n@0 -> 1
; ZNat.succ [matching]
entry: 2
   0: emit
   1: unify.dyn ZNat((val@2 - 1)) = n@0 -> 0
   2: cmp val@2 >= 1 -> 1
";
    assert_eq!(text, expected, "ZNat.succ bytecode drifted:\n{text}");
}

#[test]
fn arrlist_tocons_block_disassembles_to_pinned_text() {
    let entry = corpus::entry("ArrList").unwrap();
    let mut src = String::new();
    for dep in entry.jmatch_deps {
        src.push_str(dep);
    }
    src.push_str(entry.jmatch_source);
    let program = program(&src);
    let text = program.disasm(Some("ArrList"), "toCons").unwrap();
    // The body is the corpus's hot imperative shape: the two declarations
    // fall back to statement plans, then the `while` becomes a native
    // counted loop — condition as a fused compare-and-branch, accumulator
    // and index as register arithmetic, and only the constructor call
    // leaving the register file.
    let expected = "\
; ArrList.toCons [block]
regs: 3  guards: 1
   0: stmt#0
   1: stmt#1
   2: guard 0 = 0
   3: r0 = slot 2 (i)
   4: r1 = slot 3 (count)
   5: if !(r0 < r1) jmp 15
   6: r1 = eval elems@5[i@2]
   7: r2 = slot 0 (out)
   8: r0 = call plan#15 (r1..+2)
   9: slot 0 = r0
  10: r1 = slot 2 (i)
  11: r2 = const 1
  12: r0 = r1 + r2
  13: slot 2 = r0
  14: loop 3 (guard 0)
  15: r0 = slot 0 (out)
  16: ret r0
  17: end
";
    assert_eq!(text, expected, "ArrList.toCons bytecode drifted:\n{text}");
}

#[test]
fn disasm_is_empty_without_bytecode() {
    let entry = corpus::entry("ZNat").unwrap();
    let program = Workspace::new()
        .verify(false)
        .bytecode(false)
        .compile(entry.jmatch_source)
        .expect("parse");
    assert!(program.disasm(Some("ZNat"), "succ").unwrap().is_empty());
    assert!(program.disasm(None, "plus").unwrap().is_empty());
}
