//! Integration tests spanning the whole pipeline: parse → resolve → verify →
//! run, on the paper's examples.

use jmatch::core::{compile, CompileOptions, WarningKind};
use jmatch::runtime::{Interp, Value};

#[test]
fn figure1_plus_compiles_verifies_and_runs() {
    let entry = jmatch::corpus::entry("ZNat").unwrap();
    let compiled = compile(&entry.combined_jmatch(), &CompileOptions::default()).unwrap();
    assert!(compiled.diagnostics.errors.is_empty());
    assert!(!compiled.diagnostics.has_warning(WarningKind::NonExhaustive));
    assert!(!compiled.diagnostics.has_warning(WarningKind::RedundantArm));

    let interp = Interp::new(compiled.table.clone());
    let mut four = interp.construct("ZNat", "zero", vec![]).unwrap();
    for _ in 0..4 {
        four = interp.construct("ZNat", "succ", vec![four]).unwrap();
    }
    let mut one = interp.construct("ZNat", "zero", vec![]).unwrap();
    one = interp.construct("ZNat", "succ", vec![one]).unwrap();
    let five = interp.call_free("plus", vec![four, one]).unwrap();
    let as_int = interp.call_method(&five, "toInt", vec![]).unwrap();
    assert_eq!(as_int, Value::Int(5));
}

#[test]
fn figure6_redundancy_is_detected_end_to_end() {
    let nat = jmatch::corpus::jmatch::NAT_INTERFACE;
    let src = format!(
        "{nat}
         static int classify(Nat n) {{
             switch (n) {{
                 case succ(Nat p): return 1;
                 case succ(succ(Nat pp)): return 2;
                 case zero(): return 0;
             }}
         }}"
    );
    let compiled = compile(&src, &CompileOptions::default()).unwrap();
    let redundant = compiled.diagnostics.warnings_of(WarningKind::RedundantArm);
    assert_eq!(redundant.len(), 1);
    assert!(redundant[0].message.contains("arm 2"));
}

#[test]
fn equality_constructors_bridge_implementations() {
    let entry = jmatch::corpus::entry("ZNat").unwrap();
    let mut src = entry.combined_jmatch();
    src.push_str(jmatch::corpus::jmatch::PZERO);
    src.push_str(jmatch::corpus::jmatch::PSUCC);
    let compiled = compile(
        &src,
        &CompileOptions {
            verify: false,
            ..CompileOptions::default()
        },
    )
    .unwrap();
    let interp = Interp::new(compiled.table.clone());
    let z2 = {
        let mut v = interp.construct("ZNat", "zero", vec![]).unwrap();
        for _ in 0..2 {
            v = interp.construct("ZNat", "succ", vec![v]).unwrap();
        }
        v
    };
    let p2 = {
        let z = interp.construct("PZero", "zero", vec![]).unwrap();
        let one = interp.construct("PSucc", "succ", vec![z]).unwrap();
        interp.construct("PSucc", "succ", vec![one]).unwrap()
    };
    assert!(interp.values_equal(&z2, &p2).unwrap());
}

#[test]
fn whole_corpus_compiles_with_verification() {
    for entry in jmatch::corpus::entries() {
        let compiled = compile(
            &entry.combined_jmatch(),
            &CompileOptions {
                verify: true,
                max_expansion_depth: 2,
            },
        )
        .unwrap_or_else(|e| panic!("{}: {e}", entry.name));
        assert!(
            compiled.diagnostics.errors.is_empty(),
            "{}: {:?}",
            entry.name,
            compiled.diagnostics.errors
        );
    }
}

#[test]
fn verification_uses_the_smt_substrate() {
    // A direct sanity check that the exhaustiveness verdicts really come from
    // the SMT solver: an unsatisfiable arithmetic guard makes an arm
    // redundant.
    let src = "
        class C {
            int f(int x) {
                cond {
                    (x >= 0) { return 1; }
                    (x < 0 && x > 0) { return 2; }
                    else { return 3; }
                }
            }
        }
    ";
    let compiled = compile(src, &CompileOptions::default()).unwrap();
    assert!(compiled.diagnostics.has_warning(WarningKind::RedundantArm));
}
