//! Integration tests spanning the whole pipeline: parse → resolve → verify →
//! run, on the paper's examples, through the `Workspace` / `Program`
//! embedding API.

use jmatch::core::WarningKind;
use jmatch::{args, Value, Workspace};

#[test]
fn figure1_plus_compiles_verifies_and_runs() {
    let entry = jmatch::corpus::entry("ZNat").unwrap();
    let program = Workspace::new()
        .verify(true)
        .compile(&entry.combined_jmatch())
        .unwrap();
    assert!(program.diagnostics().errors.is_empty());
    assert!(!program
        .diagnostics()
        .has_warning(WarningKind::NonExhaustive));
    assert!(!program.diagnostics().has_warning(WarningKind::RedundantArm));

    let zero = program.ctor("ZNat", "zero").unwrap();
    let succ = program.ctor("ZNat", "succ").unwrap();
    let mut four = zero.construct(args![]).unwrap();
    for _ in 0..4 {
        four = succ.construct(args![four]).unwrap();
    }
    let one = succ
        .construct(args![zero.construct(args![]).unwrap()])
        .unwrap();
    let five = program
        .free_method("plus")
        .unwrap()
        .call(None, args![four, one])
        .unwrap();
    let as_int = program
        .method("ZNat", "toInt")
        .unwrap()
        .call(Some(&five), args![])
        .unwrap();
    assert_eq!(as_int, Value::Int(5));
}

#[test]
fn figure6_redundancy_is_detected_end_to_end() {
    let nat = jmatch::corpus::jmatch::NAT_INTERFACE;
    let src = format!(
        "{nat}
         static int classify(Nat n) {{
             switch (n) {{
                 case succ(Nat p): return 1;
                 case succ(succ(Nat pp)): return 2;
                 case zero(): return 0;
             }}
         }}"
    );
    let program = Workspace::new().compile(&src).unwrap();
    let redundant = program.diagnostics().warnings_of(WarningKind::RedundantArm);
    assert_eq!(redundant.len(), 1);
    assert!(redundant[0].message.contains("arm 2"));
}

#[test]
fn equality_constructors_bridge_implementations() {
    let entry = jmatch::corpus::entry("ZNat").unwrap();
    let mut src = entry.combined_jmatch();
    src.push_str(jmatch::corpus::jmatch::PZERO);
    src.push_str(jmatch::corpus::jmatch::PSUCC);
    let program = Workspace::new().verify(false).compile(&src).unwrap();
    let z2 = {
        let zero = program.ctor("ZNat", "zero").unwrap();
        let succ = program.ctor("ZNat", "succ").unwrap();
        let mut v = zero.construct(args![]).unwrap();
        for _ in 0..2 {
            v = succ.construct(args![v]).unwrap();
        }
        v
    };
    let p2 = {
        let z = program
            .ctor("PZero", "zero")
            .unwrap()
            .construct(args![])
            .unwrap();
        let succ = program.ctor("PSucc", "succ").unwrap();
        let one = succ.construct(args![z]).unwrap();
        succ.construct(args![one]).unwrap()
    };
    assert!(program.values_equal(&z2, &p2).unwrap());
}

#[test]
fn whole_corpus_compiles_with_verification() {
    for entry in jmatch::corpus::entries() {
        let program = Workspace::new()
            .verify(true)
            .max_expansion_depth(2)
            .compile(&entry.combined_jmatch())
            .unwrap_or_else(|e| panic!("{}: {e}", entry.name));
        assert!(
            program.diagnostics().errors.is_empty(),
            "{}: {:?}",
            entry.name,
            program.diagnostics().errors
        );
    }
}

#[test]
fn verification_uses_the_smt_substrate() {
    // A direct sanity check that the exhaustiveness verdicts really come from
    // the SMT solver: an unsatisfiable arithmetic guard makes an arm
    // redundant.
    let src = "
        class C {
            int f(int x) {
                cond {
                    (x >= 0) { return 1; }
                    (x < 0 && x > 0) { return 2; }
                    else { return 3; }
                }
            }
        }
    ";
    let program = Workspace::new().compile(src).unwrap();
    assert!(program.diagnostics().has_warning(WarningKind::RedundantArm));
}
