//! Deterministic chaos tests of the `jmatch-serve` fault-tolerance
//! machinery: seeded fault injection (request panics, worker panics,
//! solver stalls, slow writes) driven through real connections, with
//! three invariants checked throughout —
//!
//! 1. **no hangs**: every request is answered (a result frame or a
//!    structured error frame), and the server shuts down cleanly;
//! 2. **no leaks**: all server threads (workers, respawned workers,
//!    readers, writers, supervisor, watchdog) are joined on shutdown;
//! 3. **quota conservation**: once no grants are in flight, every
//!    tenant satisfies `reserved == spent + refunded` — each admission
//!    settles or refunds exactly once, even when the request panicked,
//!    timed out, or its connection was convicted as a slow consumer.

use jmatch::runtime::serve::json::Json;
use jmatch::runtime::serve::proto::bindings_to_json;
use jmatch::runtime::serve::{Client, FaultConfig, QueryOptions, RetryPolicy, ServeConfig, Server};
use jmatch::{Bindings, Value, Workspace};
use std::time::Duration;

const SMALL_SRC: &str = "\
static boolean below(int n, int x) iterates(x) ( x = 0 || x = 1 || x = 2 )
static int add(int a, int b) { return a + b; }
";

/// A generator with `n` solutions, each echoing the `tag` input binding —
/// with a fat tag, enough wire bytes to park a writer behind a consumer
/// that never reads.
fn wide_src(n: usize) -> String {
    let opts: Vec<String> = (0..n).map(|i| format!("x = {i}")).collect();
    format!(
        "static boolean wide(string tag, int x) iterates(x) ( {} )",
        opts.join(" || ")
    )
}

fn test_config() -> ServeConfig {
    ServeConfig {
        addr: "127.0.0.1:0".into(),
        ..ServeConfig::default()
    }
}

fn boot(config: ServeConfig) -> (Server, Client) {
    let server = Server::start(config).expect("server start");
    let client = Client::connect(server.local_addr()).expect("client connect");
    (server, client)
}

fn compile_ok(client: &mut Client, source: &str) -> String {
    let reply = client.compile(source, false).expect("compile round-trip");
    assert_eq!(
        reply.get("ok"),
        Some(&Json::Bool(true)),
        "compile failed: {reply}"
    );
    reply
        .get("program")
        .and_then(Json::as_str)
        .expect("compile reply carries the program key")
        .to_owned()
}

fn error_kind_of(frame: &Json) -> &str {
    assert_eq!(
        frame.get("ok"),
        Some(&Json::Bool(false)),
        "expected an error frame, got: {frame}"
    );
    frame
        .get("error")
        .and_then(|e| e.get("kind"))
        .and_then(Json::as_str)
        .expect("error frames carry a kind")
}

/// The sequential embedding-API oracle for `below` with `n = 3`.
fn below_oracle() -> Vec<Json> {
    let program = Workspace::new().verify(false).compile(SMALL_SRC).unwrap();
    let mut known = Bindings::new();
    known.insert("n".into(), Value::Int(3));
    program
        .free_method("below")
        .unwrap()
        .iterate(None, &known)
        .unwrap()
        .try_collect()
        .unwrap()
        .iter()
        .map(bindings_to_json)
        .collect()
}

/// Waits for in-flight grants to settle, then asserts the conservation
/// invariant for every tenant the server has seen.
fn assert_quota_conserved(server: &Server) {
    for _ in 0..500 {
        if server
            .quotas()
            .snapshot()
            .iter()
            .all(|t| t.outstanding == 0)
        {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    for t in server.quotas().snapshot() {
        assert_eq!(
            t.outstanding, 0,
            "tenant `{}` still has grants in flight",
            t.tenant
        );
        assert_eq!(
            t.reserved,
            t.spent + t.refunded,
            "tenant `{}` violates settle-or-refund-exactly-once: \
             reserved {} != spent {} + refunded {}",
            t.tenant,
            t.reserved,
            t.spent,
            t.refunded
        );
    }
}

#[cfg(target_os = "linux")]
fn live_threads() -> usize {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("Threads:"))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|n| n.parse().ok())
        })
        .unwrap_or(0)
}

/// Retrying settle check: other tests in this binary run concurrently
/// with their own transient servers, so the count must *stop exceeding*
/// the baseline, not match it instantaneously.
#[cfg(target_os = "linux")]
fn assert_threads_settle(baseline: usize, what: &str) {
    for _ in 0..250 {
        if live_threads() <= baseline {
            return;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    panic!(
        "{what}: thread count stuck at {} (baseline {baseline}) — server threads leaked",
        live_threads()
    );
}

// ---------------------------------------------------------------------------
// Panic isolation
// ---------------------------------------------------------------------------

/// Injected request-execution panics are caught and answered as
/// `internal-error` frames; every clean reply stays transcript-identical
/// to the oracle, and the panicked requests' grants refund.
#[test]
fn panicking_requests_become_error_frames_and_clean_replies_match_the_oracle() {
    #[cfg(target_os = "linux")]
    let baseline = live_threads();
    let config = ServeConfig {
        workers: 2,
        batch_max: 1,
        faults: Some(FaultConfig {
            seed: 0xC4A0_57E5,
            panic_request: 0.3,
            ..FaultConfig::default()
        }),
        ..test_config()
    };
    let (server, mut client) = boot(config);
    let key = compile_ok(&mut client, SMALL_SRC);
    let expected = below_oracle();

    let mut options = QueryOptions::new(&key, "below");
    options.known = vec![("n".into(), Value::Int(3))];
    let (mut clean, mut panicked) = (0u64, 0u64);
    for _ in 0..40 {
        let reply = client.query(&options).expect("query round-trip");
        if reply.get("ok") == Some(&Json::Bool(true)) {
            assert_eq!(
                reply.get("solutions").and_then(Json::as_arr),
                Some(&expected[..]),
                "a clean reply diverged from the oracle under fault injection"
            );
            clean += 1;
        } else {
            assert_eq!(error_kind_of(&reply), "internal-error");
            panicked += 1;
        }
    }
    assert!(clean > 0, "no request survived a 0.3 panic rate");
    assert!(panicked > 0, "a 0.3 panic rate never fired in 40 requests");
    assert!(server.metrics().panics >= panicked);

    assert_quota_conserved(&server);
    server.shutdown();
    #[cfg(target_os = "linux")]
    assert_threads_settle(baseline, "request-panic chaos");
}

/// Workers that die between jobs are respawned by the supervisor, and no
/// queued request is lost to the death.
#[test]
fn between_job_worker_panics_are_respawned_without_losing_requests() {
    #[cfg(target_os = "linux")]
    let baseline = live_threads();
    let config = ServeConfig {
        workers: 2,
        faults: Some(FaultConfig {
            seed: 0x5EED_0002,
            panic_worker: 0.2,
            ..FaultConfig::default()
        }),
        ..test_config()
    };
    let (server, mut client) = boot(config);
    let key = compile_ok(&mut client, SMALL_SRC);

    // Between-job panics never hold a request, so every call completes —
    // at worst it waits out a supervisor respawn tick.
    for _ in 0..40 {
        let reply = client
            .call("default", &key, "add", &[Value::Int(20), Value::Int(22)])
            .expect("call round-trip");
        assert_eq!(reply.get("value"), Some(&Json::Int(42)), "{reply}");
    }
    assert!(
        server.metrics().worker_respawns > 0,
        "a 0.2 worker-panic rate never fired across 40 requests"
    );

    assert_quota_conserved(&server);
    server.shutdown();
    #[cfg(target_os = "linux")]
    assert_threads_settle(baseline, "worker-respawn chaos");
}

// ---------------------------------------------------------------------------
// Deadlines
// ---------------------------------------------------------------------------

/// A stalled worker makes the deadline deterministic: the watchdog fires
/// the cancel token while the job is queued/stalled, and pickup answers
/// `deadline-exceeded` with a retry hint — for collect queries, calls,
/// and streams alike. The expired requests' grants refund in full.
#[test]
fn deadlines_fire_under_stall_and_answer_retryable_deadline_exceeded() {
    #[cfg(target_os = "linux")]
    let baseline = live_threads();
    let config = ServeConfig {
        workers: 1,
        faults: Some(FaultConfig {
            seed: 0x5EED_0003,
            stall: 1.0,
            stall_ms: 120,
            ..FaultConfig::default()
        }),
        ..test_config()
    };
    let (server, mut client) = boot(config);
    let key = compile_ok(&mut client, SMALL_SRC);

    // Collect query: stalled 120ms, deadline 25ms — expired at pickup.
    let mut options = QueryOptions::new(&key, "below");
    options.known = vec![("n".into(), Value::Int(3))];
    options.deadline_ms = Some(25);
    let reply = client.query(&options).expect("query round-trip");
    assert_eq!(error_kind_of(&reply), "deadline-exceeded");
    assert!(
        reply
            .get("error")
            .and_then(|e| e.get("retry_after_ms"))
            .and_then(Json::as_i64)
            .is_some_and(|ms| ms > 0),
        "deadline-exceeded must carry a retry hint: {reply}"
    );

    // Forward call with a deadline: same verdict.
    let reply = client
        .call_with_deadline("default", &key, "add", &[Value::Int(1), Value::Int(2)], 25)
        .expect("call round-trip");
    assert_eq!(error_kind_of(&reply), "deadline-exceeded");

    // Stream: the deadline verdict arrives as the stream's reply frame.
    let id = client.start_stream(&options, 1).expect("start stream");
    let reply = client.recv().expect("stream verdict");
    assert_eq!(reply.get("id"), Some(&Json::Int(id)));
    assert_eq!(error_kind_of(&reply), "deadline-exceeded");

    // Without a deadline the same stalled worker still answers.
    options.deadline_ms = None;
    let reply = client.query(&options).expect("query round-trip");
    assert_eq!(reply.get("ok"), Some(&Json::Bool(true)), "{reply}");

    assert!(server.metrics().deadline_exceeded >= 3);
    assert_quota_conserved(&server);
    server.shutdown();
    #[cfg(target_os = "linux")]
    assert_threads_settle(baseline, "deadline chaos");
}

// ---------------------------------------------------------------------------
// Backpressure: slow consumers
// ---------------------------------------------------------------------------

/// A consumer that never reads its stream is convicted at the send-queue
/// high-water mark and disconnected; other connections stay served, and
/// the convicted stream's grant settles.
#[test]
fn slow_consumers_are_disconnected_and_spare_other_connections() {
    #[cfg(target_os = "linux")]
    let baseline = live_threads();
    let config = ServeConfig {
        workers: 2,
        send_queue_depth: 2,
        send_queue_wait_ms: 50,
        ..test_config()
    };
    let (server, mut client) = boot(config);
    // ~1200 solutions, each echoing a 16 KiB binding (~20 MB of wire
    // bytes): far more than the loopback socket buffers plus a 2-frame
    // send queue can absorb.
    let key = compile_ok(&mut client, &wide_src(1200));

    let victim = {
        let mut victim = Client::connect(server.local_addr()).expect("victim connect");
        let mut opts = QueryOptions::new(&key, "wide");
        opts.tenant = "sluggish".into();
        opts.known = vec![("tag".into(), Value::Str("t".repeat(16 * 1024)))];
        victim.start_stream(&opts, 1).expect("start stream");
        victim // held open, never read: the writer must convict it.
    };

    // The server convicts the slow consumer within the high-water window.
    let mut convicted = false;
    for _ in 0..400 {
        if server.metrics().slow_consumer_disconnects >= 1 {
            convicted = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(convicted, "slow consumer was never disconnected");

    // A healthy connection is unaffected, before and after the verdict.
    let mut opts = QueryOptions::new(&key, "wide");
    opts.tenant = "healthy".into();
    opts.known = vec![("tag".into(), Value::Str("s".into()))];
    let reply = client.query(&opts).expect("healthy query");
    assert_eq!(reply.get("ok"), Some(&Json::Bool(true)), "{reply}");

    // The convicted stream's grant settled (or refunded) exactly once.
    assert_quota_conserved(&server);
    drop(victim);
    server.shutdown();
    #[cfg(target_os = "linux")]
    assert_threads_settle(baseline, "slow-consumer chaos");
}

// ---------------------------------------------------------------------------
// The full chaos mix
// ---------------------------------------------------------------------------

/// Every fault class at once, against concurrent retrying clients that
/// reconnect when their connection is killed: no request hangs, every
/// clean reply is transcript-identical to the oracle, every error is one
/// of the structured kinds, and quota conservation holds at the end.
#[test]
fn chaos_mix_preserves_transcripts_and_conserves_quota() {
    #[cfg(target_os = "linux")]
    let baseline = live_threads();
    let config = ServeConfig {
        workers: 3,
        batch_max: 1,
        faults: Some(FaultConfig {
            seed: 0xD15E_A5E0,
            panic_request: 0.08,
            panic_worker: 0.05,
            slow_write: 0.10,
            slow_write_ms: 5,
            stall: 0.10,
            stall_ms: 10,
            truncate: 0.03,
        }),
        ..test_config()
    };
    let (server, mut setup) = boot(config);
    let key = compile_ok(&mut setup, SMALL_SRC);
    let expected = below_oracle();
    let addr = server.local_addr();

    let outcomes: Vec<(u64, u64)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4u64)
            .map(|worker| {
                let key = key.clone();
                let expected = expected.clone();
                scope.spawn(move || {
                    let policy = RetryPolicy {
                        max_attempts: 4,
                        base_delay_ms: 5,
                        max_delay_ms: 50,
                        seed: 0xBAD5_EED0 + worker,
                    };
                    let mut options = QueryOptions::new(&key, "below");
                    options.tenant = format!("chaos-{worker}");
                    options.known = vec![("n".into(), Value::Int(3))];
                    options.deadline_ms = Some(2_000);
                    let (mut ok, mut errors) = (0u64, 0u64);
                    let mut session: Option<Client> = None;
                    for i in 0..16 {
                        if session.is_none() {
                            match Client::connect(addr) {
                                Ok(fresh) => session = Some(fresh),
                                Err(_) => {
                                    std::thread::sleep(Duration::from_millis(10));
                                    continue;
                                }
                            }
                        }
                        let client = session.as_mut().expect("session established");
                        let outcome = if i % 2 == 0 {
                            client.call_with_retry(
                                &format!("chaos-{worker}"),
                                &key,
                                "add",
                                &[Value::Int(20), Value::Int(22)],
                                &policy,
                            )
                        } else {
                            client.query_with_retry(&options, &policy)
                        };
                        let reply = match outcome {
                            Ok(reply) => reply,
                            Err(_) => {
                                // Truncation or conviction killed the
                                // connection; reconnect and move on.
                                session = None;
                                continue;
                            }
                        };
                        if reply.get("ok") == Some(&Json::Bool(true)) {
                            if i % 2 == 0 {
                                assert_eq!(
                                    reply.get("value"),
                                    Some(&Json::Int(42)),
                                    "chaos corrupted a clean call reply"
                                );
                            } else {
                                assert_eq!(
                                    reply.get("solutions").and_then(Json::as_arr),
                                    Some(&expected[..]),
                                    "chaos corrupted a clean query reply"
                                );
                            }
                            ok += 1;
                        } else {
                            let kind = error_kind_of(&reply);
                            assert!(
                                matches!(
                                    kind,
                                    "internal-error"
                                        | "deadline-exceeded"
                                        | "cancelled"
                                        | "over-capacity"
                                        | "quota-exhausted"
                                ),
                                "unstructured failure under chaos: {reply}"
                            );
                            errors += 1;
                        }
                    }
                    (ok, errors)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("chaos client thread"))
            .collect()
    });

    let total_ok: u64 = outcomes.iter().map(|(ok, _)| ok).sum();
    assert!(
        total_ok > 0,
        "no request ever succeeded under the chaos mix"
    );

    assert_quota_conserved(&server);
    server.shutdown();
    #[cfg(target_os = "linux")]
    assert_threads_settle(baseline, "full chaos mix");
}
