//! Shared differential-testing harness: a generic workload that drives a
//! compiled [`Program`] through constructions, lazy deconstruction
//! queries, constructor predicates, the deep-equality matrix, and forward
//! calls with synthesized arguments, recording every operation and its
//! outcome as a transcript line. Two programs agree iff their transcripts
//! are identical line by line — `tests/differential.rs` compares engines,
//! `tests/analysis_differential.rs` compares analyzed vs unanalyzed plans.

use jmatch::core::table::ClassTable;
use jmatch::syntax::ast::{MethodKind, Type};
use jmatch::{Program, Value};

const MAX_POOL: usize = 24;

/// Deterministically synthesizes an argument of the given type: small
/// integers by round, the most recently constructed suitable object for
/// reference types, `null` when nothing fits.
fn synth(ty: &Type, round: i64, pool: &[Value], table: &ClassTable) -> Value {
    match ty {
        Type::Int => Value::Int(round),
        Type::Boolean => Value::Bool(round % 2 == 0),
        Type::Named(t) => pool
            .iter()
            .rev()
            .find(|v| v.class().map(|c| table.is_subtype(c, t)).unwrap_or(false))
            .cloned()
            .unwrap_or(Value::Null),
        Type::Object => pool.last().cloned().unwrap_or(Value::Null),
        _ => Value::Null,
    }
}

fn row_text(rows: &[Vec<Value>]) -> String {
    rows.iter()
        .map(|r| {
            let cells: Vec<String> = r.iter().map(Value::to_string).collect();
            format!("[{}]", cells.join(","))
        })
        .collect::<Vec<_>>()
        .join(";")
}

/// Deconstructs `v` through the query API, as ordered rows.
fn deconstruct_rows(program: &Program, v: &Value, ctor: &str) -> Result<Vec<Vec<Value>>, ()> {
    program
        .deconstruct(v, ctor)
        .and_then(|q| q.try_collect_rows())
        .map_err(|_| ())
}

/// Runs the generic workload, recording every operation and its outcome.
pub fn transcript(program: &Program) -> Vec<String> {
    let table = &**program.table();
    let mut log = Vec::new();
    let mut pool: Vec<Value> = Vec::new();

    // Phase 1: construct instances of every concrete class with every
    // constructor, three rounds deep so recursive structures build up.
    let classes: Vec<String> = table
        .types()
        .filter(|t| !t.is_interface && !t.is_abstract)
        .map(|t| t.name.clone())
        .collect();
    for round in 0..3i64 {
        for class in &classes {
            let ctors: Vec<_> = table
                .type_info(class)
                .unwrap()
                .methods
                .iter()
                .filter(|m| m.decl.kind != MethodKind::Method)
                .map(|m| (m.decl.name.clone(), m.decl.params.clone()))
                .collect();
            for (ctor, params) in ctors {
                let arg_values: Vec<Value> = params
                    .iter()
                    .map(|p| synth(&p.ty, round, &pool, table))
                    .collect();
                let outcome = program
                    .ctor(class, &ctor)
                    .and_then(|c| c.construct(arg_values));
                match outcome {
                    Ok(v) => {
                        log.push(format!("construct {class}.{ctor} r{round} -> {v}"));
                        if matches!(v, Value::Obj(_)) && pool.len() < MAX_POOL {
                            pool.push(v);
                        }
                    }
                    Err(_) => log.push(format!("construct {class}.{ctor} r{round} -> err")),
                }
            }
        }
    }

    // Phase 2: backward mode — deconstruct every pooled value with every
    // named constructor through the lazy query API, capturing solution rows
    // in enumeration order, and probe the constructor predicates.
    let mut ctor_names: Vec<String> = Vec::new();
    for t in table.types() {
        for m in &t.methods {
            if m.decl.kind == MethodKind::NamedConstructor && !ctor_names.contains(&m.decl.name) {
                ctor_names.push(m.decl.name.clone());
            }
        }
    }
    for (i, v) in pool.iter().enumerate() {
        for name in &ctor_names {
            match deconstruct_rows(program, v, name) {
                Ok(rows) => log.push(format!("deconstruct #{i} {name} -> {}", row_text(&rows))),
                Err(()) => log.push(format!("deconstruct #{i} {name} -> err")),
            }
            match program.matches(v, name) {
                Ok(b) => log.push(format!("matches #{i} {name} -> {b}")),
                Err(_) => log.push(format!("matches #{i} {name} -> err")),
            }
        }
    }

    // Phase 3: the deep-equality matrix (exercises equality constructors
    // across implementations, §3.2).
    for i in 0..pool.len() {
        for j in 0..pool.len() {
            match program.values_equal(&pool[i], &pool[j]) {
                Ok(b) => log.push(format!("equal #{i} #{j} -> {b}")),
                Err(_) => log.push(format!("equal #{i} #{j} -> err")),
            }
        }
    }

    // Phase 4: forward mode — every (ordinary) method reachable from each
    // pooled value through a resolved `MethodRef`, with synthesized
    // arguments.
    for (i, v) in pool.iter().enumerate() {
        let Some(class) = v.class().map(str::to_owned) else {
            continue;
        };
        let mut names: Vec<(String, Vec<Type>)> = Vec::new();
        collect_methods(table, &class, &mut names);
        for (name, param_tys) in names {
            for round in 0..2i64 {
                let arg_values: Vec<Value> = param_tys
                    .iter()
                    .map(|t| synth(t, round, &pool, table))
                    .collect();
                let outcome = program
                    .method(&class, &name)
                    .and_then(|m| m.call(Some(v), arg_values));
                match outcome {
                    Ok(out) => log.push(format!("call #{i}.{name} r{round} -> {out}")),
                    Err(_) => log.push(format!("call #{i}.{name} r{round} -> err")),
                }
            }
        }
    }

    // Phase 5: free-standing methods.
    let free: Vec<(String, Vec<Type>)> = table
        .free_methods()
        .iter()
        .map(|m| {
            (
                m.decl.name.clone(),
                m.decl.params.iter().map(|p| p.ty.clone()).collect(),
            )
        })
        .collect();
    for (name, param_tys) in free {
        for round in 0..3i64 {
            let arg_values: Vec<Value> = param_tys
                .iter()
                .map(|t| synth(t, round, &pool, table))
                .collect();
            let outcome = program
                .free_method(&name)
                .and_then(|m| m.call(None, arg_values));
            match outcome {
                Ok(out) => log.push(format!("free {name} r{round} -> {out}")),
                Err(_) => log.push(format!("free {name} r{round} -> err")),
            }
        }
    }
    log
}

/// Ordinary methods visible on a class (the class itself, then supertypes).
fn collect_methods(table: &ClassTable, ty: &str, out: &mut Vec<(String, Vec<Type>)>) {
    let Some(info) = table.type_info(ty) else {
        return;
    };
    for m in &info.methods {
        if m.decl.kind == MethodKind::Method && !out.iter().any(|(n, _)| n == &m.decl.name) {
            out.push((
                m.decl.name.clone(),
                m.decl.params.iter().map(|p| p.ty.clone()).collect(),
            ));
        }
    }
    for sup in &info.supertypes {
        collect_methods(table, sup, out);
    }
}
