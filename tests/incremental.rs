//! Differential testing of the incremental rebuild path: a long-lived
//! [`Workspace`] driven through scripted edits must be indistinguishable
//! from compiling each edited source from scratch — identical diagnostics
//! (order included) and identical harness transcripts on both engines —
//! while its rebuild report proves the incremental path did strictly less
//! work (only the edited method re-verified, zero solver queries on
//! no-op edits).
//!
//! The scripted edits cover the red/green matrix: body-only change,
//! signature change, method add and remove, and an edit that introduces
//! and then fixes a verification warning. A final test pins that parallel
//! verification is deterministic: 1, 2, and 8 workers produce the same
//! diagnostics in the same order.

use jmatch::{Engine, Generation, Program, Workspace};

mod harness;
use harness::transcript;

/// The scripted-edit fixture: an interface with two implementations (so
/// the verifier has real exhaustiveness work), a `switch` method whose
/// arms the edits toggle, and a trivial method the body edits target.
const BASE: &str = r#"
    interface Nat {
        invariant(this = zero() | succ(_));
        constructor zero() returns();
        constructor succ(Nat n) returns(n);
    }
    class PZero implements Nat {
        constructor zero() returns() ( true )
        constructor succ(Nat n) returns(n) ( false )
    }
    class PSucc implements Nat {
        Nat pred;
        constructor zero() returns() ( false )
        constructor succ(Nat n) returns(n) ( pred = n )
    }
    static Nat pred(Nat m) {
        switch (m) {
            case succ(Nat k): return k;
            case zero(): return m;
        }
    }
    static int answer() { return 42; }
"#;

/// Diagnostics flattened to display lines, errors first, production order
/// preserved — the unit of "identical diagnostics".
fn diag_lines(program: &Program) -> Vec<String> {
    let d = program.diagnostics();
    d.errors
        .iter()
        .map(ToString::to_string)
        .chain(d.warnings.iter().map(ToString::to_string))
        .collect()
}

/// The full-rebuild oracle: a fresh one-shot compile of the same source.
fn scratch(source: &str, verify: bool) -> Program {
    Workspace::new().verify(verify).compile(source).unwrap()
}

/// Asserts the incremental generation and a scratch build of the same
/// source are indistinguishable: same diagnostics in the same order, and
/// identical harness transcripts on both engines.
fn assert_matches_scratch(generation: &Generation, source: &str, verify: bool, label: &str) {
    let incremental = generation.program();
    let full = scratch(source, verify);
    assert_eq!(
        diag_lines(incremental),
        diag_lines(&full),
        "{label}: diagnostics diverge from a full rebuild"
    );
    for (name, engine) in [("plan", Engine::Plan), ("tree", Engine::TreeWalk)] {
        let got = transcript(&incremental.clone().with_engine(engine));
        let want = transcript(&full.clone().with_engine(engine));
        assert_eq!(
            got, want,
            "{label}: {name}-engine transcript diverges from a full rebuild"
        );
    }
}

#[test]
fn body_edit_reverifies_only_the_edited_method() {
    let mut ws = Workspace::new().verify(true);
    ws.load(BASE).unwrap();

    // A no-op edit first: everything green, not one solver query.
    let g = ws.update_source(BASE).unwrap();
    assert!(!g.report().full);
    assert_eq!(g.report().recompiled, Vec::<String>::new());
    assert_eq!(g.report().reverified, Vec::<String>::new());
    assert_eq!(
        g.report().verify_stats.solver_queries,
        0,
        "a no-op edit must answer every VC from cache"
    );
    assert_matches_scratch(&g, BASE, true, "no-op edit");

    // Body-only edit of `answer`: exactly that method re-lowers and
    // re-verifies; `pred` and every constructor stay green.
    let edited = BASE.replace("return 42;", "return 43;");
    let g = ws.update_source(&edited).unwrap();
    assert!(
        !g.report().full,
        "a body edit must not force a full rebuild"
    );
    assert_eq!(g.report().recompiled, ["<toplevel>.answer"]);
    assert_eq!(g.report().reverified, ["<toplevel>.answer"]);
    assert!(g.report().reused_verifications > 0);
    assert_matches_scratch(&g, &edited, true, "body edit");

    // The same edit through `update_method` (no full source round trip).
    let g = ws
        .update_method(None, "answer", "static int answer() { return 44; }")
        .unwrap();
    assert_eq!(g.report().recompiled, ["<toplevel>.answer"]);
    assert_eq!(g.report().reverified, ["<toplevel>.answer"]);
    let full = BASE.replace("return 42;", "return 44;");
    assert_matches_scratch(&g, &full, true, "update_method body edit");
}

#[test]
fn verification_warnings_appear_and_clear_like_a_full_rebuild() {
    let mut ws = Workspace::new().verify(true);
    let g = ws.load(BASE).unwrap();
    let clean = diag_lines(g.program());

    // Dropping the `zero()` arm makes `pred` non-exhaustive: the warning
    // must appear through the incremental path exactly as from scratch.
    let broken = BASE.replace("case zero(): return m;\n", "");
    assert_ne!(broken, BASE, "the edit script must actually edit");
    let g = ws.update_source(&broken).unwrap();
    assert!(
        g.report()
            .reverified
            .contains(&"<toplevel>.pred".to_owned()),
        "the edited method must be re-verified: {:?}",
        g.report().reverified
    );
    assert!(
        diag_lines(g.program()).len() > clean.len(),
        "the broken edit must surface a new diagnostic"
    );
    assert_matches_scratch(&g, &broken, true, "warning introduced");

    // Fixing it back clears the warning — the cached diagnostics of the
    // broken generation must not leak into the repaired one.
    let g = ws.update_source(BASE).unwrap();
    assert_eq!(diag_lines(g.program()), clean);
    assert_matches_scratch(&g, BASE, true, "warning fixed");
}

#[test]
fn structural_edits_fall_back_to_a_correct_full_rebuild() {
    let mut ws = Workspace::new().verify(true);
    ws.load(BASE).unwrap();

    // Signature change: same method count, different signature fingerprint.
    let resigned = BASE.replace(
        "static int answer() { return 42; }",
        "static int answer(int bump) { return 42 + bump; }",
    );
    let g = ws.update_source(&resigned).unwrap();
    assert!(g.report().full, "a signature change must rebuild fully");
    assert_matches_scratch(&g, &resigned, true, "signature change");

    // Method add.
    let grown = format!("{BASE}\nstatic int twice(int x) {{ return x * 2; }}");
    let g = ws.update_source(&grown).unwrap();
    assert!(g.report().full, "a method add must rebuild fully");
    assert_matches_scratch(&g, &grown, true, "method add");

    // Method remove (back to the resigned source, dropping `twice`).
    let g = ws.update_source(&resigned).unwrap();
    assert!(g.report().full, "a method remove must rebuild fully");
    assert_matches_scratch(&g, &resigned, true, "method remove");
}

/// Every corpus program, loaded and then no-op re-updated: the reused
/// generation must transcript-match a scratch build on both engines.
/// (Verification off: this pins the plan/bytecode reuse paths; the
/// verifier's incremental behavior is pinned by the tests above.)
#[test]
fn corpus_generations_survive_noop_edits_on_both_engines() {
    for entry in jmatch::corpus::entries() {
        let src = entry.combined_jmatch();
        let mut ws = Workspace::new().verify(false);
        if ws.load(&src).is_err() {
            continue; // entries that do not parse have nothing to reuse
        }
        let g = ws.update_source(&src).unwrap();
        assert!(!g.report().full, "{}: no-op edit rebuilt fully", entry.name);
        assert_eq!(
            g.report().recompiled,
            Vec::<String>::new(),
            "{}: no-op edit recompiled methods",
            entry.name
        );
        assert_matches_scratch(&g, &src, false, entry.name);
    }
}

#[test]
fn parallel_verification_is_deterministic_across_worker_counts() {
    let broken = BASE.replace("case zero(): return m;\n", "");
    let mut sources = vec![BASE.to_owned(), broken];
    // A corpus entry with real verification output, for breadth.
    if let Some(entry) = jmatch::corpus::entries().first() {
        sources.push(entry.combined_jmatch());
    }
    for src in &sources {
        let baseline = diag_lines(
            &Workspace::new()
                .verify(true)
                .verify_threads(1)
                .compile(src)
                .unwrap(),
        );
        for workers in [2, 8] {
            let got = diag_lines(
                &Workspace::new()
                    .verify(true)
                    .verify_threads(workers)
                    .compile(src)
                    .unwrap(),
            );
            assert_eq!(
                got, baseline,
                "{workers}-worker verification diverges from 1 worker"
            );
        }
    }
}
