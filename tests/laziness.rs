//! Laziness: `Solutions` is a true pull-based iterator, so taking the first
//! solution of a large enumeration does O(1) work, not O(n).
//!
//! This is the Java_yield property the paper compiles to (§2.3, §5): a
//! `foreach` over a backward-mode method yields one solution at a time and
//! can stop early. The test pins it with the solver's own step counter: the
//! iterative `elem` mode over a 10,000-element list must yield its first
//! solution within a constant step bound, while draining the enumeration
//! costs at least one step per element.

use jmatch::{args, Bindings, Engine, Limits, Program, Value, Workspace};

const LIST: &str = r#"
    interface IntList {
        constructor nil() returns();
        constructor cons(int h, IntList t) returns(h, t);
        boolean elem(int x) iterates(x);
    }
    class Nil implements IntList {
        constructor nil() returns() ( true )
        constructor cons(int h, IntList t) returns(h, t) ( false )
        boolean elem(int x) iterates(x) ( false )
    }
    class Cons implements IntList {
        int head;
        IntList tail;
        constructor nil() returns() ( false )
        constructor cons(int h, IntList t) returns(h, t) ( head = h && tail = t )
        boolean elem(int x) iterates(x) ( cons(x, _) || cons(_, IntList t) && t.elem(x) )
    }
"#;

const N: i64 = 10_000;

/// Machine steps the first `elem` solution took before the interned-symbol
/// representation landed (measured on the string-keyed layout); the step
/// count must never regress past it.
const FIRST_SOLUTION_STEPS_BASELINE: u64 = 8;

/// Generous ceilings: the machine's activation frames are heap-allocated,
/// so deep structural recursion only needs the budget raised.
const DEEP: Limits = Limits {
    max_depth: 1_000_000,
    max_steps: u64::MAX,
};

fn program() -> Program {
    Workspace::new()
        .verify(false)
        .engine(Engine::Plan)
        .limits(DEEP)
        .compile(LIST)
        .unwrap()
}

/// Runs a test body on a thread with a deep stack: a 10k-cell list is a
/// 10k-deep `Arc` chain, and *dropping* it recurses once per cell — more
/// native stack than the 2MB default of a Rust test thread.
fn with_deep_stack(f: impl FnOnce() + Send + 'static) {
    std::thread::Builder::new()
        .stack_size(256 << 20)
        .spawn(f)
        .unwrap()
        .join()
        .unwrap();
}

fn big_list(program: &Program, n: i64) -> Value {
    let nil = program.ctor("Nil", "nil").unwrap();
    let cons = program.ctor("Cons", "cons").unwrap();
    let mut l = nil.construct(args![]).unwrap();
    for i in (0..n).rev() {
        l = cons.construct(args![i, l]).unwrap();
    }
    l
}

#[test]
fn first_solution_of_a_large_enumeration_is_o1() {
    with_deep_stack(first_solution_of_a_large_enumeration_is_o1_body);
}

fn first_solution_of_a_large_enumeration_is_o1_body() {
    let program = program();
    let list = big_list(&program, N);
    let elem = program.method("Cons", "elem").unwrap();
    let query = elem.iterate(Some(&list), &Bindings::new()).unwrap();

    // Pull exactly one solution and read the machine's step counter: the
    // head element must surface without touching the other 9,999 cells.
    let mut solutions = query.solutions();
    let first = solutions.next().expect("a 10k list has a first element");
    assert_eq!(first["x"], Value::Int(0));
    let first_steps = solutions.steps().expect("plan engine reports steps");
    assert!(
        first_steps < 200,
        "first solution took {first_steps} steps; laziness is broken (O(n) work before the first yield?)"
    );
    // Pinned regression bound: the pre-interning machine reached the first
    // solution in exactly 8 steps on this workload, and the slot-indexed
    // representation must not make the first pull more expensive.
    assert!(
        first_steps <= FIRST_SOLUTION_STEPS_BASELINE,
        "first solution took {first_steps} steps; the recorded baseline is {FIRST_SOLUTION_STEPS_BASELINE}"
    );
}

/// Pins O(1) vs O(n) with the step counter on an enumeration whose
/// per-solution cost is constant: a balanced 10k-way disjunction
/// `x = 0 | x = 1 | ...` built as an AST and solved as a raw formula
/// query. (Recursive shapes like `elem` pay O(depth) *per yielded
/// solution* in every engine — solutions propagate through each ancestor
/// constructor match — so they cannot distinguish O(1) from O(n) cleanly.)
#[test]
fn full_drain_is_linear_and_first_solution_constant() {
    use jmatch::syntax::ast::{CmpOp, Expr, Formula};

    fn balanced(lo: i64, hi: i64) -> Formula {
        if lo == hi {
            Formula::Cmp(CmpOp::Eq, Expr::Var("x".into()), Expr::IntLit(lo))
        } else {
            let mid = lo + (hi - lo) / 2;
            Formula::Or(Box::new(balanced(lo, mid)), Box::new(balanced(mid + 1, hi)))
        }
    }

    let program = program();
    let f = balanced(0, N - 1);
    let query = program.solve(&f, &Bindings::new(), None);

    let mut one = query.solutions();
    assert_eq!(one.next().map(|b| b["x"].clone()), Some(Value::Int(0)));
    let first_steps = one.steps().unwrap();
    assert!(
        first_steps < 200,
        "first solution took {first_steps} steps over a 10k-way disjunction"
    );
    drop(one);

    let mut all = query.solutions();
    let count = all.by_ref().count();
    assert_eq!(count, N as usize);
    assert!(all.take_error().is_none());
    let full_steps = all.steps().unwrap();
    assert!(
        full_steps >= N as u64,
        "full enumeration took only {full_steps} steps for {N} solutions?"
    );
    assert!(
        first_steps * 50 < full_steps,
        "first={first_steps} vs full={full_steps}: not O(1) vs O(n)"
    );
}

#[test]
fn early_exit_stops_the_enumeration_midway() {
    with_deep_stack(early_exit_stops_the_enumeration_midway_body);
}

fn early_exit_stops_the_enumeration_midway_body() {
    let program = program();
    let list = big_list(&program, N);
    let elem = program.method("Cons", "elem").unwrap();
    let query = elem.iterate(Some(&list), &Bindings::new()).unwrap();

    let k = 25;
    let mut solutions = query.solutions();
    let first_k: Vec<i64> = solutions
        .by_ref()
        .take(k)
        .map(|b| b["x"].as_int().unwrap())
        .collect();
    assert_eq!(first_k, (0..k as i64).collect::<Vec<_>>());
    let steps = solutions.steps().unwrap();
    // Work scales with the number of pulled solutions, not the list length.
    assert!(
        steps < 100 * k as u64,
        "taking {k} solutions took {steps} steps"
    );
}

/// The bounded tree-walker adapter is lazy too (it can only run one
/// solution ahead of the consumer), it just cannot report step counts.
#[test]
fn tree_adapter_streams_without_draining() {
    let program = program().with_engine(Engine::TreeWalk);
    // Keep the list small: the legacy engine recurses natively per cell.
    let list = big_list(&program, 500);
    let elem = program.method("Cons", "elem").unwrap();
    let query = elem.iterate(Some(&list), &Bindings::new()).unwrap();
    let first: Vec<i64> = query
        .solutions()
        .take(3)
        .map(|b| b["x"].as_int().unwrap())
        .collect();
    assert_eq!(first, vec![0, 1, 2]);
}

/// Re-pins the first-solution step count on the *bytecode* machine against
/// the goal-tree machine: the threaded form chases deterministic
/// continuations inline within one machine step, so it must reach the
/// first `elem` solution in no more steps than the tree walk — and neither
/// form may regress the pre-interning 8-step baseline. (Measured after the
/// bytecode landing: both forms take exactly 8 steps — the choice-point
/// structure is identical, and each resumption boundary costs one step
/// either way.)
#[test]
fn bytecode_machine_first_solution_matches_the_pin() {
    with_deep_stack(bytecode_machine_first_solution_matches_the_pin_body);
}

fn bytecode_machine_first_solution_matches_the_pin_body() {
    let first_steps = |bytecode: bool| {
        let program = Workspace::new()
            .verify(false)
            .engine(Engine::Plan)
            .bytecode(bytecode)
            .limits(DEEP)
            .compile(LIST)
            .unwrap();
        let list = big_list(&program, N);
        let elem = program.method("Cons", "elem").unwrap();
        let query = elem.iterate(Some(&list), &Bindings::new()).unwrap();
        let mut solutions = query.solutions();
        let first = solutions.next().expect("a 10k list has a first element");
        assert_eq!(first["x"], Value::Int(0));
        solutions.steps().expect("plan engine reports steps")
    };
    let bc = first_steps(true);
    let tree = first_steps(false);
    assert!(
        bc <= tree,
        "bytecode first solution took {bc} steps vs {tree} on the goal tree"
    );
    assert!(
        bc <= FIRST_SOLUTION_STEPS_BASELINE && tree <= FIRST_SOLUTION_STEPS_BASELINE,
        "first solution took {bc} (bytecode) / {tree} (tree) steps; \
         the recorded baseline is {FIRST_SOLUTION_STEPS_BASELINE}"
    );
}

/// A workload the analysis pass proves deterministic: `min` over a binary
/// tree. Each call's two body branches are guarded by disjoint constructor
/// shapes, so every matching mode is at-most-one and error-free, and the
/// machine commits (discards the pending alternative) at each level of the
/// recursion instead of keeping a choice point per node.
const TREE: &str = r#"
    interface Tree {
        constructor leaf() returns();
        constructor node(int k, Tree l, Tree r) returns(k, l, r);
        boolean min(int m) returns(m);
        boolean empty();
    }
    class Leaf implements Tree {
        constructor leaf() returns() ( true )
        constructor node(int k, Tree l, Tree r) returns(k, l, r) ( false )
        boolean min(int m) returns(m) ( false )
        boolean empty() ( true )
    }
    class Node implements Tree {
        int key;
        Tree left;
        Tree right;
        constructor leaf() returns() ( false )
        constructor node(int k, Tree l, Tree r) returns(k, l, r)
            ( key = k && left = l && right = r )
        boolean min(int m) returns(m)
            ( left.min(int lm) && m = lm || left.empty() && m = key )
        boolean empty() ( false )
    }
"#;

/// Depth of the left chain the determinism pins run on.
const CHAIN: i64 = 200;

/// Pins the determinism commit with the machine's own choice-point
/// counters: on the 200-deep left chain, the analyzed program reaches the
/// (single) solution with **zero** live choice points — every disjunction
/// was committed away — while the unanalyzed oracle still holds one pending
/// alternative per spine node. Everything observable (solution rows, step
/// counts, choice points *created*) is identical, so the commit only
/// reclaims memory; it never changes execution.
#[test]
fn det_modes_commit_their_choice_points() {
    let run = |analysis: bool| {
        let program = Workspace::new()
            .verify(false)
            .engine(Engine::Plan)
            .analysis(analysis)
            .limits(DEEP)
            .compile(TREE)
            .unwrap();
        let leaf = program.ctor("Leaf", "leaf").unwrap();
        let node = program.ctor("Node", "node").unwrap();
        let mut t = leaf.construct(args![]).unwrap();
        for i in (0..CHAIN).rev() {
            let sibling = leaf.construct(args![]).unwrap();
            t = node.construct(args![i + 1000, t, sibling]).unwrap();
        }
        let min = program.method("Node", "min").unwrap();
        let query = min.iterate(Some(&t), &Bindings::new()).unwrap();
        let mut solutions = query.solutions();
        let first = solutions.next().expect("min has a solution");
        assert_eq!(first["m"], Value::Int(1000 + CHAIN - 1));
        (
            solutions.choice_points().expect("plan engine reports them"),
            solutions.choice_points_created().expect("created count"),
            solutions.steps().expect("step count"),
        )
    };
    let (live_on, created_on, steps_on) = run(true);
    let (live_off, created_off, steps_off) = run(false);

    // The observable work is identical either way…
    assert_eq!(created_on, created_off, "commit must not skip exploration");
    assert_eq!(steps_on, steps_off, "commit must not change the step count");
    assert_eq!(
        created_on, CHAIN as u64,
        "one disjunction is explored per spine node"
    );

    // …but the analyzed machine holds no live choice points at the
    // solution, where the oracle still holds one per spine node above the
    // deepest call.
    assert_eq!(
        live_on, 0,
        "every det form should have committed its alternatives"
    );
    assert_eq!(
        live_off,
        (CHAIN - 1) as usize,
        "the unanalyzed oracle keeps a pending alternative per spine node"
    );
}
