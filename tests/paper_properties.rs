//! Property-style integration tests over the core data structures and the
//! paper's headline guarantees.
//!
//! The input domains are small enough to enumerate exhaustively, so instead
//! of sampling them with a property-testing framework these tests sweep every
//! case deterministically (a strict superset of what random sampling covers).

use jmatch::core::table::ClassTable;
use jmatch::core::{compile, extract, CompileOptions, Diagnostics};
use jmatch::smt::{SatResult, Solver, Sort, TermStore};
use jmatch::syntax::parse_formula;

/// The SMT substrate agrees with a brute-force evaluation on small bounded
/// integer formulas: for every (a, b, c) in the grid, `-4 <= x <= 4 &&
/// x + a <= b && x != c` is satisfiable exactly when brute force finds a
/// witness, and any model the solver produces really is one.
#[test]
fn smt_agrees_with_bruteforce() {
    for a in -4i64..4 {
        for b in -4i64..4 {
            for c in -4i64..4 {
                let mut store = TermStore::new();
                let mut solver = Solver::new();
                let x = store.var("x", Sort::Int);
                let lo = store.int(-4);
                let hi = store.int(4);
                let ge = store.ge(x, lo);
                let le = store.le(x, hi);
                solver.assert_formula(&store, ge);
                solver.assert_formula(&store, le);
                let ca = store.int(a);
                let cb = store.int(b);
                let cc = store.int(c);
                let xa = store.add(x, ca);
                let f1 = store.le(xa, cb);
                let f2 = store.neq(x, cc);
                solver.assert_formula(&store, f1);
                solver.assert_formula(&store, f2);
                let expected = (-4..=4).any(|v| v + a <= b && v != c);
                match solver.check(&mut store) {
                    SatResult::Sat(m) => {
                        assert!(
                            expected,
                            "({a},{b},{c}): solver found a model but brute force says unsat"
                        );
                        let v = m.eval_int(&store, x);
                        assert!(
                            v + a <= b && v != c && (-4..=4).contains(&v),
                            "({a},{b},{c}): model value {v} violates the constraints"
                        );
                    }
                    SatResult::Unsat => {
                        assert!(
                            !expected,
                            "({a},{b},{c}): solver says unsat but a witness exists"
                        )
                    }
                    SatResult::Unknown => {}
                }
            }
        }
    }
}

/// Matching-precondition extraction never mentions dropped unknowns: the
/// extracted formula for a mode only refers to knowns and solvable unknowns.
#[test]
fn extraction_is_over_knowns() {
    for bound in 0i64..10 {
        let mut diags = Diagnostics::new();
        let program = jmatch::syntax::parse_program("").unwrap();
        let table = ClassTable::build(&program, &mut diags);
        let clause = parse_formula(&format!("n >= {bound} && k < n")).unwrap();
        // Mode where only `result` is known: both atoms mention unknowns that
        // cannot be solved, so everything is dropped.
        let e = extract(
            &table,
            &clause,
            &["result".into()],
            &["n".into(), "k".into()],
        );
        assert_eq!(format!("{:?}", e.formula), "Bool(true)");
        // Mode where n is known: the bound survives, `k < n` is dropped.
        let e2 = extract(&table, &clause, &["n".into()], &["k".into()]);
        let text = format!("{:?}", e2.formula);
        assert!(text.contains("Ge"), "{text}");
        assert!(!text.contains("Lt"), "{text}");
    }
}

#[test]
fn verification_is_deterministic() {
    // Two runs over the same corpus entry produce identical warnings.
    let entry = jmatch::corpus::entry("ConsList").unwrap();
    let run = || {
        compile(
            &entry.combined_jmatch(),
            &CompileOptions {
                verify: true,
                max_expansion_depth: 2,
            },
        )
        .unwrap()
        .diagnostics
    };
    let a = run();
    let b = run();
    assert_eq!(a, b);
}
