//! OR-parallel enumeration versus the sequential machine.
//!
//! The work-stealing executor behind `Query::par_solutions` /
//! `Query::par_solutions_unordered` must be observationally faithful to
//! the sequential stack machine:
//!
//! * **ordered mode** reproduces the exact sequential solution *sequence*
//!   (and error placement) on every corpus program and on dedicated
//!   branchy workloads, at every thread count;
//! * **unordered mode** reproduces the solution *multiset*;
//! * the shared step budget makes parallel runs error with
//!   `LimitExceeded` whenever the sequential run does, and generous
//!   budgets change nothing;
//! * dropping a stream mid-enumeration (parallel pool or the tree
//!   engine's producer thread) deterministically joins its workers.
//!
//! The thread counts swept come from `JMATCH_PAR_THREADS` when set (the
//! CI `parallel-stress` matrix pins 1, 2, and 8), defaulting to all of
//! {1, 2, 8} locally.

use jmatch::runtime::{RtError, RtErrorKind};
use jmatch::syntax::ast::MethodKind;
use jmatch::{Bindings, Engine, Limits, Program, Query, Solutions, Value, Workspace};

fn thread_counts() -> Vec<usize> {
    match std::env::var("JMATCH_PAR_THREADS") {
        Ok(v) => vec![v
            .parse()
            .expect("JMATCH_PAR_THREADS must be a thread count")],
        Err(_) => vec![1, 2, 8],
    }
}

/// Canonical text of one solution, stable across engines and runs.
fn fmt_bindings(b: &Bindings) -> String {
    let mut pairs: Vec<String> = b.iter().map(|(k, v)| format!("{k}={v}")).collect();
    pairs.sort();
    pairs.join(",")
}

/// Drains a stream into (solution texts in order, terminating error).
fn drain(mut s: Solutions<'_>) -> (Vec<String>, Option<RtError>) {
    let items: Vec<String> = s.by_ref().map(|b| fmt_bindings(&b)).collect();
    (items, s.take_error())
}

fn sorted(mut v: Vec<String>) -> Vec<String> {
    v.sort();
    v
}

/// Asserts the parallel modes of `query` agree with its sequential
/// enumeration at every swept thread count.
fn assert_parallel_faithful(query: &Query<'_>, what: &str) {
    let (seq, seq_err) = drain(query.solutions());
    for t in thread_counts() {
        let (ord, ord_err) = drain(query.par_solutions(t));
        assert_eq!(
            seq, ord,
            "{what}: ordered parallel ({t} threads) diverges from sequential order"
        );
        match (&seq_err, &ord_err) {
            (None, None) => {}
            (Some(a), Some(b)) => assert_eq!(
                a, b,
                "{what}: ordered parallel ({t} threads) surfaces a different error"
            ),
            _ => panic!(
                "{what}: error presence diverges ({t} threads): \
                 sequential {seq_err:?} vs ordered {ord_err:?}"
            ),
        }
        let (unord, unord_err) = drain(query.par_solutions_unordered(t));
        if seq_err.is_none() {
            assert_eq!(
                sorted(seq.clone()),
                sorted(unord),
                "{what}: unordered parallel ({t} threads) diverges as a multiset"
            );
            assert!(
                unord_err.is_none(),
                "{what}: unordered parallel ({t} threads) errored where sequential did not: \
                 {unord_err:?}"
            );
        } else {
            // Unordered mode races solutions against the failure, so only
            // the *presence* of an error is deterministic.
            assert!(
                unord_err.is_some(),
                "{what}: unordered parallel ({t} threads) missed the sequential error {seq_err:?}"
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Whole-corpus sweep
// ---------------------------------------------------------------------------

/// Every backward-mode (deconstruction) query of every corpus program:
/// ordered-mode sequences and unordered-mode multisets must match the
/// sequential machine exactly.
#[test]
fn corpus_deconstructions_agree_with_sequential() {
    for entry in jmatch::corpus::entries() {
        let program = Workspace::new()
            .verify(false)
            .compile(&entry.combined_jmatch())
            .unwrap();
        assert!(program.diagnostics().errors.is_empty(), "{}", entry.name);
        let pool = build_pool(&program);
        let ctors = named_constructors(&program);
        for (i, v) in pool.iter().enumerate() {
            for ctor in &ctors {
                let Ok(query) = program.deconstruct(v, ctor) else {
                    // Unresolvable queries fail identically before any
                    // engine (sequential or parallel) is involved.
                    continue;
                };
                assert_parallel_faithful(&query, &format!("{} #{i} {ctor}", entry.name));
            }
        }
    }
}

/// Deterministically builds a pool of corpus objects, like the
/// differential test's construction phase.
fn build_pool(program: &Program) -> Vec<Value> {
    use jmatch::core::table::ClassTable;
    use jmatch::syntax::ast::Type;

    fn synth(ty: &Type, round: i64, pool: &[Value], table: &ClassTable) -> Value {
        match ty {
            Type::Int => Value::Int(round),
            Type::Boolean => Value::Bool(round % 2 == 0),
            Type::Named(t) => pool
                .iter()
                .rev()
                .find(|v| v.class().map(|c| table.is_subtype(c, t)).unwrap_or(false))
                .cloned()
                .unwrap_or(Value::Null),
            Type::Object => pool.last().cloned().unwrap_or(Value::Null),
            _ => Value::Null,
        }
    }

    let table = &**program.table();
    let mut pool: Vec<Value> = Vec::new();
    let classes: Vec<String> = table
        .types()
        .filter(|t| !t.is_interface && !t.is_abstract)
        .map(|t| t.name.clone())
        .collect();
    for round in 0..3i64 {
        for class in &classes {
            let ctors: Vec<_> = table
                .type_info(class)
                .unwrap()
                .methods
                .iter()
                .filter(|m| m.decl.kind != MethodKind::Method)
                .map(|m| (m.decl.name.clone(), m.decl.params.clone()))
                .collect();
            for (ctor, params) in ctors {
                let arg_values: Vec<Value> = params
                    .iter()
                    .map(|p| synth(&p.ty, round, &pool, table))
                    .collect();
                if let Ok(v) = program
                    .ctor(class, &ctor)
                    .and_then(|c| c.construct(arg_values))
                {
                    if matches!(v, Value::Obj(_)) && pool.len() < 24 {
                        pool.push(v);
                    }
                }
            }
        }
    }
    pool
}

fn named_constructors(program: &Program) -> Vec<String> {
    let mut out: Vec<String> = Vec::new();
    for t in program.table().types() {
        for m in &t.methods {
            if m.decl.kind == MethodKind::NamedConstructor && !out.contains(&m.decl.name) {
                out.push(m.decl.name.clone());
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Branchy workloads
// ---------------------------------------------------------------------------

/// The balanced binary enumeration workload, shared with the
/// `parallel_scaling` bench (`jmatch_bench::parallel_program`): `vals`
/// yields every leaf left-to-right, so the choice tree is a complete
/// binary tree — the shape work stealing splits best.
fn tree_program() -> Program {
    jmatch_bench::parallel_program()
}

fn complete_tree(program: &Program, depth: u32, base: i64) -> Value {
    jmatch_bench::parallel_tree_from(program, depth, base)
}

fn vals_method(program: &Program) -> jmatch::MethodRef {
    program.method("Node", "vals").unwrap()
}

fn vals_query<'p>(vals: &'p jmatch::MethodRef, tree: &Value) -> Query<'p> {
    vals.iterate(Some(tree), &Bindings::new()).unwrap()
}

/// Ordered mode reproduces the exact left-to-right leaf order of a
/// 2^10-leaf enumeration; unordered reproduces the multiset.
#[test]
fn tree_enumeration_is_faithful_at_every_thread_count() {
    let program = tree_program();
    let vals = vals_method(&program);
    let tree = complete_tree(&program, 10, 0);
    let query = vals_query(&vals, &tree);
    // The sequential order is the in-order leaf walk.
    let mut solutions = query.solutions();
    let xs: Vec<i64> = solutions
        .by_ref()
        .map(|b| b["x"].as_int().unwrap())
        .collect();
    let err = solutions.take_error();
    assert!(err.is_none(), "{err:?}");
    assert_eq!(xs, (0..1 << 10).collect::<Vec<i64>>());
    assert_parallel_faithful(&query, "tree vals");
}

/// Or-pattern (`#`) choice points split and replay correctly too: `pick`
/// mixes formula disjunction with or-patterns.
#[test]
fn or_pattern_choice_points_are_faithful() {
    let src = r#"
        class Gen {
            boolean pick(int n, int x) iterates(x)
                ( x = 0 # 1 # 2 || x = n + 1 || x = n - 1 # 7 )
        }
    "#;
    let program = Workspace::new().verify(false).compile(src).unwrap();
    let gen = program.instance("Gen").unwrap();
    let pick = program.method("Gen", "pick").unwrap();
    let mut env = Bindings::new();
    env.insert("n".into(), Value::Int(10));
    let query = pick.iterate(Some(&gen), &env).unwrap();
    let (seq, _) = drain(query.solutions());
    assert_eq!(
        seq,
        vec![
            "n=10,x=0",
            "n=10,x=1",
            "n=10,x=2",
            "n=10,x=11",
            "n=10,x=9",
            "n=10,x=7"
        ]
    );
    assert_parallel_faithful(&query, "pick");
}

// ---------------------------------------------------------------------------
// Shared budgets
// ---------------------------------------------------------------------------

/// The shared step pool makes every parallel mode error with
/// `LimitExceeded` exactly when the sequential machine does: a budget the
/// sequential run exceeds is a fortiori exceeded by the combined parallel
/// work, and a generous budget changes nothing.
#[test]
fn shared_budget_trips_exactly_when_sequential_does() {
    let program = tree_program();
    let vals = vals_method(&program);
    let tree = complete_tree(&program, 8, 0);

    // Measure the sequential step cost of the full enumeration.
    let query = vals_query(&vals, &tree);
    let mut solutions = query.solutions();
    let n = solutions.by_ref().count();
    assert_eq!(n, 1 << 8);
    assert!(solutions.take_error().is_none());
    let seq_steps = solutions.steps().expect("machine reports steps");

    // A budget the sequential run exceeds: every mode, every thread count
    // must stop with a steps LimitExceeded.
    let tight = Limits {
        max_steps: seq_steps / 2,
        ..Limits::default()
    };
    let tight_query = vals_query(&vals, &tree).limits(tight);
    let (_, seq_err) = drain(tight_query.solutions());
    let seq_err = seq_err.expect("sequential run must exceed the tight budget");
    assert!(
        matches!(&seq_err.kind, RtErrorKind::LimitExceeded { resource, .. } if resource == "steps"),
        "{seq_err:?}"
    );
    for t in thread_counts() {
        for (mode, stream) in [
            ("ordered", tight_query.par_solutions(t)),
            ("unordered", tight_query.par_solutions_unordered(t)),
        ] {
            let (_, err) = drain(stream);
            let err = err.unwrap_or_else(|| {
                panic!("{mode} parallel ({t} threads) finished under a budget sequential exceeds")
            });
            assert!(
                matches!(
                    &err.kind,
                    RtErrorKind::LimitExceeded { resource, .. } if resource == "steps"
                ),
                "{mode} ({t} threads): {err:?}"
            );
        }
    }

    // Tight depth ceilings are per-derivation and trip identically.
    let shallow = Limits {
        max_depth: 3,
        ..Limits::default()
    };
    let shallow_query = vals_query(&vals, &tree).limits(shallow);
    let (_, seq_err) = drain(shallow_query.solutions());
    assert!(
        matches!(
            seq_err.as_ref().map(|e| &e.kind),
            Some(RtErrorKind::LimitExceeded { resource, .. }) if resource == "depth"
        ),
        "{seq_err:?}"
    );
    for t in thread_counts() {
        let (_, err) = drain(shallow_query.par_solutions(t));
        assert!(
            matches!(
                err.as_ref().map(|e| &e.kind),
                Some(RtErrorKind::LimitExceeded { resource, .. }) if resource == "depth"
            ),
            "ordered ({t} threads): {err:?}"
        );
    }

    // A generous budget: parallel runs complete and agree (parallel replay
    // costs extra steps, so "generous" means a real margin, not seq_steps).
    let generous = Limits {
        max_steps: seq_steps * 64,
        ..Limits::default()
    };
    let generous_query = vals_query(&vals, &tree).limits(generous);
    assert_parallel_faithful(&generous_query, "tree vals under a generous shared budget");
}

// ---------------------------------------------------------------------------
// Deterministic shutdown
// ---------------------------------------------------------------------------

#[cfg(target_os = "linux")]
fn live_threads() -> usize {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("Threads:"))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|n| n.parse().ok())
        })
        .unwrap_or(0)
}

/// Asserts the process thread count settles back to (at most) `baseline`.
/// Other tests in this binary run concurrently and may hold their own
/// transient pools, so the check retries instead of sampling once — what
/// must hold is that *our* workers are gone, i.e. the count stops
/// exceeding the baseline once the racing tests' threads drain too.
#[cfg(target_os = "linux")]
fn assert_threads_settle(baseline: usize, what: &str) {
    for _ in 0..250 {
        if live_threads() <= baseline {
            return;
        }
        std::thread::sleep(std::time::Duration::from_millis(20));
    }
    panic!(
        "{what}: thread count stuck at {} (baseline {baseline}) — worker threads leaked",
        live_threads()
    );
}

/// Dropping a parallel stream mid-enumeration cancels, unblocks, and joins
/// every worker before `drop` returns — no leaked pool threads.
#[test]
fn dropping_parallel_solutions_early_joins_the_pool() {
    let program = tree_program();
    let vals = vals_method(&program);
    let tree = complete_tree(&program, 12, 0);
    let query = vals_query(&vals, &tree);
    #[cfg(target_os = "linux")]
    let baseline = live_threads();
    for t in thread_counts() {
        for _ in 0..10 {
            let mut s = query.par_solutions(t);
            assert!(s.next().is_some());
            drop(s); // mid-enumeration: workers are busy and/or blocked sending
            let mut u = query.par_solutions_unordered(t);
            assert!(u.next().is_some());
            drop(u);
        }
    }
    #[cfg(target_os = "linux")]
    assert_threads_settle(baseline, "parallel pool drop");
}

/// The satellite fix: dropping a *tree-engine* `Solutions` mid-enumeration
/// must deterministically shut down and join the producer thread — the
/// bounded rendezvous channel used to leave it parked in `send` with its
/// `JoinHandle` dropped.
#[test]
fn dropping_tree_solutions_early_joins_the_producer() {
    let program = tree_program().with_engine(Engine::TreeWalk);
    let vals = vals_method(&program);
    let tree = complete_tree(&program, 10, 0);
    #[cfg(target_os = "linux")]
    let baseline = live_threads();
    for _ in 0..25 {
        let query = vals_query(&vals, &tree);
        let mut s = query.solutions();
        assert!(s.next().is_some());
        // Drop with the producer mid-enumeration (blocked in the
        // rendezvous send): this must unblock and join it.
        drop(s);
    }
    #[cfg(target_os = "linux")]
    assert_threads_settle(baseline, "tree-walker producer drop");
    // Exhausted streams join too.
    let small = complete_tree(&program, 3, 0);
    let query = vals_query(&vals, &small);
    let (seq, err) = drain(query.solutions());
    assert_eq!(seq.len(), 8);
    assert!(err.is_none());
}

// ---------------------------------------------------------------------------
// Batched entry points
// ---------------------------------------------------------------------------

/// `Program::query_many` / `MethodRef::iterate_many` return exactly what
/// the queries produce one by one, at every pool width.
#[test]
fn batched_queries_match_individual_runs() {
    let program = tree_program();
    let vals = vals_method(&program);
    let trees: Vec<Value> = (0..12)
        .map(|i| complete_tree(&program, 5, i * 100))
        .collect();
    let queries: Vec<Query<'_>> = trees.iter().map(|t| vals_query(&vals, t)).collect();
    let expected: Vec<Vec<String>> = queries
        .iter()
        .map(|q| q.try_collect().unwrap().iter().map(fmt_bindings).collect())
        .collect();
    for t in thread_counts() {
        let got = program.query_many(&queries, t);
        assert_eq!(got.len(), expected.len());
        for (g, want) in got.iter().zip(&expected) {
            let g: Vec<String> = g.as_ref().unwrap().iter().map(fmt_bindings).collect();
            assert_eq!(&g, want, "query_many diverges at {t} threads");
        }

        let calls: Vec<(Option<Value>, Bindings)> = trees
            .iter()
            .map(|tree| (Some(tree.clone()), Bindings::new()))
            .collect();
        let got = vals.iterate_many(&calls, t);
        for (g, want) in got.iter().zip(&expected) {
            let g: Vec<String> = g.as_ref().unwrap().iter().map(fmt_bindings).collect();
            assert_eq!(&g, want, "iterate_many diverges at {t} threads");
        }
    }

    // Per-call errors stay in their slot: a non-declarative method cannot
    // iterate, and the failure must not disturb the batch.
    let bad = program.method("Node", "vals").unwrap();
    let mut calls: Vec<(Option<Value>, Bindings)> = trees
        .iter()
        .take(2)
        .map(|tree| (Some(tree.clone()), Bindings::new()))
        .collect();
    calls.push((None, Bindings::new())); // no receiver: lowering still works, solving fails
    let got = bad.iterate_many(&calls, 2);
    assert_eq!(got.len(), 3);
    assert!(got[0].is_ok() && got[1].is_ok());
}

/// Parallelism is a plan-engine feature; on the tree engine
/// `par_solutions` falls back to the sequential iterator with identical
/// results.
#[test]
fn tree_engine_par_solutions_falls_back_sequential() {
    let program = tree_program().with_engine(Engine::TreeWalk);
    let vals = vals_method(&program);
    let tree = complete_tree(&program, 6, 0);
    let query = vals_query(&vals, &tree);
    let (seq, _) = drain(query.solutions());
    let (par, _) = drain(query.par_solutions(4));
    assert_eq!(seq, par);
}

// ---------------------------------------------------------------------------
// Bytecode vs goal-tree parity
// ---------------------------------------------------------------------------

/// The bytecode machine's pc-based choice saves must not change what the
/// OR-parallel executor observes. Two layers:
///
/// * on the full 4096-leaf (depth-12) tree, the sequential transcripts of
///   the bytecode and goal-tree code forms are identical — the choice
///   structure the splitter carves up is the same tree either way (the
///   replay-prefix *size* side is pinned by the machine's own
///   `bytecode_split_prefixes_match_goal_tree_prefixes` unit test);
/// * at 1, 2, and 8 threads, both code forms reproduce the sequential
///   ordered transcript and unordered multiset exactly (on a 512-leaf
///   tree, to keep the 12-way debug-mode sweep affordable).
#[test]
fn bytecode_parallel_transcripts_match_goal_tree() {
    let bc_program = tree_program();
    let plain_program = Workspace::new()
        .verify(false)
        .bytecode(false)
        .compile(jmatch_bench::PARALLEL_TREE_SOURCE)
        .unwrap();
    assert!(bc_program.plan().bytecode_enabled());
    assert!(!plain_program.plan().bytecode_enabled());
    let bc_vals = vals_method(&bc_program);
    let plain_vals = vals_method(&plain_program);

    // Depth 12: cross-form sequential parity over all 4096 leaves.
    let bc_tree = complete_tree(&bc_program, 12, 0);
    let plain_tree = complete_tree(&plain_program, 12, 0);
    let (big, big_err) = drain(vals_query(&bc_vals, &bc_tree).solutions());
    assert!(big_err.is_none(), "{big_err:?}");
    assert_eq!(big.len(), 1 << 12);
    let (plain_big, plain_err) = drain(vals_query(&plain_vals, &plain_tree).solutions());
    assert!(plain_err.is_none(), "{plain_err:?}");
    assert_eq!(
        big, plain_big,
        "sequential 4096-leaf transcripts diverge across code forms"
    );

    // Depth 9: both forms through both parallel modes at 1, 2, 8 threads.
    let bc_tree = complete_tree(&bc_program, 9, 0);
    let plain_tree = complete_tree(&plain_program, 9, 0);
    let bc_query = vals_query(&bc_vals, &bc_tree);
    let plain_query = vals_query(&plain_vals, &plain_tree);
    let (seq, seq_err) = drain(bc_query.solutions());
    assert!(seq_err.is_none(), "{seq_err:?}");
    assert_eq!(seq.len(), 1 << 9);
    for t in [1, 2, 8] {
        for (what, query) in [("bytecode", &bc_query), ("goal-tree", &plain_query)] {
            let (ord, ord_err) = drain(query.par_solutions(t));
            assert!(ord_err.is_none(), "{what} ({t} threads): {ord_err:?}");
            assert_eq!(
                ord, seq,
                "{what}: ordered parallel ({t} threads) diverges from the sequential transcript"
            );
            let (unord, unord_err) = drain(query.par_solutions_unordered(t));
            assert!(unord_err.is_none(), "{what} ({t} threads): {unord_err:?}");
            assert_eq!(
                sorted(unord),
                sorted(seq.clone()),
                "{what}: unordered parallel ({t} threads) diverges as a multiset"
            );
        }
    }
}
