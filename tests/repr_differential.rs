//! Differential sweep over representation-sensitive programs: field-heavy,
//! string-heavy, and deep-constructor workloads, machine-vs-tree.
//!
//! The interned-symbol / slot-indexed object layout must be invisible:
//! for every workload the two engines' transcripts (values, solution rows,
//! *and enumeration order*) must be identical line by line, and each
//! transcript is additionally pinned against a golden recording taken from
//! the string-keyed representation before interning landed — so a
//! representation bug cannot hide by breaking both engines the same way.

use jmatch::{args, Bindings, Engine, Program, Value, Workspace};

fn engines_for(src: &str) -> (Program, Program) {
    let program = Workspace::new().verify(false).compile(src).unwrap();
    assert!(
        program.diagnostics().errors.is_empty(),
        "{:?}",
        program.diagnostics().errors
    );
    (
        program.clone().with_engine(Engine::Plan),
        program.with_engine(Engine::TreeWalk),
    )
}

fn assert_transcripts_agree(name: &str, run: impl Fn(&Program) -> Vec<String>, golden: &[&str]) {
    let src_run = &run;
    let (plan, tree) = match name {
        "fields" => engines_for(FIELD_HEAVY),
        "strings" => engines_for(STRING_HEAVY),
        "deep" => engines_for(DEEP_CTOR),
        other => panic!("unknown workload {other}"),
    };
    let got = src_run(&plan);
    let want = src_run(&tree);
    assert_eq!(got.len(), want.len(), "{name}: transcript lengths diverge");
    for (g, w) in got.iter().zip(&want) {
        assert_eq!(g, w, "{name}: engines diverge");
    }
    let golden: Vec<String> = golden.iter().map(|s| s.to_string()).collect();
    assert_eq!(
        got, golden,
        "{name}: transcript drifted from the pre-interning recording"
    );
}

// ---------------------------------------------------------------------------
// Field-heavy
// ---------------------------------------------------------------------------

const FIELD_HEAVY: &str = r#"
    class Vec3 {
        int x;
        int y;
        int z;
        constructor of(int a, int b, int c) returns(a, b, c)
            ( x = a && y = b && z = c )
        int dot(Vec3 o) { return x * o.x + y * o.y + z * o.z; }
        int sum() { return x + y + z; }
        Vec3 scaled(int k) { return Vec3.of(x * k, y * k, z * k); }
    }
    static int frob(Vec3 a, Vec3 b, int rounds) {
        int total = 0;
        int i = 0;
        while (i < rounds) {
            total = total + a.dot(b) + a.scaled(i).sum() + b.x + b.y + b.z;
            i = i + 1;
        }
        return total;
    }
"#;

fn field_heavy_transcript(program: &Program) -> Vec<String> {
    let mut log = Vec::new();
    let of = program.ctor("Vec3", "of").unwrap();
    let a = of.construct(args![1, 2, 3]).unwrap();
    let b = of.construct(args![4, 5, 6]).unwrap();
    log.push(format!("a = {a}"));
    log.push(format!("b = {b}"));
    // Field reads through the public accessor resolve by name.
    for f in ["x", "y", "z", "nope"] {
        log.push(format!("a.{f} = {:?}", a.field(f).cloned()));
    }
    let frob = program.free_method("frob").unwrap();
    for rounds in [0i64, 1, 7] {
        let out = frob
            .call(None, args![a.clone(), b.clone(), rounds])
            .unwrap();
        log.push(format!("frob r{rounds} -> {out}"));
    }
    // Backward mode binds the constructor parameters from the field slots.
    let rows = program
        .deconstruct(&b, "of")
        .unwrap()
        .try_collect_rows()
        .unwrap();
    log.push(format!("deconstruct b -> {rows:?}"));
    // Structural equality is slot-wise.
    let b2 = of.construct(args![4, 5, 6]).unwrap();
    log.push(format!(
        "b == b2 -> {}",
        program.values_equal(&b, &b2).unwrap()
    ));
    log.push(format!(
        "a == b -> {}",
        program.values_equal(&a, &b).unwrap()
    ));
    log
}

#[test]
fn field_heavy_transcripts_agree_and_match_golden() {
    assert_transcripts_agree(
        "fields",
        field_heavy_transcript,
        &[
            "a = Vec3(x = 1, y = 2, z = 3)",
            "b = Vec3(x = 4, y = 5, z = 6)",
            "a.x = Some(Int(1))",
            "a.y = Some(Int(2))",
            "a.z = Some(Int(3))",
            "a.nope = None",
            "frob r0 -> 0",
            "frob r1 -> 47",
            "frob r7 -> 455",
            "deconstruct b -> [[Int(4), Int(5), Int(6)]]",
            "b == b2 -> true",
            "a == b -> false",
        ],
    );
}

// ---------------------------------------------------------------------------
// String-heavy
// ---------------------------------------------------------------------------

const STRING_HEAVY: &str = r#"
    class Token {
        String kind;
        String text;
        constructor of(String k, String t) returns(k, t)
            ( kind = k && text = t )
        boolean isKeyword() {
            if (kind = "kw") { return true; }
            return false;
        }
    }
    static int classify(Token t) {
        switch (t.kind) {
            case "kw": return 1;
            case "id": return 2;
            case "num": return 3;
            default: return 0;
        }
    }
"#;

fn string_heavy_transcript(program: &Program) -> Vec<String> {
    let mut log = Vec::new();
    let of = program.ctor("Token", "of").unwrap();
    let classify = program.free_method("classify").unwrap();
    let is_kw = program.method("Token", "isKeyword").unwrap();
    for (k, t) in [("kw", "while"), ("id", "total"), ("num", "42"), ("ws", " ")] {
        let tok = of.construct(args![k, t]).unwrap();
        log.push(format!("tok = {tok}"));
        log.push(format!(
            "classify({k}) -> {}",
            classify.call(None, args![tok.clone()]).unwrap()
        ));
        log.push(format!(
            "isKeyword({k}) -> {}",
            is_kw.call(Some(&tok), args![]).unwrap()
        ));
        log.push(format!("text -> {:?}", tok.field("text").cloned()));
    }
    // String-valued solution rows keep enumeration order.
    let kw = of.construct(args!["kw", "if"]).unwrap();
    let rows = program
        .deconstruct(&kw, "of")
        .unwrap()
        .try_collect_rows()
        .unwrap();
    log.push(format!("deconstruct kw -> {rows:?}"));
    log
}

#[test]
fn string_heavy_transcripts_agree_and_match_golden() {
    assert_transcripts_agree(
        "strings",
        string_heavy_transcript,
        &[
            "tok = Token(kind = \"kw\", text = \"while\")",
            "classify(kw) -> 1",
            "isKeyword(kw) -> true",
            "text -> Some(Str(\"while\"))",
            "tok = Token(kind = \"id\", text = \"total\")",
            "classify(id) -> 2",
            "isKeyword(id) -> false",
            "text -> Some(Str(\"total\"))",
            "tok = Token(kind = \"num\", text = \"42\")",
            "classify(num) -> 3",
            "isKeyword(num) -> false",
            "text -> Some(Str(\"42\"))",
            "tok = Token(kind = \"ws\", text = \" \")",
            "classify(ws) -> 0",
            "isKeyword(ws) -> false",
            "text -> Some(Str(\" \"))",
            "deconstruct kw -> [[Str(\"kw\"), Str(\"if\")]]",
        ],
    );
}

// ---------------------------------------------------------------------------
// Deep constructors
// ---------------------------------------------------------------------------

const DEEP_CTOR: &str = r#"
    interface Nat {
        constructor zero() returns();
        constructor succ(Nat n) returns(n);
    }
    class ZNat implements Nat {
        int val;
        private ZNat(int n) matches(n >= 0) returns(n) ( val = n && n >= 0 )
        constructor zero() returns() ( val = 0 )
        constructor succ(Nat n) returns(n) ( val >= 1 && ZNat(val - 1) = n )
    }
    interface IntList {
        constructor nil() returns();
        constructor cons(int h, IntList t) returns(h, t);
        boolean elem(int x) iterates(x);
    }
    class Nil implements IntList {
        constructor nil() returns() ( true )
        constructor cons(int h, IntList t) returns(h, t) ( false )
        boolean elem(int x) iterates(x) ( false )
    }
    class Cons implements IntList {
        int head;
        IntList tail;
        constructor nil() returns() ( false )
        constructor cons(int h, IntList t) returns(h, t) ( head = h && tail = t )
        boolean elem(int x) iterates(x) ( cons(x, _) || cons(_, IntList t) && t.elem(x) )
    }
    static int classify(Nat n) {
        switch (n) {
            case succ(succ(succ(Nat rest))): return 3;
            case succ(succ(Nat rest)): return 2;
            case succ(Nat rest): return 1;
            case zero(): return 0;
        }
    }
"#;

fn deep_ctor_transcript(program: &Program) -> Vec<String> {
    let mut log = Vec::new();
    let zero = program.ctor("ZNat", "zero").unwrap();
    let succ = program.ctor("ZNat", "succ").unwrap();
    let classify = program.free_method("classify").unwrap();
    let mut n = zero.construct(args![]).unwrap();
    for depth in 0..5 {
        log.push(format!(
            "classify {depth} -> {}",
            classify.call(None, args![n.clone()]).unwrap()
        ));
        n = succ.construct(args![n]).unwrap();
    }
    // Deep backward matching: peel five layers one at a time.
    let mut cur = n;
    while !program.matches(&cur, "zero").unwrap() {
        let rows = program
            .deconstruct(&cur, "succ")
            .unwrap()
            .try_collect_rows()
            .unwrap();
        assert_eq!(rows.len(), 1);
        cur = rows[0][0].clone();
        log.push(format!("peel -> {}", cur.field("val").unwrap()));
    }
    // Iterative enumeration over a deep list pins the order of solutions
    // flowing through nested constructor matches.
    let nil = program.ctor("Nil", "nil").unwrap();
    let cons = program.ctor("Cons", "cons").unwrap();
    let mut list = nil.construct(args![]).unwrap();
    for i in (0..6).rev() {
        list = cons.construct(args![i, list]).unwrap();
    }
    let elem = program.method("Cons", "elem").unwrap();
    let order: Vec<i64> = elem
        .iterate(Some(&list), &Bindings::new())
        .unwrap()
        .solutions()
        .map(|b| b["x"].as_int().unwrap())
        .collect();
    log.push(format!("elem order -> {order:?}"));
    log
}

#[test]
fn deep_constructor_transcripts_agree_and_match_golden() {
    assert_transcripts_agree(
        "deep",
        deep_ctor_transcript,
        &[
            "classify 0 -> 0",
            "classify 1 -> 1",
            "classify 2 -> 2",
            "classify 3 -> 3",
            "classify 4 -> 3",
            "peel -> 4",
            "peel -> 3",
            "peel -> 2",
            "peel -> 1",
            "peel -> 0",
            "elem order -> [0, 1, 2, 3, 4, 5]",
        ],
    );
}

/// Pointer-equal objects short-circuit deep equality even when their
/// structure would be expensive to compare; distinct-but-equal structures
/// still compare equal slot-by-slot.
#[test]
fn value_equality_short_circuits_on_identity() {
    let (plan, tree) = engines_for(DEEP_CTOR);
    for program in [plan, tree] {
        let zero = program.ctor("ZNat", "zero").unwrap();
        let succ = program.ctor("ZNat", "succ").unwrap();
        let mut a = zero.construct(args![]).unwrap();
        for _ in 0..64 {
            a = succ.construct(args![a]).unwrap();
        }
        let same = a.clone();
        // Host-level PartialEq and engine-level deep equality agree.
        assert_eq!(a, same);
        assert!(program.values_equal(&a, &same).unwrap());
        let mut b = zero.construct(args![]).unwrap();
        for _ in 0..64 {
            b = succ.construct(args![b]).unwrap();
        }
        assert_eq!(a, b);
        assert!(program.values_equal(&a, &b).unwrap());
    }
}

/// Values cross `Program` boundaries through the public API; symbols are
/// per-program, so field resolution and equality on a *foreign* object
/// must fall back to names — never trust another interner's `u32`s or
/// another layout's slot order.
#[test]
fn foreign_objects_resolve_fields_and_equality_by_name() {
    // Program A's interner assigns `secret` a symbol that program B's
    // interner assigns to `val`; B's layout for `P` also orders the shared
    // field names differently than A's.
    let a = Workspace::new()
        .verify(false)
        .compile(
            "class P { int x; int y; constructor of(int a, int b) returns(a, b) ( x = a && y = b ) }
             class Q { int secret; constructor of(int s) returns(s) ( secret = s ) }",
        )
        .unwrap();
    let b = Workspace::new()
        .verify(false)
        .compile(
            "class P { int y; int x; constructor of(int b, int a) returns(b, a) ( y = b && x = a ) }
             static int getx(P p) { return p.x; }",
        )
        .unwrap();
    let q = a.ctor("Q", "of").unwrap().construct(args![42]).unwrap();
    // `Q` is unknown to program B: reading `p.x` off it must be the same
    // "no field" failure the string-keyed representation produced, not a
    // colliding-symbol read of `secret`.
    let getx = b.free_method("getx").unwrap();
    assert!(getx.call(None, args![q]).is_err());
    // A's P(x = 1, y = 2) and B's P(y = 2, x = 1) store their slots in
    // opposite orders; cross-program reads and equality align by name.
    let pa = a.ctor("P", "of").unwrap().construct(args![1, 2]).unwrap();
    let pb = b.ctor("P", "of").unwrap().construct(args![2, 1]).unwrap();
    assert_eq!(
        getx.call(None, args![pa.clone()]).unwrap().as_int(),
        Some(1)
    );
    assert_eq!(pa, pb);
    assert!(a.values_equal(&pa, &pb).unwrap());
    assert!(b.values_equal(&pa, &pb).unwrap());
    let pb2 = b.ctor("P", "of").unwrap().construct(args![9, 1]).unwrap();
    assert_ne!(pa, pb2);
    assert!(!a.values_equal(&pa, &pb2).unwrap());
}

#[test]
fn unique_deconstruct_reuses_field_storage_in_place() {
    let program = Workspace::new()
        .verify(false)
        .compile(
            "class Pair { int a; int b; \
             constructor of(int x, int y) returns(x, y) ( a = x && b = y ) }",
        )
        .unwrap()
        .with_engine(Engine::Plan);
    let pair = program
        .ctor("Pair", "of")
        .unwrap()
        .construct(args![7, 9])
        .unwrap();
    let Value::Obj(o) = &pair else {
        panic!("constructed a non-object")
    };
    let storage = o.fields().as_ptr();
    // Shared scrutinee: the caller still holds `pair`, so the row must be
    // a fresh clone of the field values.
    let shared = program
        .deconstruct(&pair, "of")
        .unwrap()
        .try_into_rows()
        .unwrap();
    assert_eq!(shared, vec![vec![Value::Int(7), Value::Int(9)]]);
    assert_ne!(shared[0].as_ptr(), storage);
    // Unique scrutinee: dropping the caller's handle before collecting
    // lets the row take over the object's own field storage in place.
    let query = program.deconstruct(&pair, "of").unwrap();
    drop(pair);
    let rows = query.try_into_rows().unwrap();
    assert_eq!(rows, vec![vec![Value::Int(7), Value::Int(9)]]);
    assert_eq!(
        rows[0].as_ptr(),
        storage,
        "unique deconstruct must reuse the object's Box<[Value]> allocation"
    );
}
