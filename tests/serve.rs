//! End-to-end tests of the `jmatch-serve` subsystem: protocol
//! correctness against the sequential embedding-API oracle, robustness
//! against malformed / oversized / truncated frames, quota accounting
//! (including the refund-on-disconnect guarantee), backpressure, and
//! deterministic thread reclamation.

use jmatch::runtime::serve::json::Json;
use jmatch::runtime::serve::proto::{self, bindings_to_json, read_frame, FrameError};
use jmatch::runtime::serve::{Client, QueryOptions, QuotaConfig, ServeConfig, Server};
use jmatch::{Bindings, Engine, Limits, Value, Workspace};
use std::io::Write;
use std::net::TcpStream;
use std::time::Duration;

/// A tiny program with a free generator, a class generator, and a
/// forward function.
const SMALL_SRC: &str = "\
class Gen {
    boolean upto(int n, int x) iterates(x) ( x = 0 || x = 1 || x = 2 )
}
static boolean below(int n, int x) iterates(x) ( x = 0 || x = 1 || x = 2 )
static int add(int a, int b) { return a + b; }
";

/// A generator with `n` solutions, each also carrying the `tag` input
/// binding — with a fat tag, enough wire bytes to overrun any socket
/// buffer and park the streaming worker mid-enumeration.
fn wide_src(n: usize) -> String {
    let opts: Vec<String> = (0..n).map(|i| format!("x = {i}")).collect();
    format!(
        "static boolean wide(string tag, int x) iterates(x) ( {} )",
        opts.join(" || ")
    )
}

fn test_config() -> ServeConfig {
    ServeConfig {
        addr: "127.0.0.1:0".into(),
        ..ServeConfig::default()
    }
}

/// Boots a server and hands back (server, connected client).
fn boot(config: ServeConfig) -> (Server, Client) {
    let server = Server::start(config).expect("server start");
    let client = Client::connect(server.local_addr()).expect("client connect");
    (server, client)
}

fn compile_ok(client: &mut Client, source: &str) -> String {
    let reply = client.compile(source, false).expect("compile round-trip");
    assert_eq!(
        reply.get("ok"),
        Some(&Json::Bool(true)),
        "compile failed: {reply}"
    );
    reply
        .get("program")
        .and_then(Json::as_str)
        .expect("compile reply carries the program key")
        .to_owned()
}

fn error_kind_of(frame: &Json) -> &str {
    assert_eq!(
        frame.get("ok"),
        Some(&Json::Bool(false)),
        "expected an error frame, got: {frame}"
    );
    frame
        .get("error")
        .and_then(|e| e.get("kind"))
        .and_then(Json::as_str)
        .expect("error frames carry a kind")
}

#[cfg(target_os = "linux")]
fn live_threads() -> usize {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("Threads:"))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|n| n.parse().ok())
        })
        .unwrap_or(0)
}

/// Retrying settle check: other tests in this binary run concurrently
/// with their own transient servers, so the count must *stop exceeding*
/// the baseline, not match it instantaneously.
#[cfg(target_os = "linux")]
fn assert_threads_settle(baseline: usize, what: &str) {
    for _ in 0..250 {
        if live_threads() <= baseline {
            return;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    panic!(
        "{what}: thread count stuck at {} (baseline {baseline}) — server threads leaked",
        live_threads()
    );
}

// ---------------------------------------------------------------------------
// Protocol correctness vs the sequential oracle
// ---------------------------------------------------------------------------

#[test]
fn serve_roundtrip_matches_sequential_oracle() {
    let (server, mut client) = boot(test_config());
    let key = compile_ok(&mut client, SMALL_SRC);

    // Second compile of the same source is a cache hit.
    let again = client.compile(SMALL_SRC, false).expect("re-compile");
    assert_eq!(again.get("cached"), Some(&Json::Bool(true)));
    assert_eq!(again.get("program").and_then(Json::as_str), Some(&*key));

    // Forward call.
    let reply = client
        .call("default", &key, "add", &[Value::Int(20), Value::Int(22)])
        .expect("call");
    assert_eq!(reply.get("value"), Some(&Json::Int(42)));

    // The oracle: the embedding API over the same source.
    let program = Workspace::new().verify(false).compile(SMALL_SRC).unwrap();
    let mut known = Bindings::new();
    known.insert("n".into(), Value::Int(3));
    let expected: Vec<Json> = program
        .free_method("below")
        .unwrap()
        .iterate(None, &known)
        .unwrap()
        .try_collect()
        .unwrap()
        .iter()
        .map(bindings_to_json)
        .collect();

    // Free-method collect query.
    let mut options = QueryOptions::new(&key, "below");
    options.known = vec![("n".into(), Value::Int(3))];
    let reply = client.query(&options).expect("query");
    assert_eq!(
        reply.get("solutions").and_then(Json::as_arr),
        Some(&expected[..]),
        "wire solutions diverge from the oracle"
    );
    assert!(reply.get("steps").and_then(Json::as_i64).unwrap_or(0) > 0);

    // Instance-method query (bare receiver).
    let mut options = QueryOptions::new(&key, "upto");
    options.class = Some("Gen".into());
    options.known = vec![("n".into(), Value::Int(3))];
    let reply = client.query(&options).expect("class query");
    let xs: Vec<i64> = reply
        .get("solutions")
        .and_then(Json::as_arr)
        .expect("solutions")
        .iter()
        .map(|s| s.get("x").and_then(Json::as_i64).expect("x binding"))
        .collect();
    assert_eq!(xs, vec![0, 1, 2]);

    // Streamed enumeration, batch 2: solutions re-assemble identically.
    let mut options = QueryOptions::new(&key, "below");
    options.known = vec![("n".into(), Value::Int(3))];
    let frames = client.stream(&options, 2).expect("stream");
    let streamed: Vec<Json> = frames
        .iter()
        .flat_map(|f| {
            f.get("solutions")
                .and_then(Json::as_arr)
                .unwrap_or(&[])
                .to_vec()
        })
        .collect();
    assert_eq!(streamed, expected);
    let last = frames.last().unwrap();
    assert_eq!(last.get("done"), Some(&Json::Bool(true)));
    assert_eq!(last.get("count"), Some(&Json::Int(expected.len() as i64)));

    let metrics = server.metrics();
    assert_eq!(metrics.cache.misses, 1, "one compile for many requests");
    assert!(metrics.cache.hits >= 4);
    server.shutdown();
}

#[test]
fn lint_op_reports_analysis_lints_and_shares_the_compile_cache() {
    let (server, mut client) = boot(test_config());

    // A lint-clean program: ok, an empty lints array, and a cache key
    // interchangeable with `compile`'s.
    let reply = client.lint(SMALL_SRC, false).expect("lint round-trip");
    assert_eq!(reply.get("ok"), Some(&Json::Bool(true)), "{reply}");
    assert_eq!(reply.get("cached"), Some(&Json::Bool(false)));
    assert_eq!(
        reply.get("lints").and_then(Json::as_arr).map(<[Json]>::len),
        Some(0),
        "{reply}"
    );
    let key = reply
        .get("program")
        .and_then(Json::as_str)
        .expect("lint reply carries the cache key")
        .to_owned();
    assert_eq!(compile_ok(&mut client, SMALL_SRC), key, "caches diverge");
    let again = client.lint(SMALL_SRC, false).expect("re-lint");
    assert_eq!(again.get("cached"), Some(&Json::Bool(true)));

    // A left-recursive generator: the unbounded-recursion lint comes back
    // as a structured {kind, context, message} object.
    let reply = client
        .lint("static boolean spin() ( spin() )", false)
        .expect("lint round-trip");
    assert_eq!(reply.get("ok"), Some(&Json::Bool(true)), "{reply}");
    let lints = reply.get("lints").and_then(Json::as_arr).expect("lints");
    assert!(
        lints
            .iter()
            .any(|l| l.get("kind").and_then(Json::as_str) == Some("unbounded recursion")),
        "{reply}"
    );
    assert!(
        lints
            .iter()
            .all(|l| l.get("context").is_some() && l.get("message").is_some()),
        "{reply}"
    );

    // Source that does not compile: a structured error frame, like compile.
    let reply = client.lint("static int ((", false).expect("round-trip");
    assert_eq!(error_kind_of(&reply), "compile-failed");
    server.shutdown();
}

#[test]
fn compile_failures_and_unknown_programs_are_structured_errors() {
    let (server, mut client) = boot(test_config());

    let reply = client.compile("static int ((", false).expect("round-trip");
    assert_eq!(error_kind_of(&reply), "compile-failed");
    assert!(reply
        .get("error")
        .and_then(|e| e.get("errors"))
        .and_then(Json::as_arr)
        .is_some_and(|errs| !errs.is_empty()));

    let reply = client
        .query(&QueryOptions::new("p:0123456789abcdef", "nope"))
        .expect("round-trip");
    assert_eq!(error_kind_of(&reply), "unknown-program");

    // Runtime errors keep their structured kinds across the wire.
    let key = compile_ok(&mut client, SMALL_SRC);
    let reply = client
        .query(&QueryOptions::new(&key, "nosuch"))
        .expect("round-trip");
    assert_eq!(error_kind_of(&reply), "method-not-found");
    let reply = client
        .call("default", &key, "add", &[Value::Int(1)])
        .expect("round-trip");
    assert_eq!(error_kind_of(&reply), "arity-mismatch");
    server.shutdown();
}

// ---------------------------------------------------------------------------
// Robustness: malformed, oversized, truncated frames
// ---------------------------------------------------------------------------

#[test]
fn malformed_json_answers_protocol_error_and_connection_survives() {
    let (server, mut client) = boot(test_config());
    let mut raw = TcpStream::connect(server.local_addr()).expect("raw connect");

    for payload in [
        &b"{not json"[..],
        &b"[1,2,3] trailing"[..],
        &b"\xff\xfe"[..],
    ] {
        let mut frame = (payload.len() as u32).to_be_bytes().to_vec();
        frame.extend_from_slice(payload);
        raw.write_all(&frame).expect("raw write");
        let reply = read_frame(&mut raw, proto::DEFAULT_MAX_FRAME).expect("reply frame");
        assert_eq!(error_kind_of(&reply), "protocol");
    }
    // Well-formed JSON that is not a valid request is also survivable.
    let mut frame = (2u32).to_be_bytes().to_vec();
    frame.extend_from_slice(b"{}");
    raw.write_all(&frame).expect("raw write");
    let reply = read_frame(&mut raw, proto::DEFAULT_MAX_FRAME).expect("reply frame");
    assert_eq!(error_kind_of(&reply), "protocol");

    // The same connection still serves real requests.
    drop(raw);
    let pong = client.ping().expect("ping");
    assert_eq!(pong.get("pong"), Some(&Json::Bool(true)));
    assert!(server.metrics().protocol_errors >= 4);
    server.shutdown();
}

#[test]
fn oversized_frames_are_rejected_drained_and_survivable() {
    let config = ServeConfig {
        max_frame: 256,
        ..test_config()
    };
    let (server, _client) = boot(config);
    let mut raw = TcpStream::connect(server.local_addr()).expect("raw connect");

    // Over the cap but under the skip cap (4×): error + drain, and the
    // connection keeps working.
    let declared = 600u32;
    let mut frame = declared.to_be_bytes().to_vec();
    frame.extend_from_slice(&vec![b'x'; declared as usize]);
    raw.write_all(&frame).expect("raw write");
    let reply = read_frame(&mut raw, proto::DEFAULT_MAX_FRAME).expect("reply frame");
    assert_eq!(error_kind_of(&reply), "frame-too-large");

    // A well-formed ping on the *same* connection still answers: the
    // oversized payload was fully drained, the boundary is clean.
    let ping = Json::obj(vec![("op", Json::Str("ping".into())), ("id", Json::Int(1))]);
    proto::write_frame(&mut raw, &ping).expect("ping write");
    let reply = read_frame(&mut raw, proto::DEFAULT_MAX_FRAME).expect("pong frame");
    assert_eq!(reply.get("pong"), Some(&Json::Bool(true)));

    // Beyond the skip cap the framing is hostile: error frame, then the
    // connection closes — but the server keeps accepting new ones.
    let mut frame = (1_000_000u32).to_be_bytes().to_vec();
    frame.extend_from_slice(&[b'x'; 64]);
    raw.write_all(&frame).expect("raw write");
    let reply = read_frame(&mut raw, proto::DEFAULT_MAX_FRAME).expect("error frame");
    assert_eq!(error_kind_of(&reply), "frame-too-large");
    match read_frame(&mut raw, proto::DEFAULT_MAX_FRAME) {
        Err(FrameError::Eof) | Err(FrameError::Truncated(_)) => {}
        other => panic!("hostile connection should close, got {other:?}"),
    }

    let mut fresh = Client::connect(server.local_addr()).expect("fresh connect");
    assert_eq!(
        fresh.ping().expect("ping").get("pong"),
        Some(&Json::Bool(true))
    );
    server.shutdown();
}

#[test]
fn truncated_frames_kill_the_connection_not_the_server() {
    let (server, mut client) = boot(test_config());
    {
        let mut raw = TcpStream::connect(server.local_addr()).expect("raw connect");
        // Declare 100 bytes, send 10, slam the connection shut.
        let mut frame = (100u32).to_be_bytes().to_vec();
        frame.extend_from_slice(b"0123456789");
        raw.write_all(&frame).expect("raw write");
    }
    // The server keeps serving existing and new connections.
    assert_eq!(
        client.ping().expect("ping").get("pong"),
        Some(&Json::Bool(true))
    );
    let key = compile_ok(&mut client, SMALL_SRC);
    assert!(key.starts_with("p:"));
    server.shutdown();
}

#[test]
fn hostile_stream_batch_is_clamped_not_fatal() {
    // The batch size pre-sizes a server-side buffer: a huge value must be
    // clamped at parse time, not panic the (sole) worker with a capacity
    // overflow.
    let config = ServeConfig {
        workers: 1,
        ..test_config()
    };
    let (server, mut client) = boot(config);
    let key = compile_ok(&mut client, SMALL_SRC);
    client
        .send(&Json::obj(vec![
            ("op", Json::Str("stream".into())),
            ("id", Json::Int(77)),
            ("program", Json::Str(key.clone())),
            ("method", Json::Str("below".into())),
            ("known", Json::obj(vec![("n", Json::Int(3))])),
            ("batch", Json::Int(1 << 42)),
        ]))
        .expect("send hostile stream");
    let mut total = 0;
    let terminal = loop {
        let frame = client.recv().expect("stream frame");
        assert_eq!(frame.get("ok"), Some(&Json::Bool(true)), "{frame}");
        total += frame
            .get("solutions")
            .and_then(Json::as_arr)
            .map_or(0, <[Json]>::len);
        if frame.get("done") == Some(&Json::Bool(true)) {
            break frame;
        }
    };
    assert_eq!(total, 3);
    assert_eq!(terminal.get("count"), Some(&Json::Int(3)));
    // The only worker survived: a follow-up query still answers.
    let mut options = QueryOptions::new(&key, "below");
    options.known = vec![("n".into(), Value::Int(3))];
    let reply = client.query(&options).expect("post-hostile query");
    assert_eq!(reply.get("ok"), Some(&Json::Bool(true)), "{reply}");
    server.shutdown();
}

#[test]
fn connection_cap_refuses_new_connections_with_structured_error() {
    let config = ServeConfig {
        max_connections: 1,
        ..test_config()
    };
    let (server, mut client) = boot(config);
    assert_eq!(
        client.ping().expect("ping").get("pong"),
        Some(&Json::Bool(true))
    );
    // The second connection is refused with an error frame, then closed.
    let mut raw = TcpStream::connect(server.local_addr()).expect("raw connect");
    let reply = read_frame(&mut raw, proto::DEFAULT_MAX_FRAME).expect("rejection frame");
    assert_eq!(error_kind_of(&reply), "over-capacity");
    assert!(reply
        .get("error")
        .and_then(|e| e.get("retry_after_ms"))
        .and_then(Json::as_i64)
        .is_some_and(|ms| ms > 0));
    match read_frame(&mut raw, proto::DEFAULT_MAX_FRAME) {
        Err(FrameError::Eof) | Err(FrameError::Truncated(_)) => {}
        other => panic!("capped connection should close, got {other:?}"),
    }
    assert_eq!(server.metrics().rejected_connections, 1);
    // The admitted connection is untouched.
    assert_eq!(
        client.ping().expect("ping").get("pong"),
        Some(&Json::Bool(true))
    );
    server.shutdown();
}

// ---------------------------------------------------------------------------
// Quotas and backpressure
// ---------------------------------------------------------------------------

#[test]
fn quota_exhaustion_rejects_with_retry_and_spares_other_tenants() {
    let config = ServeConfig {
        quota: QuotaConfig {
            limits: Limits {
                max_steps: 1_000_000,
                ..Limits::default()
            },
            steps_per_window: 10_000_000,
            window: Duration::from_secs(600),
            ..QuotaConfig::default()
        },
        tenant_overrides: vec![(
            "starved".into(),
            QuotaConfig {
                steps_per_window: 40,
                window: Duration::from_secs(600),
                ..QuotaConfig::default()
            },
        )],
        ..test_config()
    };
    let (server, mut client) = boot(config);
    // Enough solutions that enumerating under a 40-step pool must trip
    // the ceiling rather than finish early.
    let key = compile_ok(&mut client, &wide_src(200));

    // The starved tenant's first query gets the whole (tiny) pool and
    // burns it: the enumeration trips the step ceiling.
    let mut options = QueryOptions::new(&key, "wide");
    options.tenant = "starved".into();
    options.known = vec![("tag".into(), Value::Str("s".into()))];
    let reply = client.query(&options).expect("first query");
    assert_eq!(error_kind_of(&reply), "limit-exceeded");

    // The pool is empty for the rest of the long window: structured
    // quota rejection with a retry hint.
    let reply = client.query(&options).expect("second query");
    assert_eq!(error_kind_of(&reply), "quota-exhausted");
    let retry = reply
        .get("error")
        .and_then(|e| e.get("retry_after_ms"))
        .and_then(Json::as_i64)
        .expect("quota rejections carry retry_after_ms");
    assert!(retry > 0);

    // Another tenant on the same server is untouched.
    let mut options = QueryOptions::new(&key, "wide");
    options.tenant = "healthy".into();
    options.known = vec![("tag".into(), Value::Str("s".into()))];
    let reply = client.query(&options).expect("healthy query");
    assert_eq!(reply.get("ok"), Some(&Json::Bool(true)));

    assert_eq!(server.metrics().rejected_quota, 1);
    server.shutdown();
}

#[test]
fn tree_engine_calls_charge_their_step_ceiling() {
    // The tree engine reports no step count for forward calls; they must
    // settle at their ceiling like the query/stream paths, not refund the
    // whole grant as if the work were free.
    let config = ServeConfig {
        engine: Engine::TreeWalk,
        quota: QuotaConfig {
            limits: Limits {
                max_steps: 50,
                ..Limits::default()
            },
            steps_per_window: 50,
            window: Duration::from_secs(600),
            ..QuotaConfig::default()
        },
        ..test_config()
    };
    let (server, mut client) = boot(config);
    let key = compile_ok(&mut client, SMALL_SRC);
    let reply = client
        .call("default", &key, "add", &[Value::Int(1), Value::Int(2)])
        .expect("first call");
    assert_eq!(reply.get("value"), Some(&Json::Int(3)));
    // The unmeterable call consumed the whole 50-step pool.
    let reply = client
        .call("default", &key, "add", &[Value::Int(1), Value::Int(2)])
        .expect("second call");
    assert_eq!(error_kind_of(&reply), "quota-exhausted");
    server.shutdown();
}

#[test]
fn metered_compiles_draw_from_the_tenant_pool() {
    let config = ServeConfig {
        quota: QuotaConfig {
            steps_per_window: 150,
            window: Duration::from_secs(600),
            compile_steps: 100,
            ..QuotaConfig::default()
        },
        ..test_config()
    };
    let (server, mut client) = boot(config);
    // The first compile pays the full 100-step price...
    let _key = compile_ok(&mut client, SMALL_SRC);
    // ...re-compiling the same source is a cache hit: reserved, refunded.
    let again = client.compile(SMALL_SRC, false).expect("re-compile");
    assert_eq!(again.get("cached"), Some(&Json::Bool(true)));
    // A distinct source drains the 50-step remainder (a partial grant)...
    let other = client
        .compile("static int g() { return 7; }", false)
        .expect("second compile");
    assert_eq!(other.get("ok"), Some(&Json::Bool(true)), "{other}");
    // ...and the next distinct compile is refused for the window.
    let reply = client
        .compile("static int h() { return 8; }", false)
        .expect("third compile round-trip");
    assert_eq!(error_kind_of(&reply), "quota-exhausted");
    assert!(server.metrics().rejected_quota >= 1);
    server.shutdown();
}

#[test]
fn full_queues_reject_with_over_capacity_not_unbounded_memory() {
    // No workers: admitted jobs queue forever, so the queue bound is the
    // only thing between the client and unbounded growth.
    let config = ServeConfig {
        workers: 0,
        queue_depth: 2,
        ..test_config()
    };
    let (server, mut client) = boot(config);
    let key = compile_ok(&mut client, SMALL_SRC);

    let mut options = QueryOptions::new(&key, "below");
    options.known = vec![("n".into(), Value::Int(3))];
    // Two fill the queue; the third must be rejected immediately.
    for _ in 0..2 {
        client.start_stream(&options, 1).expect("enqueue");
    }
    let reply = client.query(&options).expect("third query");
    assert_eq!(error_kind_of(&reply), "over-capacity");
    assert!(reply
        .get("error")
        .and_then(|e| e.get("retry_after_ms"))
        .and_then(Json::as_i64)
        .is_some_and(|ms| ms > 0));

    let metrics = server.metrics();
    assert_eq!(metrics.rejected_capacity, 1);
    assert_eq!(metrics.queued, 2);
    // Queued-but-never-run jobs hold reservations; shutdown drops them
    // and their grants refund (exercised here, asserted via clean join).
    server.shutdown();
}

// ---------------------------------------------------------------------------
// Disconnects, cancellation, thread reclamation
// ---------------------------------------------------------------------------

#[cfg(target_os = "linux")]
#[test]
fn mid_stream_disconnect_reclaims_worker_and_refunds_grant() {
    let baseline = live_threads();
    let pool_ceiling = 1_000_000u64;
    let config = ServeConfig {
        workers: 1,
        quota: QuotaConfig {
            limits: Limits {
                max_steps: pool_ceiling,
                ..Limits::default()
            },
            steps_per_window: pool_ceiling,
            window: Duration::from_secs(600),
            ..QuotaConfig::default()
        },
        ..test_config()
    };
    let (server, mut client) = boot(config);
    // ~1200 solutions, each echoing a 2 KiB input binding: far more wire
    // bytes than the socket buffers hold, so the worker is parked in a
    // blocked send when the client vanishes.
    let key = compile_ok(&mut client, &wide_src(1200));
    {
        let mut victim = Client::connect(server.local_addr()).expect("victim connect");
        let mut opts = QueryOptions::new(&key, "wide");
        opts.tenant = "dropper".into();
        opts.known = vec![("tag".into(), Value::Str("t".repeat(2048)))];
        victim.start_stream(&opts, 1).expect("start stream");
        // Read one batch so the stream is demonstrably in flight...
        let first = victim.recv().expect("first batch");
        assert_eq!(first.get("done"), Some(&Json::Bool(false)));
        // ...then vanish without reading the rest.
    }
    // The worker notices, abandons the stream, and serves the next
    // request — on the sole worker thread, so this only answers if the
    // dead stream released it. (Small tag: the collect reply must fit
    // the client's frame cap.)
    let mut opts = QueryOptions::new(&key, "wide");
    opts.tenant = "survivor".into();
    opts.known = vec![("tag".into(), Value::Str("s".into()))];
    let reply = client.query(&opts).expect("post-disconnect query");
    assert_eq!(reply.get("ok"), Some(&Json::Bool(true)), "{reply}");

    // The abandoned stream settled its grant: the dropper tenant's pool
    // refunded everything the enumeration did not actually spend. (A
    // leak would leave remaining pinned at 0 for the 600s window.)
    let tenants = server.quotas().snapshot();
    let dropper = tenants
        .iter()
        .find(|t| t.tenant == "dropper")
        .expect("dropper tenant exists");
    assert!(
        dropper.pool_remaining > pool_ceiling / 2,
        "grant not refunded: {} of {} steps left",
        dropper.pool_remaining,
        dropper.pool_ceiling,
    );
    assert!(dropper.spent > 0, "the stream did real work before dying");
    assert!(server.metrics().cancelled >= 1);

    server.shutdown();
    assert_threads_settle(baseline, "serve disconnect");
}

/// The tree-walk engine's `Solutions` carries a producer thread; a wire
/// disconnect mid-stream must join it (the serve-level counterpart of
/// the embedding API's drop-early guarantee).
#[cfg(target_os = "linux")]
#[test]
fn tree_engine_disconnect_joins_producer_threads() {
    let baseline = live_threads();
    let config = ServeConfig {
        workers: 1,
        engine: Engine::TreeWalk,
        ..test_config()
    };
    let (server, mut client) = boot(config);
    let key = compile_ok(&mut client, &wide_src(600));
    {
        let mut victim = Client::connect(server.local_addr()).expect("victim connect");
        let mut options = QueryOptions::new(&key, "wide");
        options.known = vec![("tag".into(), Value::Str("t".repeat(2048)))];
        victim.start_stream(&options, 1).expect("start stream");
        let first = victim.recv().expect("first batch");
        assert_eq!(first.get("done"), Some(&Json::Bool(false)));
    }
    // The sole worker must come back (joining the producer on the way).
    let mut options = QueryOptions::new(&key, "wide");
    options.known = vec![("tag".into(), Value::Str("s".into()))];
    let reply = client.query(&options).expect("post-disconnect query");
    assert_eq!(reply.get("ok"), Some(&Json::Bool(true)), "{reply}");
    server.shutdown();
    assert_threads_settle(baseline, "tree-engine serve disconnect");
}

#[test]
fn cancel_frames_stop_streams_and_leave_the_connection_usable() {
    let config = ServeConfig {
        workers: 1,
        ..test_config()
    };
    let (server, mut client) = boot(config);
    let key = compile_ok(&mut client, &wide_src(1200));
    let mut options = QueryOptions::new(&key, "wide");
    options.known = vec![("tag".into(), Value::Str("t".repeat(2048)))];

    let stream_id = client.start_stream(&options, 1).expect("start stream");
    let first = client.recv().expect("first batch");
    assert_eq!(first.get("id"), Some(&Json::Int(stream_id)));
    let cancel_id = client.cancel(stream_id).expect("cancel");

    // Drain until both the stream's terminal frame and the cancel ack
    // arrive — the ack comes from the connection reader and the terminal
    // frame from the worker, so either wire order is legal.
    let mut saw_ack = false;
    let mut terminal = None;
    for _ in 0..5000 {
        if saw_ack && terminal.is_some() {
            break;
        }
        let frame = client.recv().expect("frame");
        if frame.get("id") == Some(&Json::Int(cancel_id)) {
            saw_ack = true;
        } else if frame.get("done") == Some(&Json::Bool(true)) {
            terminal = Some(frame);
        }
    }
    let terminal = terminal.expect("stream reached a terminal frame");
    assert!(saw_ack, "cancel was acknowledged");
    assert_eq!(terminal.get("cancelled"), Some(&Json::Bool(true)));
    let count = terminal.get("count").and_then(Json::as_i64).unwrap();
    assert!(count < 1200, "cancel should cut the stream short ({count})");

    // Same connection, next request: fully usable.
    let mut options = QueryOptions::new(&key, "wide");
    options.known = vec![("tag".into(), Value::Str("s".into()))];
    let reply = client.query(&options).expect("post-cancel query");
    assert_eq!(reply.get("ok"), Some(&Json::Bool(true)), "{reply}");
    assert!(server.metrics().cancelled >= 1);
    server.shutdown();
}

#[cfg(target_os = "linux")]
#[test]
fn shutdown_joins_accept_workers_and_connection_readers() {
    let baseline = live_threads();
    let (server, mut client) = boot(test_config());
    // A few extra idle connections whose readers are parked in `read`.
    let _idle: Vec<Client> = (0..3)
        .map(|_| Client::connect(server.local_addr()).expect("idle connect"))
        .collect();
    let key = compile_ok(&mut client, SMALL_SRC);
    assert!(key.starts_with("p:"));
    server.shutdown();
    assert_threads_settle(baseline, "server shutdown");
}

// ---------------------------------------------------------------------------
// Hot reload
// ---------------------------------------------------------------------------

#[test]
fn reload_recompiles_in_place_and_keeps_both_generations_resident() {
    let (server, mut client) = boot(test_config());
    let key = compile_ok(&mut client, SMALL_SRC);

    // Reloading with the identical source is a no-op: same key back.
    let reply = client
        .reload("default", &key, SMALL_SRC)
        .expect("no-op reload");
    assert_eq!(reply.get("ok"), Some(&Json::Bool(true)), "{reply}");
    assert_eq!(
        reply.get("status").and_then(Json::as_str),
        Some("unchanged")
    );
    assert_eq!(reply.get("program").and_then(Json::as_str), Some(&*key));

    // A body-only edit of `add`: incremental recompile, and the reply
    // names exactly the changed method.
    let edited = SMALL_SRC.replace("return a + b;", "return a + b + 100;");
    let reply = client.reload("default", &key, &edited).expect("reload");
    assert_eq!(reply.get("ok"), Some(&Json::Bool(true)), "{reply}");
    assert_eq!(
        reply.get("status").and_then(Json::as_str),
        Some("recompiled")
    );
    let new_key = reply
        .get("program")
        .and_then(Json::as_str)
        .expect("recompiled replies carry the new key")
        .to_owned();
    assert_ne!(new_key, key, "a real edit must mint a new cache key");
    assert_eq!(
        reply.get("methods").and_then(Json::as_arr),
        Some(&[Json::Str("<toplevel>.add".into())][..]),
        "{reply}"
    );

    // The new generation serves the edited behavior...
    let reply = client
        .call(
            "default",
            &new_key,
            "add",
            &[Value::Int(20), Value::Int(22)],
        )
        .expect("call new generation");
    assert_eq!(reply.get("value"), Some(&Json::Int(142)), "{reply}");
    // ...and the old generation stays resident with the old behavior.
    let reply = client
        .call("default", &key, "add", &[Value::Int(20), Value::Int(22)])
        .expect("call old generation");
    assert_eq!(reply.get("value"), Some(&Json::Int(42)), "{reply}");
    // The new key is also a compile-cache citizen: compiling the edited
    // source verbatim is a hit on the reloaded entry.
    let again = client.compile(&edited, false).expect("re-compile edited");
    assert_eq!(again.get("cached"), Some(&Json::Bool(true)), "{again}");
    assert_eq!(again.get("program").and_then(Json::as_str), Some(&*new_key));
    server.shutdown();
}

#[test]
fn rejected_reloads_keep_the_previous_program_active() {
    let (server, mut client) = boot(test_config());
    let key = compile_ok(&mut client, SMALL_SRC);

    // An edit that does not parse: structured rejection, nothing replaced.
    let reply = client
        .reload("default", &key, "static int ((")
        .expect("broken reload round-trip");
    assert_eq!(error_kind_of(&reply), "reload-rejected");
    assert!(reply
        .get("error")
        .and_then(|e| e.get("errors"))
        .and_then(Json::as_arr)
        .is_some_and(|errs| !errs.is_empty()));

    // The previous generation still answers under its old key.
    let reply = client
        .call("default", &key, "add", &[Value::Int(1), Value::Int(2)])
        .expect("call after rejected reload");
    assert_eq!(reply.get("value"), Some(&Json::Int(3)), "{reply}");

    // Reloading a key that was never compiled here is unknown-program.
    let reply = client
        .reload("default", "p:0123456789abcdef", SMALL_SRC)
        .expect("unknown reload round-trip");
    assert_eq!(error_kind_of(&reply), "unknown-program");
    server.shutdown();
}

// ---------------------------------------------------------------------------
// Request deadlines (wire-level; timing-dependent paths live in
// tests/fault_injection.rs)
// ---------------------------------------------------------------------------

#[test]
fn zero_deadline_is_rejected_before_any_work_with_a_retry_hint() {
    let (server, mut client) = boot(test_config());
    // A deadline that has already elapsed is rejected up front — even on
    // `lint`, whose compilation phase is not interruptible — without
    // spending a compile on it.
    client
        .send(&Json::obj(vec![
            ("op", Json::Str("lint".into())),
            ("id", Json::Int(9)),
            ("source", Json::Str(SMALL_SRC.into())),
            ("deadline_ms", Json::Int(0)),
        ]))
        .expect("send lint");
    let reply = client.recv().expect("lint verdict");
    assert_eq!(reply.get("id"), Some(&Json::Int(9)));
    assert_eq!(error_kind_of(&reply), "deadline-exceeded");
    assert!(reply
        .get("error")
        .and_then(|e| e.get("retry_after_ms"))
        .and_then(Json::as_i64)
        .is_some_and(|ms| ms > 0));
    assert_eq!(server.metrics().deadline_exceeded, 1);
    assert_eq!(server.metrics().cache.misses, 0, "no compile was spent");
    server.shutdown();
}

#[test]
fn negative_deadline_is_a_protocol_error() {
    let (server, mut client) = boot(test_config());
    let key = compile_ok(&mut client, SMALL_SRC);
    client
        .send(&Json::obj(vec![
            ("op", Json::Str("query".into())),
            ("id", Json::Int(11)),
            ("program", Json::Str(key)),
            ("method", Json::Str("below".into())),
            ("known", Json::obj(vec![("n", Json::Int(3))])),
            ("deadline_ms", Json::Int(-5)),
        ]))
        .expect("send query");
    let reply = client.recv().expect("verdict");
    assert_eq!(reply.get("id"), Some(&Json::Int(11)));
    assert_eq!(error_kind_of(&reply), "protocol");
    server.shutdown();
}

#[test]
fn generous_deadlines_do_not_perturb_results() {
    let (server, mut client) = boot(test_config());
    let key = compile_ok(&mut client, SMALL_SRC);
    let mut options = QueryOptions::new(&key, "below");
    options.known = vec![("n".into(), Value::Int(3))];
    let plain = client.query(&options).expect("undeadlined query");
    options.deadline_ms = Some(60_000);
    let deadlined = client.query(&options).expect("deadlined query");
    assert_eq!(deadlined.get("ok"), Some(&Json::Bool(true)), "{deadlined}");
    assert_eq!(
        deadlined.get("solutions"),
        plain.get("solutions"),
        "a generous deadline changed the solution transcript"
    );
    let reply = client
        .call_with_deadline(
            "default",
            &key,
            "add",
            &[Value::Int(20), Value::Int(22)],
            60_000,
        )
        .expect("deadlined call");
    assert_eq!(reply.get("value"), Some(&Json::Int(42)), "{reply}");
    assert_eq!(server.metrics().deadline_exceeded, 0);
    server.shutdown();
}
